#!/bin/sh
# Run the benchmark suite.
#
#   scripts/bench.sh            # every benchmarks/bench_*.py (tables, figures,
#                               # ablations, and the tier2 wall-clock bench)
#   scripts/bench.sh wallclock  # just the fast-path wall-clock benchmark;
#                               # also writes BENCH_wallclock.json at the root
#   scripts/bench.sh --check    # regression gate: rerun the wall-clock bench
#                               # over all four collections and fail if any
#                               # phase's speedup fell out of the noise band
#                               # of the committed BENCH_wallclock.json
#   scripts/bench.sh shards     # document-partitioned scaling + invariance
#                               # gate; writes BENCH_shards.json at the root.
#                               # Extra args pass through, e.g.
#                               #   scripts/bench.sh shards --shards 1 2 4 8
#   scripts/bench.sh serve      # concurrent batch service traffic gate;
#                               # writes BENCH_serve.json at the root.
#                               # Extra args pass through, e.g.
#                               #   scripts/bench.sh serve --profile cacm-s
#   scripts/bench.sh saturate   # overload-control gate: deterministic
#                               # shedding past capacity; writes
#                               # BENCH_saturate.json at the root. Extra args
#                               # pass through, e.g.
#                               #   scripts/bench.sh saturate --check
#   scripts/bench.sh failover   # replication gate: every single-replica
#                               # kill invisible, re-replication
#                               # byte-identical, mid-traffic 2->4 split;
#                               # writes BENCH_failover.json at the root.
#                               # Extra args pass through, e.g.
#                               #   scripts/bench.sh failover --check
#   scripts/bench.sh ingest     # live-ingest gate: mixed read/write traffic,
#                               # every epoch bit-identical to a stop-the-world
#                               # rebuild, compaction invisible; writes
#                               # BENCH_ingest.json at the root. Extra args
#                               # pass through, e.g.
#                               #   scripts/bench.sh ingest --check
#   scripts/bench.sh prune      # dynamic-pruning invariance + effect gate
#                               # (pruned top-k bit-identical to exhaustive,
#                               # documents_scored reduced); writes
#                               # BENCH_prune.json at the root. Extra args
#                               # pass through, e.g.
#                               #   scripts/bench.sh prune --profile tipster1-s
#   scripts/bench.sh termcache  # decoded-term cache gate: cache-on serving
#                               # bit-identical to cache-off (flat, pruned,
#                               # sharded), budget respected, zero stale
#                               # rankings through mixed ingest/query traffic;
#                               # writes BENCH_termcache.json at the root.
#                               # Extra args pass through, e.g.
#                               #   scripts/bench.sh termcache --check
#
# Tier-1 tests (`python -m pytest`) never run these: pytest's testpaths
# points at tests/, and the wall-clock bench is additionally marked tier2.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

case "${1:-all}" in
    wallclock)
        shift 2>/dev/null || true
        python -m repro.bench.wallclock "$@"
        ;;
    shards)
        shift 2>/dev/null || true
        python -m repro.bench.shards "$@"
        ;;
    serve)
        shift 2>/dev/null || true
        python -m repro.bench.serve "$@"
        ;;
    saturate)
        shift 2>/dev/null || true
        python -m repro.bench.saturate "$@"
        ;;
    failover)
        shift 2>/dev/null || true
        python -m repro.bench.failover "$@"
        ;;
    prune)
        shift 2>/dev/null || true
        python -m repro.bench.prune "$@"
        ;;
    ingest)
        shift 2>/dev/null || true
        python -m repro.bench.ingest "$@"
        ;;
    termcache)
        shift 2>/dev/null || true
        python -m repro.bench.termcache "$@"
        ;;
    --check)
        shift
        python -m repro.bench.wallclock --check "$@"
        ;;
    all)
        python -m pytest benchmarks -q
        ;;
    *)
        if [ -f "benchmarks/bench_$1.py" ]; then
            python -m pytest "benchmarks/bench_$1.py" -q
        else
            echo "bench.sh: unknown gate '$1' (expected wallclock, shards," \
                 "serve, saturate, failover, prune, ingest, termcache," \
                 "--check, all, or a benchmarks/bench_<name>.py)" >&2
            exit 2
        fi
        ;;
esac
