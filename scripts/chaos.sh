#!/bin/sh
# Run the chaos harness: seeded fault injection over the four paper
# collections, asserting fault-tolerant query serving end to end.
#
#   scripts/chaos.sh                       # fixed default seed, all profiles
#   scripts/chaos.sh --seed 7              # one specific seed
#   scripts/chaos.sh --sweep 5             # five consecutive seeds per profile
#   scripts/chaos.sh --profile cacm-s      # one collection only
#
# Contracts enforced (exit non-zero on any violation):
#   - no query raises under injected faults (degraded results instead);
#   - a same-seed rerun is bit-identical (results and counters);
#   - once the fault schedule clears, rankings match the fault-free
#     baseline exactly (read-repair healed the damage);
#   - a mid-build disk-full fault fails the build cleanly.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m repro.bench.chaos "$@"
