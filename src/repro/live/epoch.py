"""Index epochs: snapshot isolation for continuous ingest.

The serving cache already versions itself with an epoch counter
(:class:`~repro.serve.cache.ResultCache`): every entry remembers the
epoch it was computed in and a bump invalidates the lot.  This module
generalises that mechanism from *cache* state to *index* state.  An
:class:`EpochManager` numbers the published states of a (possibly
sharded) live index: epoch 0 is the materialized base corpus, and every
ingest batch — document adds and tombstone deletes applied atomically —
publishes the next epoch.

A query is pinned to the epoch current at admission, and the contract
(gated by ``repro.bench.ingest``) is that its results are bit-identical
to a stop-the-world rebuild of the corpus as of that epoch.  The
manager keeps, per epoch, the frozen set of live document ids — exactly
the input such a rebuild needs — plus per-shard epoch counters so a
sharded deployment can report which shards moved in a publication.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError, IndexError_


@dataclass(frozen=True)
class EpochRecord:
    """One published index state."""

    epoch: int
    live_docs: FrozenSet[int]
    added: Tuple[int, ...] = ()      #: doc ids added by this publication
    deleted: Tuple[int, ...] = ()    #: doc ids tombstoned by this publication
    shards_touched: Tuple[int, ...] = ()


@dataclass
class EpochManager:
    """Monotonic index epochs over one live system's corpus state.

    ``n_shards`` is 1 for a flat system.  ``shard_epochs[s]`` counts the
    publications that touched shard ``s``; the global ``epoch`` counts
    every publication.  History is kept for every epoch (bounded by the
    run length of an ingest workload), because the fresh-rebuild
    comparator needs the live-document set of *past* epochs — a pinned
    query may be checked long after later batches published.
    """

    n_shards: int = 1
    _epoch: int = 0
    _live: set = field(default_factory=set)
    _history: Dict[int, EpochRecord] = field(default_factory=dict)
    shard_epochs: List[int] = field(default_factory=list)

    def __post_init__(self):
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if not self.shard_epochs:
            self.shard_epochs = [0] * self.n_shards
        self._history[0] = EpochRecord(
            epoch=0, live_docs=frozenset(self._live)
        )

    @classmethod
    def for_corpus(cls, doc_ids: Iterable[int], n_shards: int = 1) -> "EpochManager":
        """Epoch 0 over an already-materialized base corpus."""
        return cls(n_shards=n_shards, _live=set(doc_ids))

    @property
    def epoch(self) -> int:
        return self._epoch

    def pin(self) -> int:
        """The epoch a query admitted *now* is served under."""
        return self._epoch

    def live_docs(self, epoch: Optional[int] = None) -> FrozenSet[int]:
        """The live document ids as of ``epoch`` (default: current).

        This is the corpus a stop-the-world rebuild at that epoch would
        index, i.e. the bit-identity reference for any query pinned
        there.
        """
        record = self.record(epoch)
        return record.live_docs

    def record(self, epoch: Optional[int] = None) -> EpochRecord:
        if epoch is None:
            epoch = self._epoch
        try:
            return self._history[epoch]
        except KeyError:
            raise IndexError_(
                f"epoch {epoch} was never published (current: {self._epoch})"
            ) from None

    def publish(
        self,
        added: Sequence[int] = (),
        deleted: Sequence[int] = (),
        shards_touched: Sequence[int] = (),
    ) -> EpochRecord:
        """Atomically advance to the next epoch.

        ``added``/``deleted`` are the doc ids of the batch just applied;
        they must be consistent with the current live set (an inherited
        invariant violation here means a caller published out of order).
        """
        for doc_id in added:
            if doc_id in self._live:
                raise IndexError_(
                    f"epoch publish: doc {doc_id} added but already live"
                )
        for doc_id in deleted:
            if doc_id not in self._live:
                raise IndexError_(
                    f"epoch publish: doc {doc_id} deleted but not live"
                )
        self._live.update(added)
        self._live.difference_update(deleted)
        self._epoch += 1
        for shard_id in shards_touched:
            if not 0 <= shard_id < self.n_shards:
                raise ConfigError(
                    f"shard {shard_id} out of range for {self.n_shards} shards"
                )
            self.shard_epochs[shard_id] += 1
        record = EpochRecord(
            epoch=self._epoch,
            live_docs=frozenset(self._live),
            added=tuple(added),
            deleted=tuple(deleted),
            shards_touched=tuple(sorted(set(shards_touched))),
        )
        self._history[self._epoch] = record
        return record
