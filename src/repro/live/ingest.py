"""The ingest pipeline: continuous mutation under epoch isolation.

The paper's central claim for Mneme over the custom B-tree is cheap
*incremental update* of a persistent inverted file.  This module turns
the repo's until-now offline mutation primitives
(:func:`~repro.inquery.indexer.add_document_incremental`, the new
tombstone delete) into a serving-time pipeline: batches of document adds
and deletes apply through the ordinary charged Mneme store — WAL on,
``max_tf``/bound sidecars refreshed on every mutation so pruning stays
admissible — and each batch publishes a new
:class:`~repro.live.epoch.EpochManager` epoch atomically, sealed by a
WAL epoch-commit marker so crash recovery lands on whole epochs only.

Sharded systems route each mutation to the owning shard's replica group
(every replica applies the identical operation sequence, so mirrors
stay byte-identical — verified per published epoch) while every *other*
shard receives the statistics-only half of the mutation: the global
document table and the global per-term df/ctf that
:meth:`~repro.shard.partition.ShardPrepared.serving_view` bakes into
every shard at build time must keep meaning *global* under mutation, or
sharded document-at-a-time scoring drifts from a stop-the-world
rebuild.

Compaction (:func:`IngestPipeline.compact`) folds tombstones out of the
records (:func:`~repro.inquery.indexer.fold_tombstones`) and then runs
:func:`repro.mneme.gc.compact` on each machine, concurrently with query
traffic on the simulated clock; rewrites are deterministic, so
post-compaction platters are byte-identical across replicas.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, ReplicaFailedError
from ..inquery import (
    Document,
    add_document_incremental,
    fold_tombstones,
    tombstone_document_incremental,
)
from ..inquery.normalize import normalize_term
from ..inquery.text import tokenize
from .epoch import EpochManager, EpochRecord


@dataclass
class IngestReport:
    """One applied batch: what changed and what it cost."""

    epoch: int
    docs_added: int = 0
    docs_deleted: int = 0
    shards_touched: Tuple[int, ...] = ()
    #: Critical-path simulated milliseconds (slowest machine's clock).
    wall_ms: float = 0.0
    #: Sum of simulated milliseconds across every machine touched.
    machine_ms: float = 0.0
    #: Replica groups whose platters were verified byte-identical.
    groups_verified: int = 0
    wal_marked: bool = False
    #: Owning shard -> sorted terms whose records this batch rewrote
    #: (adds only: deletes are tombstones and rewrite nothing).  This is
    #: exactly the invalidation set for the decoded-term caches.
    mutated_terms: Dict[int, Tuple[str, ...]] = field(default_factory=dict)


@dataclass
class CompactionSummary:
    """One concurrent compaction pass across every machine."""

    records_rewritten: int = 0
    bytes_reclaimed: int = 0
    segments_copied: int = 0
    tombstones_folded: int = 0
    wall_ms: float = 0.0
    machine_ms: float = 0.0
    groups_verified: int = 0


def _term_stats(document: Document, index) -> Tuple[Dict[str, int], int]:
    """Per-term frequency of a document under the index's normalization."""
    by_term: Dict[str, int] = {}
    kept = 0
    for token in document.term_stream(tokenize):
        normalized = normalize_term(token, index.stopwords, index.stem_fn)
        if normalized is None:
            continue
        by_term[normalized] = by_term.get(normalized, 0) + 1
        kept += 1
    return by_term, kept


class IngestPipeline:
    """Applies mutation batches to a flat or sharded live system.

    ``backend`` is an :class:`~repro.core.prepared.IRSystem` or a
    :class:`~repro.shard.system.ShardedIRSystem`; the pipeline detects
    which by the presence of replica groups.  ``verify_replicas``
    block-compares every replica group's platter after each published
    epoch (and after compaction) — the mirrors-stay-byte-identical
    contract — at the cost of a full in-memory comparison per batch.
    """

    def __init__(self, backend, verify_replicas: bool = True):
        self.backend = backend
        self.sharded = hasattr(backend, "replica_groups")
        self.verify_replicas = verify_replicas
        if self.sharded:
            n_shards = backend.n_shards
            doc_ids = backend.replica_groups[0][0].index.doctable.doc_ids()
            # Every shard carries the global document table, so any one
            # machine names the whole corpus.
            self.epochs = EpochManager.for_corpus(doc_ids, n_shards=n_shards)
        else:
            self.epochs = EpochManager.for_corpus(
                backend.index.doctable.doc_ids()
            )

    # -- machine plumbing -----------------------------------------------------

    def _machines(self) -> List[Tuple[int, object]]:
        """Every (shard id, machine) pair; flat systems are shard 0."""
        if not self.sharded:
            return [(0, self.backend)]
        return [
            (shard_id, machine)
            for shard_id, group in enumerate(self.backend.replica_groups)
            for machine in group
        ]

    def _global_stats(self, term: str) -> Optional[Tuple[int, int]]:
        """Current global (df, ctf) of a term, from any dictionary that
        carries it.  Build-time serving views bake global statistics
        into every shard that stores the term, and this pipeline keeps
        them global under mutation, so the first entry found is
        authoritative."""
        for _shard_id, machine in self._machines():
            entry = machine.index.dictionary.lookup(term)
            if entry is not None:
                return entry.df, entry.ctf
        return None

    def _verify_groups(self) -> int:
        """Block-compare every replica group's platters; returns groups
        checked.  Divergence means a mutation was applied asymmetrically
        — a bug, surfaced as :class:`ReplicaFailedError`."""
        if not self.sharded:
            return 0
        verified = 0
        for shard_id, group in enumerate(self.backend.replica_groups):
            reference = group[0]
            for replica_id, mirror in enumerate(group[1:], start=1):
                if mirror.fs.disk._blocks != reference.fs.disk._blocks:
                    raise ReplicaFailedError(
                        shard_id, replica_id,
                        reason="replica platter diverged after ingest",
                    )
            if len(group) > 1:
                verified += 1
        return verified

    # -- mutations ------------------------------------------------------------

    def _apply_add(self, document: Document) -> Tuple[int, List[str]]:
        """Route one add; returns (owning shard id, terms whose records
        the add rewrote) — the term-cache invalidation set."""
        if not self.sharded:
            by_term, _kept = _term_stats(document, self.backend.index)
            add_document_incremental(self.backend.index, document)
            return 0, list(by_term)
        owner = self.backend.partitioner.shard_of(document.doc_id)
        by_term, kept = _term_stats(
            document, self.backend.replica_groups[owner][0].index
        )
        # Global df/ctf snapshot *before* the mutation, for terms the
        # owner has never stored (its dictionary must start from the
        # global count or document-at-a-time idf drifts from a rebuild).
        missing: Dict[str, Tuple[int, int]] = {}
        owner_dict = self.backend.replica_groups[owner][0].index.dictionary
        for term in by_term:
            if owner_dict.lookup(term) is None:
                stats = self._global_stats(term)
                if stats is not None:
                    missing[term] = stats
        for machine in self.backend.replica_groups[owner]:
            index = machine.index
            for term, (df, ctf) in sorted(missing.items()):
                entry = index.dictionary.add(term)
                entry.df, entry.ctf = df, ctf
            add_document_incremental(index, document)
        for shard_id, group in enumerate(self.backend.replica_groups):
            if shard_id == owner:
                continue
            for machine in group:
                index = machine.index
                index.doctable.add(document.doc_id, kept, document.name)
                index.stats.documents += 1
                index.stats.postings += kept
                for term, tf in by_term.items():
                    entry = index.dictionary.lookup(term)
                    if entry is not None:
                        entry.df += 1
                        entry.ctf += tf
        return owner, list(by_term)

    def _apply_delete(self, document: Document) -> int:
        """Route one tombstone delete; returns the owning shard id."""
        if not self.sharded:
            tombstone_document_incremental(self.backend.index, document)
            return 0
        owner = self.backend.partitioner.shard_of(document.doc_id)
        by_term, kept = _term_stats(
            document, self.backend.replica_groups[owner][0].index
        )
        for machine in self.backend.replica_groups[owner]:
            tombstone_document_incremental(machine.index, document)
        for shard_id, group in enumerate(self.backend.replica_groups):
            if shard_id == owner:
                continue
            for machine in group:
                index = machine.index
                index.doctable.remove(document.doc_id)
                index.stats.documents -= 1
                index.stats.postings -= kept
                for term, tf in by_term.items():
                    entry = index.dictionary.lookup(term)
                    if entry is not None:
                        entry.df -= 1
                        entry.ctf -= tf
        return owner

    def apply(
        self,
        adds: Sequence[Document] = (),
        deletes: Sequence[Document] = (),
    ) -> IngestReport:
        """Apply one batch (adds first, then deletes) and publish.

        Deletes take full :class:`Document`\\ s, not bare ids: the token
        stream lets the tombstone delete adjust per-term dictionary
        statistics exactly without decoding a single record — the cheap
        delete the tombstone mechanism exists for.  The epoch publishes
        atomically after the whole batch: indexes saved, WAL
        epoch-commit markers appended, then the in-memory epoch bumps.
        A query admitted before this returns sees the previous epoch's
        corpus exactly; one admitted after sees the new corpus exactly.
        """
        machines = self._machines()
        starts = [(machine, machine.clock.snapshot()) for _s, machine in machines]
        touched = set()
        mutated: Dict[int, set] = {}
        for document in adds:
            owner, terms = self._apply_add(document)
            touched.add(owner)
            mutated.setdefault(owner, set()).update(terms)
        for document in deletes:
            touched.add(self._apply_delete(document))

        next_epoch = self.epochs.epoch + 1
        wal_marked = False
        for _shard_id, machine in machines:
            machine.index.save()
            mfile = getattr(machine.index.store, "mfile", None)
            if mfile is not None and mfile.wal is not None:
                mfile.wal.log_epoch(next_epoch)
                wal_marked = True

        record: EpochRecord = self.epochs.publish(
            added=[d.doc_id for d in adds],
            deleted=[d.doc_id for d in deletes],
            shards_touched=sorted(touched) if self.sharded else (0,),
        )
        assert record.epoch == next_epoch

        groups_verified = self._verify_groups() if self.verify_replicas else 0
        elapsed = [machine.clock.since(start) for machine, start in starts]
        return IngestReport(
            epoch=record.epoch,
            docs_added=len(adds),
            docs_deleted=len(deletes),
            shards_touched=record.shards_touched,
            wall_ms=max((e.wall_ms for e in elapsed), default=0.0),
            machine_ms=sum(e.wall_ms for e in elapsed),
            groups_verified=groups_verified,
            wal_marked=wal_marked,
            mutated_terms={
                shard: tuple(sorted(terms))
                for shard, terms in sorted(mutated.items())
            },
        )

    # -- compaction -----------------------------------------------------------

    def compact(self) -> CompactionSummary:
        """Fold tombstones out and compact every machine's Mneme file.

        Runs on the machines' simulated clocks, so it contends with
        query traffic in simulated time exactly as a background thread
        would.  Rankings are invariant: the postings queries can see do
        not change (the decode-time filter already hid the dead
        documents), and the recomputed exact bounds only *tighten*
        pruning.  Rewrites and the segment-streaming compactor are
        deterministic, so replica platters stay byte-identical.
        """
        machines = self._machines()
        for _shard_id, machine in machines:
            if getattr(machine.index.store, "mfile", None) is None:
                raise ConfigError(
                    "compaction requires a Mneme backend "
                    f"(got {machine.config.backend!r})"
                )
        summary = CompactionSummary()
        starts = [(machine, machine.clock.snapshot()) for _s, machine in machines]
        from ..mneme import compact as gc_compact

        for _shard_id, machine in machines:
            index = machine.index
            summary.tombstones_folded += len(index.tombstones)
            summary.records_rewritten += fold_tombstones(index)
            index.save()
            report = gc_compact(index.store.mfile)
            summary.bytes_reclaimed += report.bytes_reclaimed
            summary.segments_copied += report.segments_copied
        summary.groups_verified = (
            self._verify_groups() if self.verify_replicas else 0
        )
        elapsed = [machine.clock.since(start) for machine, start in starts]
        summary.wall_ms = max((e.wall_ms for e in elapsed), default=0.0)
        summary.machine_ms = sum(e.wall_ms for e in elapsed)
        return summary
