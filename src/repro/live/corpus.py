"""Deterministic document sources and stop-the-world rebuilds.

Ingest workloads need two things the synthetic collections do not give
directly: a supply of *new* documents to add (with fresh ids but the
same vocabulary statistics) and the ability to regenerate any document
by id — tombstone deletes take the full document so the dictionary
statistics adjust without record decodes, and the bit-identity gate
rebuilds the corpus of any past epoch from scratch.

:class:`LiveCorpus` provides both, purely deterministically: document
``base_n + j`` carries the token stream of base document ``((j - 1) %
base_n) + 1``, so any run (or re-run, or fresh rebuild) derives the
identical corpus from the collection profile alone.

:func:`fresh_flat_index` is the stop-the-world comparator: a from-
scratch :class:`~repro.inquery.IndexBuilder` build of an arbitrary
document list on a fresh simulated machine.  Sharded rankings are
checked against the same flat rebuild — the PR-4 invariant (sharded
bit-identical to single-disk) composes with this one.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.config import SystemConfig
from ..errors import ConfigError, IndexError_
from ..inquery import (
    DEFAULT_TOP_K,
    CollectionIndex,
    Document,
    DocumentAtATimeEngine,
    IndexBuilder,
    IndexStats,
    MnemeInvertedFile,
    RetrievalEngine,
)
from ..simdisk import SimClock, SimDisk, SimFileSystem
from ..synth import SyntheticCollection


class LiveCorpus:
    """Every document an ingest workload can touch, regenerable by id."""

    def __init__(self, collection: SyntheticCollection):
        self.collection = collection
        self._base: Dict[int, Document] = {
            document.doc_id: document
            for document in collection.iter_documents()
        }
        self.base_count = len(self._base)
        self._extra: Dict[int, Document] = {}

    @property
    def base_ids(self) -> List[int]:
        return sorted(self._base)

    def document(self, doc_id: int) -> Document:
        """The document with ``doc_id`` — base or synthesized."""
        if doc_id in self._base:
            return self._base[doc_id]
        if doc_id in self._extra:
            return self._extra[doc_id]
        if doc_id <= self.base_count:
            raise IndexError_(f"unknown document id {doc_id}")
        return self._synthesize(doc_id)

    def _synthesize(self, doc_id: int) -> Document:
        j = doc_id - self.base_count
        source = self._base[((j - 1) % self.base_count) + 1]
        document = Document(
            doc_id=doc_id,
            name=f"{self.collection.profile.name}-live-{doc_id}",
            tokens=source.tokens,
        )
        self._extra[doc_id] = document
        return document

    def new_documents(self, count: int, after: int) -> List[Document]:
        """``count`` fresh documents with ids following ``after``."""
        return [self.document(after + j + 1) for j in range(count)]

    def documents_for(self, doc_ids: Iterable[int]) -> List[Document]:
        """Documents for an epoch's live set, in deterministic id order."""
        return [self.document(doc_id) for doc_id in sorted(doc_ids)]


@dataclass
class RebuiltSystem:
    """A stop-the-world rebuild on its own fresh simulated machine."""

    fs: SimFileSystem
    clock: SimClock
    index: CollectionIndex


def fresh_flat_index(
    config: SystemConfig, documents: List[Document]
) -> RebuiltSystem:
    """Index ``documents`` from scratch — the bit-identity reference.

    The build goes through :class:`~repro.inquery.IndexBuilder` (the
    external-sort pipeline), not the incremental path under test, on a
    fresh machine with the same cost model and Mneme layout.  Buffers
    and WAL are irrelevant to rankings and are left off.
    """
    if config.backend == "btree":
        raise ConfigError("the rebuild comparator uses the Mneme backend")
    clock = SimClock(cost=config.cost)
    fs = SimFileSystem(
        SimDisk(clock),
        cache_blocks=config.fs_cache_blocks,
        readahead_blocks=config.readahead_blocks,
    )
    if config.backend == "mneme-linked":
        from ..inquery import LinkedMnemeInvertedFile

        store = LinkedMnemeInvertedFile(
            fs,
            medium_segment_bytes=config.medium_segment_bytes,
            medium_max_bytes=config.medium_max_bytes,
            chunk_bytes=config.chunk_bytes,
        )
    else:
        store = MnemeInvertedFile(
            fs,
            medium_segment_bytes=config.medium_segment_bytes,
            medium_max_bytes=config.medium_max_bytes,
        )
    builder = IndexBuilder(fs, store, stopwords=(), stem_fn=str)
    for document in sorted(documents, key=lambda d: d.doc_id):
        builder.add_document(document)
    if not documents:
        # finalize() requires at least one record; an empty corpus has
        # an empty index by construction.
        index = CollectionIndex(
            fs=fs,
            dictionary=builder._dictionary,
            doctable=builder._doctable,
            store=store,
            stats=IndexStats(),
            stopwords=frozenset(),
            stem_fn=str,
        )
        return RebuiltSystem(fs=fs, clock=clock, index=index)
    index = builder.finalize()
    return RebuiltSystem(fs=fs, clock=clock, index=index)


def reference_rankings(
    config: SystemConfig,
    documents: List[Document],
    queries: List[str],
    engine: str = "taat",
    top_k: int = DEFAULT_TOP_K,
    prune: str = "off",
) -> Dict[str, List]:
    """Query-to-ranking map from a stop-the-world rebuild."""
    rebuilt = fresh_flat_index(config, documents)
    if engine == "daat":
        runner = DocumentAtATimeEngine(
            rebuilt.index, top_k=top_k, prune=prune
        )
    elif engine == "taat":
        runner = RetrievalEngine(rebuilt.index, top_k=top_k)
    else:
        raise ConfigError(f"unknown engine {engine!r}")
    return {text: runner.run_query(text).ranking for text in queries}
