"""Live ingest: epoch-isolated continuous mutation of a serving index.

The paper's incremental-update claim, made operational: document adds
and tombstone deletes interleave with query traffic under snapshot-
epoch isolation (:mod:`.epoch`), batches apply through the ordinary
charged Mneme store and publish atomically with WAL epoch-commit
markers (:mod:`.ingest`), and background compaction folds tombstones
out with byte-identical post-compaction platters.  See DESIGN.md §11.
"""

from .corpus import LiveCorpus, RebuiltSystem, fresh_flat_index, reference_rankings
from .epoch import EpochManager, EpochRecord
from .ingest import CompactionSummary, IngestPipeline, IngestReport

__all__ = [
    "CompactionSummary",
    "EpochManager",
    "EpochRecord",
    "IngestPipeline",
    "IngestReport",
    "LiveCorpus",
    "RebuiltSystem",
    "fresh_flat_index",
    "reference_rankings",
]
