"""Merging per-shard rankings into one collection-wide result.

Document partitioning makes the merge lossless: the shards' document
sets are disjoint, every shard scores its documents with *global*
statistics (see :mod:`.taat`), and each shard returns its local top-k
under the engines' shared ordering key ``(-belief, doc id)``.  Any
document in the global top-k therefore appears in its home shard's local
top-k (it outranks at least as many documents globally as locally), so
selecting k from the concatenated candidates reproduces the single-disk
engine's ranking bit for bit — ties included, because the doc-id
tie-break makes the key a total order.

Degradation composes additively.  A shard that served the query but hit
unreadable records contributes its own ``terms_attempted``/
``terms_failed`` counts; a shard that was marked down contributes the
stored terms it *would* have been asked for (counted from its in-memory
dictionary — the coordinator always knows what evidence went missing,
even when the shard's disk cannot say).  The merged result is degraded
whenever any evidence was lost, and its ``completeness`` is the fraction
of attempted stored-term reads that produced evidence, collection-wide.
"""

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..inquery import QueryResult
from ..inquery.engine import DEFAULT_TOP_K


@dataclass
class ShardOutcome:
    """One shard's contribution to one query.

    ``result`` is ``None`` for a shard that did not serve the query (it
    was marked down); ``attempted_down`` then counts the distinct stored
    terms of the query that shard holds, i.e. the reads that were never
    issued and must be accounted as failed.

    ``replica_id`` records which replica of the shard produced
    ``result`` (0 is the primary); it stays 0 on unreplicated systems.
    """

    shard_id: int
    result: Optional[QueryResult] = None
    attempted_down: int = 0
    replica_id: int = 0


@dataclass
class ShardedQueryResult(QueryResult):
    """A merged ranking plus the per-shard provenance of the evidence."""

    #: Documents each shard placed in the merged top-k.
    shard_contributions: Dict[int, int] = field(default_factory=dict)
    #: Shards that did not serve the query at all.
    shards_down: Tuple[int, ...] = ()
    #: Which replica served each shard's slice (shard id -> replica id).
    served_by: Dict[int, int] = field(default_factory=dict)


def merge_results(
    text: str,
    outcomes: List[ShardOutcome],
    top_k: int = DEFAULT_TOP_K,
    doc_home: Optional[Dict[int, int]] = None,
) -> ShardedQueryResult:
    """Merge per-shard query results into the collection-wide ranking.

    ``doc_home`` (doc id -> shard id) attributes merged top-k entries to
    shards for the contribution breakdown; when omitted, attribution
    falls back to which outcome's ranking carried the document.
    """
    candidates: List[Tuple[int, float]] = []
    home: Dict[int, int] = {} if doc_home is None else doc_home
    looked_up = 0
    attempted = 0
    failed = 0
    down: List[int] = []
    served_by: Dict[int, int] = {}
    for outcome in outcomes:
        if outcome.result is None:
            down.append(outcome.shard_id)
            attempted += outcome.attempted_down
            failed += outcome.attempted_down
            continue
        served_by[outcome.shard_id] = outcome.replica_id
        candidates.extend(outcome.result.ranking)
        if doc_home is None:
            for doc_id, _belief in outcome.result.ranking:
                home[doc_id] = outcome.shard_id
        looked_up += outcome.result.terms_looked_up
        attempted += outcome.result.terms_attempted
        failed += outcome.result.terms_failed
    ranking = heapq.nsmallest(
        top_k, candidates, key=lambda item: (-item[1], item[0])
    )
    contributions: Dict[int, int] = {}
    for doc_id, _belief in ranking:
        shard_id = home.get(doc_id)
        if shard_id is not None:
            contributions[shard_id] = contributions.get(shard_id, 0) + 1
    return ShardedQueryResult(
        query=text,
        ranking=ranking,
        terms_looked_up=looked_up,
        degraded=failed > 0,
        terms_attempted=attempted,
        terms_failed=failed,
        shard_contributions=contributions,
        shards_down=tuple(down),
        served_by=served_by,
    )
