"""Concurrent fan-out scheduling of queries across shards.

Queries run against every live shard through a
:class:`~concurrent.futures.ThreadPoolExecutor`; shards are real Python
objects on one machine, so the pool models the coordinator's dispatch
loop while each shard's *simulated* time advances on its own clock.

Determinism under threading is by construction, not by luck:

* every task for shard *i* runs under shard *i*'s lock and touches only
  shard *i*'s simulated machine, so per-shard state sees a serialized,
  schedule-independent sequence of operations;
* each query phase is a **barrier** — the coordinator collects every
  shard's answer (in shard-id order) before computing global statistics
  or merging, so downstream work never depends on arrival order;
* the merge itself is pure and ordered (see :mod:`.merge`).

Two clocks come out of a batch.  The **critical path** adds up, per
barrier, the slowest shard's time slice plus the coordinator's own
(serial) statistics-exchange and merge work — the simulated wall clock
of an actual N-machine deployment.  The **sum** over all shards is the
total machine time burned, the cost side of the scaling ledger; both are
reported by :mod:`repro.shard.metrics`.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.stats import max_over_mean
from ..errors import ConfigError
from ..inquery import (
    DEFAULT_TOP_K,
    DocumentAtATimeEngine,
    QueryResult,
    parse_query,
    query_terms,
)
from ..simdisk.timing import TimeBreakdown
from .merge import ShardOutcome, ShardedQueryResult, merge_results
from .system import ShardedIRSystem
from .taat import ShardTaatRunner


@dataclass
class SchedulerStats:
    """What the scheduler did, for the run's metrics."""

    workers: int = 0
    tasks: int = 0
    barriers: int = 0
    #: Batched wave rounds served (``run_wave`` calls); 0 for per-query
    #: batch runs, where no wave amortization happened.
    waves: int = 0
    #: Most tasks simultaneously submitted and unfinished (per barrier,
    #: every live shard has exactly one task in flight).
    max_queue_depth: int = 0
    #: Simulated busy time per shard over the batch, in milliseconds.
    busy_ms: Dict[int, float] = field(default_factory=dict)

    @property
    def shard_skew(self) -> float:
        """Max-over-mean shard busy time: 1.0 is a perfectly even load."""
        return max_over_mean(self.busy_ms.values())


@dataclass
class BatchOutcome:
    """Everything a batch run produces, before metrics shaping."""

    results: List[ShardedQueryResult]
    per_shard_results: Dict[int, List[QueryResult]]
    stats: SchedulerStats
    critical: TimeBreakdown


@dataclass
class WaveOutcome:
    """A batched wave's results plus a latency attribution per query.

    ``per_query_ms[q]`` is query *q*'s share of the wave's critical
    path: its slowest shard's collect slice + its coordinator exchange
    charge + its slowest shard's score slice + its merge charge.  The
    shares sum to (at most) the wave's critical path — barriers are
    shared, so a query never pays for another query's shard time, which
    is exactly the amortization the wave exists to buy.
    """

    results: List[ShardedQueryResult]
    per_query_ms: List[float]
    per_shard_results: Dict[int, List[QueryResult]]
    stats: SchedulerStats
    critical: TimeBreakdown


class ShardScheduler:
    """Fans queries out to per-shard engines and merges the answers.

    ``engine`` selects per-shard evaluation: ``"taat"`` runs the
    two-phase term-at-a-time exchange (any query shape), ``"daat"`` runs
    the document-at-a-time engine (flat #sum/#wsum; global df comes from
    the shard dictionaries, so no exchange phase is needed).

    ``prune`` is forwarded to every per-shard document-at-a-time engine
    (``"off"`` / ``"auto"`` / ``"require"``).  Each shard prunes against
    its own top-k threshold; the coordinator's merge is unchanged, and
    because per-shard top-k is bit-identical to per-shard exhaustive
    evaluation, the merged ranking is too.
    """

    def __init__(
        self,
        sharded: ShardedIRSystem,
        top_k: int = DEFAULT_TOP_K,
        engine: str = "taat",
        max_workers: Optional[int] = None,
        prune: str = "off",
    ):
        if engine not in ("taat", "daat"):
            raise ConfigError(f"unknown shard engine {engine!r}")
        if prune != "off" and engine != "daat":
            raise ConfigError(
                "dynamic pruning requires the document-at-a-time engine"
            )
        self.sharded = sharded
        self.top_k = top_k
        self.engine = engine
        self.prune = prune
        self.max_workers = max_workers or sharded.n_shards
        self._locks = [threading.Lock() for _ in sharded.shards]
        if engine == "taat":
            self._taat = [
                ShardTaatRunner(shard, top_k=top_k) for shard in sharded.shards
            ]
        else:
            self._daat = [
                DocumentAtATimeEngine(
                    shard.index,
                    top_k=top_k,
                    use_reservation=sharded.config.use_reservation,
                    use_fastpath=sharded.config.use_fastpath,
                    prune=prune,
                )
                for shard in sharded.shards
            ]

    # -- batch driving ---------------------------------------------------------

    def run_batch(self, queries: List[str]) -> BatchOutcome:
        sharded = self.sharded
        stats = SchedulerStats(workers=self.max_workers)
        critical = TimeBreakdown()
        results: List[ShardedQueryResult] = []
        per_shard: Dict[int, List[QueryResult]] = {
            i: [] for i in range(sharded.n_shards)
        }
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            for text in queries:
                live = sharded.live_shards
                coord_start = sharded.clock.snapshot()
                if self.engine == "taat":
                    answers = self._serve_taat(pool, live, text, stats, critical)
                else:
                    answers = self._wave(
                        pool, live,
                        lambda i: self._daat[i].run_query(text),
                        stats, critical,
                    )
                outcomes: List[ShardOutcome] = []
                for shard_id in range(sharded.n_shards):
                    if shard_id in answers:
                        outcomes.append(ShardOutcome(shard_id, answers[shard_id]))
                        per_shard[shard_id].append(answers[shard_id])
                    else:
                        outcomes.append(ShardOutcome(
                            shard_id,
                            attempted_down=self._down_attempted(shard_id, text),
                        ))
                sharded.clock.charge_user(
                    sharded.clock.cost.cpu_ms_per_posting
                    * sum(len(o.result.ranking) for o in outcomes if o.result)
                )
                results.append(merge_results(text, outcomes, top_k=self.top_k))
                coord = sharded.clock.since(coord_start)
                critical.user_ms += coord.user_ms
                critical.system_ms += coord.system_ms
                critical.io_ms += coord.io_ms
        return BatchOutcome(
            results=results,
            per_shard_results=per_shard,
            stats=stats,
            critical=critical,
        )

    def run_wave(self, texts: List[str]) -> WaveOutcome:
        """Serve a wave of queries with the per-phase barriers shared.

        Where :meth:`run_batch` pays two barriers (collect, score) *per
        query*, a wave pays two barriers *total*: every shard collects
        the whole wave in one task, the coordinator runs the df
        exchange for all queries in one pass, and every shard scores
        the whole wave in a second task.  Rankings are bit-identical to
        per-query serving — the phases do exactly the same storage and
        scoring work, just grouped — which the serving gate checks
        against the single-disk engine.
        """
        sharded = self.sharded
        stats = SchedulerStats(workers=self.max_workers, waves=1)
        critical = TimeBreakdown()
        per_shard: Dict[int, List[QueryResult]] = {
            i: [] for i in range(sharded.n_shards)
        }
        if not texts:
            return WaveOutcome([], [], per_shard, stats, critical)
        n = len(texts)
        per_query_ms = [0.0] * n
        live = sharded.live_shards
        cost = sharded.clock.cost
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            if self.engine == "taat":
                collected = self._wave(
                    pool, live,
                    lambda i: self._taat[i].collect_many(texts),
                    stats, critical,
                )
                # One coordinator pass sums every query's df vector.
                coord_start = sharded.clock.snapshot()
                global_df_lists: List[List[int]] = []
                for q in range(n):
                    slots = len(collected[live[0]][0][q])
                    global_df_lists.append([
                        sum(collected[i][0][q][slot] for i in live)
                        for slot in range(slots)
                    ])
                    exchange_ms = cost.cpu_ms_per_posting * slots * len(live)
                    sharded.clock.charge_user(exchange_ms)
                    per_query_ms[q] += exchange_ms
                self._add(critical, sharded.clock.since(coord_start))
                scored = self._wave(
                    pool, live,
                    lambda i: self._taat[i].score_many(global_df_lists),
                    stats, critical,
                )
                answers = [
                    {i: scored[i][0][q] for i in live} for q in range(n)
                ]
                for q in range(n):
                    per_query_ms[q] += max(
                        collected[i][1][q].wall_ms for i in live
                    )
                    per_query_ms[q] += max(
                        scored[i][1][q].wall_ms for i in live
                    )
            else:
                ran = self._wave(
                    pool, live,
                    lambda i: self._daat_many(i, texts),
                    stats, critical,
                )
                answers = [{i: ran[i][0][q] for i in live} for q in range(n)]
                for q in range(n):
                    per_query_ms[q] += max(ran[i][1][q].wall_ms for i in live)
        results: List[ShardedQueryResult] = []
        coord_start = sharded.clock.snapshot()
        for q, text in enumerate(texts):
            outcomes: List[ShardOutcome] = []
            for shard_id in range(sharded.n_shards):
                if shard_id in answers[q]:
                    outcomes.append(ShardOutcome(shard_id, answers[q][shard_id]))
                    per_shard[shard_id].append(answers[q][shard_id])
                else:
                    outcomes.append(ShardOutcome(
                        shard_id,
                        attempted_down=self._down_attempted(shard_id, text),
                    ))
            merge_ms = cost.cpu_ms_per_posting * sum(
                len(o.result.ranking) for o in outcomes if o.result
            )
            sharded.clock.charge_user(merge_ms)
            per_query_ms[q] += merge_ms
            results.append(merge_results(text, outcomes, top_k=self.top_k))
        self._add(critical, sharded.clock.since(coord_start))
        return WaveOutcome(
            results=results,
            per_query_ms=per_query_ms,
            per_shard_results=per_shard,
            stats=stats,
            critical=critical,
        )

    def _daat_many(self, shard_id: int, texts: List[str]):
        """One shard's whole-wave DAAT task, with per-query deltas."""
        engine = self._daat[shard_id]
        clock = self.sharded.shards[shard_id].clock
        results, deltas = [], []
        for text in texts:
            start = clock.snapshot()
            results.append(engine.run_query(text))
            deltas.append(clock.since(start))
        return results, deltas

    @staticmethod
    def _add(critical: TimeBreakdown, delta: TimeBreakdown) -> None:
        critical.user_ms += delta.user_ms
        critical.system_ms += delta.system_ms
        critical.io_ms += delta.io_ms

    def _serve_taat(
        self,
        pool: ThreadPoolExecutor,
        live: List[int],
        text: str,
        stats: SchedulerStats,
        critical: TimeBreakdown,
    ) -> Dict[int, QueryResult]:
        """The two-phase exchange: collect local dfs, sum, score."""
        local_dfs = self._wave(
            pool, live, lambda i: self._taat[i].collect(text), stats, critical
        )
        slots = len(local_dfs[live[0]])
        global_dfs = [
            sum(local_dfs[i][slot] for i in live) for slot in range(slots)
        ]
        # The exchange is coordinator work: one combine per (slot, shard).
        self.sharded.clock.charge_user(
            self.sharded.clock.cost.cpu_ms_per_posting * slots * len(live)
        )
        return self._wave(
            pool, live, lambda i: self._taat[i].score(global_dfs), stats, critical
        )

    def _wave(
        self,
        pool: ThreadPoolExecutor,
        shard_ids: List[int],
        fn: Callable[[int], object],
        stats: SchedulerStats,
        critical: TimeBreakdown,
    ) -> Dict[int, object]:
        """One barrier: run ``fn`` on every listed shard, gather in order."""
        stats.tasks += len(shard_ids)
        stats.max_queue_depth = max(stats.max_queue_depth, len(shard_ids))
        futures = {i: pool.submit(self._on_shard, i, fn) for i in shard_ids}
        answers: Dict[int, object] = {}
        deltas: Dict[int, TimeBreakdown] = {}
        for shard_id in shard_ids:  # shard order, regardless of completion order
            answers[shard_id], deltas[shard_id] = futures[shard_id].result()
        stats.barriers += 1
        slowest = max(shard_ids, key=lambda i: (deltas[i].wall_ms, i))
        critical.user_ms += deltas[slowest].user_ms
        critical.system_ms += deltas[slowest].system_ms
        critical.io_ms += deltas[slowest].io_ms
        for shard_id in shard_ids:
            stats.busy_ms[shard_id] = (
                stats.busy_ms.get(shard_id, 0.0) + deltas[shard_id].wall_ms
            )
        return answers

    def _on_shard(self, shard_id: int, fn: Callable[[int], object]):
        """Run one task against one shard's simulated machine.

        The per-shard lock serializes all touches of that machine, so
        its clock delta is attributable to exactly this task.
        """
        with self._locks[shard_id]:
            clock = self.sharded.shards[shard_id].clock
            start = clock.snapshot()
            result = fn(shard_id)
            return result, clock.since(start)

    def _down_attempted(self, shard_id: int, text: str) -> int:
        """Stored terms a down shard would have been asked to read.

        The shard's dictionary is coordinator-resident metadata, so the
        accounting works even when the shard's disk is unreachable.
        """
        index = self.sharded.shards[shard_id].index
        count = 0
        for term in set(query_terms(parse_query(text))):
            entry = index.term_entry(term)
            if entry is not None and entry.df and entry.storage_key:
                count += 1
        return count
