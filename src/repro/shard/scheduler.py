"""Concurrent fan-out scheduling of queries across shards and replicas.

Queries run against every live shard through a
:class:`~concurrent.futures.ThreadPoolExecutor`; shards are real Python
objects on one machine, so the pool models the coordinator's dispatch
loop while each shard's *simulated* time advances on its own clock.

Determinism under threading is by construction, not by luck:

* every task for shard *i* runs under shard *i*'s lock and touches only
  shard *i*'s simulated machines, so per-shard state sees a serialized,
  schedule-independent sequence of operations;
* each query phase is a **barrier** — the coordinator collects every
  shard's answer (in shard-id order) before computing global statistics
  or merging, so downstream work never depends on arrival order;
* the merge itself is pure and ordered (see :mod:`.merge`).

**Replica routing and failover.**  A replicated shard carries R mirror
machines with byte-identical platters (see :mod:`.system`).  Each
shard's task picks one healthy replica per round — deterministically the
lowest id (``replica_policy="primary"``), or a seeded hash of
``(seed, round, shard)`` over the healthy set (``"spread"``) — and runs
the phase there.  If the attempt comes back *degraded* (a
``BadBlockError`` ate evidence: a dead disk, a torn record), the task
marks that replica failed, abandons its pending state, and retries the
next healthy replica — all inside the same barrier, charged sequentially
to simulated time, so one replica failure costs latency but never
correctness: the served ranking is the one a healthy single-disk system
would produce.  Only when *every* replica of a shard has failed does the
task keep the last degraded answer — the PR 3/4 degraded path — so a
replicated system degrades exactly like an unreplicated one once
redundancy is exhausted, and never raises mid-query.

For TAAT the failover happens at the **collect** phase, before the df
exchange: a degraded collect would contribute zeroed local dfs and
silently poison every shard's idf weights.  The score phase then runs
pinned to whichever replica collected (phase 2 replays memoized
postings and touches no storage, so it cannot fail independently).

Two clocks come out of a batch.  The **critical path** adds up, per
barrier, the slowest shard's time slice plus the coordinator's own
(serial) statistics-exchange and merge work — the simulated wall clock
of an actual N-machine deployment.  The **sum** over all shards is the
total machine time burned, the cost side of the scaling ledger; both are
reported by :mod:`repro.shard.metrics`.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.stats import max_over_mean
from ..errors import ConfigError, RebalanceInProgressError
from ..inquery import (
    DEFAULT_TOP_K,
    DocumentAtATimeEngine,
    QueryResult,
    parse_query,
    query_terms,
)
from ..simdisk.timing import TimeBreakdown
from .merge import ShardOutcome, ShardedQueryResult, merge_results
from .partition import _mix64
from .system import ShardedIRSystem
from .taat import ShardTaatRunner


@dataclass
class SchedulerStats:
    """What the scheduler did, for the run's metrics."""

    workers: int = 0
    tasks: int = 0
    barriers: int = 0
    #: Batched wave rounds served (``run_wave`` calls); 0 for per-query
    #: batch runs, where no wave amortization happened.
    waves: int = 0
    #: Most tasks simultaneously submitted and unfinished (per barrier,
    #: every live shard has exactly one task in flight).
    max_queue_depth: int = 0
    #: Simulated busy time per shard over the batch, in milliseconds
    #: (all replicas of the shard combined, failed attempts included).
    busy_ms: Dict[int, float] = field(default_factory=dict)
    #: Simulated busy time per ``(shard, replica)`` — the replica-level
    #: refinement of ``busy_ms``.
    replica_busy_ms: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Which replica served each round, one ``{shard: replica}`` map per
    #: round (a round is one query in ``run_batch`` or one whole wave).
    served_by: List[Dict[int, int]] = field(default_factory=list)
    #: Every failover taken, in round order: round, shard, the replica
    #: that failed, the replica the work moved to (``None`` when the
    #: failed one was the last and its degraded answer was served).
    failovers: List[Dict[str, object]] = field(default_factory=list)

    @property
    def shard_skew(self) -> float:
        """Max-over-mean shard busy time: 1.0 is a perfectly even load."""
        return max_over_mean(self.busy_ms.values())


@dataclass
class BatchOutcome:
    """Everything a batch run produces, before metrics shaping."""

    results: List[ShardedQueryResult]
    per_shard_results: Dict[int, List[QueryResult]]
    stats: SchedulerStats
    critical: TimeBreakdown


@dataclass
class WaveOutcome:
    """A batched wave's results plus a latency attribution per query.

    ``per_query_ms[q]`` is query *q*'s share of the wave's critical
    path: its slowest shard's collect slice + its coordinator exchange
    charge + its slowest shard's score slice + its merge charge.  The
    shares sum to (at most) the wave's critical path — barriers are
    shared, so a query never pays for another query's shard time, which
    is exactly the amortization the wave exists to buy.  (Failed
    failover attempts are charged to the wave's critical path and busy
    ledgers but not attributed to individual queries.)
    """

    results: List[ShardedQueryResult]
    per_query_ms: List[float]
    per_shard_results: Dict[int, List[QueryResult]]
    stats: SchedulerStats
    critical: TimeBreakdown


@dataclass
class _TaskResult:
    """One shard task's outcome after replica routing and failover."""

    payload: object
    replica_id: int
    delta: TimeBreakdown                       #: all attempts, summed
    attempts: List[Tuple[int, TimeBreakdown]]  #: (replica, delta) per attempt
    #: Failover events this task recorded, in attempt order.  Kept
    #: task-local and folded into ``SchedulerStats.failovers`` at the
    #: barrier in shard-id order, so the trace is deterministic even
    #: when several shards fail over concurrently.
    events: List[Dict[str, object]] = field(default_factory=list)


class ShardScheduler:
    """Fans queries out to per-shard engines and merges the answers.

    ``engine`` selects per-shard evaluation: ``"taat"`` runs the
    two-phase term-at-a-time exchange (any query shape), ``"daat"`` runs
    the document-at-a-time engine (flat #sum/#wsum; global df comes from
    the shard dictionaries, so no exchange phase is needed).

    ``prune`` is forwarded to every per-shard document-at-a-time engine
    (``"off"`` / ``"auto"`` / ``"require"``).  Each shard prunes against
    its own top-k threshold; the coordinator's merge is unchanged, and
    because per-shard top-k is bit-identical to per-shard exhaustive
    evaluation, the merged ranking is too.

    ``replica_policy`` picks which healthy replica serves a round:
    ``"primary"`` always takes the lowest healthy id, ``"spread"``
    hashes ``(policy_seed, round, shard)`` over the healthy set so load
    spreads across mirrors while staying a pure function of the inputs.

    The scheduler captures the backend's topology ``epoch`` at
    construction; running it after a rebalance cutover raises
    :class:`~repro.errors.RebalanceInProgressError` — callers rebuild
    their scheduler from the post-cutover backend.
    """

    def __init__(
        self,
        sharded: ShardedIRSystem,
        top_k: int = DEFAULT_TOP_K,
        engine: str = "taat",
        max_workers: Optional[int] = None,
        prune: str = "off",
        replica_policy: str = "primary",
        policy_seed: int = 0,
        term_cache_bytes: int = 0,
    ):
        if engine not in ("taat", "daat"):
            raise ConfigError(f"unknown shard engine {engine!r}")
        if prune != "off" and engine != "daat":
            raise ConfigError(
                "dynamic pruning requires the document-at-a-time engine"
            )
        if replica_policy not in ("primary", "spread"):
            raise ConfigError(f"unknown replica policy {replica_policy!r}")
        self.sharded = sharded
        self.top_k = top_k
        self.engine = engine
        self.prune = prune
        self.replica_policy = replica_policy
        self.policy_seed = policy_seed
        self.max_workers = max_workers or sharded.n_shards
        self.epoch = sharded.epoch
        self._locks = [threading.Lock() for _ in range(sharded.n_shards)]
        self._rounds = 0
        # Engines are cached per (shard, replica) and validated against
        # the machine object they were built for, so a re-replicated
        # mirror transparently gets a fresh engine on first use.
        self._taat: Dict[Tuple[int, int], ShardTaatRunner] = {}
        self._daat: Dict[Tuple[int, int], DocumentAtATimeEngine] = {}
        # Decoded-term caches, one per (shard, replica), validated the
        # same way: a cache survives failover back to a healthy mirror
        # (the machine object is unchanged) but a re-replicated or
        # re-split machine starts cold.  0 bytes = caching off.
        self.term_cache_bytes = term_cache_bytes
        self._term_caches: Dict[Tuple[int, int], Tuple[object, object]] = {}

    # -- per-replica engines ---------------------------------------------------

    def _term_cache(self, shard_id: int, replica_id: int):
        if self.term_cache_bytes <= 0:
            return None
        machine = self.sharded.replica(shard_id, replica_id)
        key = (shard_id, replica_id)
        held = self._term_caches.get(key)
        if held is None or held[1] is not machine:
            # Imported lazily: the serve layer imports this module, so a
            # top-level import would be circular.
            from ..serve.termcache import TermCache

            held = (TermCache(self.term_cache_bytes, shard=shard_id), machine)
            self._term_caches[key] = held
        return held[0]

    def term_caches(self) -> List[Tuple[int, int, object]]:
        """Every live (shard id, replica id, cache), in id order."""
        return [
            (shard, replica, held[0])
            for (shard, replica), held in sorted(self._term_caches.items())
            if held[1] is self.sharded.replica(shard, replica)
        ]

    def invalidate_terms(self, shard_id: int, terms) -> int:
        """Ingest hook: drop mutated terms on the owning shard's caches."""
        dropped = 0
        for shard, _replica, cache in self.term_caches():
            if shard == shard_id:
                dropped += cache.invalidate_terms(terms)
        return dropped

    def note_epoch(self, epoch: int) -> None:
        """Stamp every cache with the just-published epoch."""
        for _shard, _replica, cache in self.term_caches():
            cache.note_epoch(epoch)

    def fold_term_tombstones(self, dead_by_shard: Dict[int, set]) -> None:
        """Compaction hook: merge each shard's folded tombstone set into
        its caches' entry snapshots (no entries dropped)."""
        for shard, _replica, cache in self.term_caches():
            dead = dead_by_shard.get(shard)
            if dead:
                cache.fold_tombstones(dead)

    def _taat_runner(self, shard_id: int, replica_id: int) -> ShardTaatRunner:
        machine = self.sharded.replica(shard_id, replica_id)
        key = (shard_id, replica_id)
        runner = self._taat.get(key)
        if runner is None or runner.system is not machine:
            runner = ShardTaatRunner(machine, top_k=self.top_k)
            self._taat[key] = runner
        runner.term_cache = self._term_cache(shard_id, replica_id)
        return runner

    def _daat_engine(self, shard_id: int, replica_id: int) -> DocumentAtATimeEngine:
        machine = self.sharded.replica(shard_id, replica_id)
        key = (shard_id, replica_id)
        engine = self._daat.get(key)
        if engine is None or engine.index is not machine.index:
            engine = DocumentAtATimeEngine(
                machine.index,
                top_k=self.top_k,
                use_reservation=self.sharded.config.use_reservation,
                use_fastpath=self.sharded.config.use_fastpath,
                prune=self.prune,
            )
            self._daat[key] = engine
        engine.term_cache = self._term_cache(shard_id, replica_id)
        return engine

    # -- replica choice and failover -------------------------------------------

    def _choose(self, shard_id: int, round_no: int, healthy: List[int]) -> int:
        if self.replica_policy == "spread" and len(healthy) > 1:
            mixed = _mix64(
                ((self.policy_seed & 0xFFFFFFFF) << 32)
                ^ (round_no << 8)
                ^ shard_id
            )
            return healthy[mixed % len(healthy)]
        return healthy[0]

    def _failover_task(
        self,
        shard_id: int,
        round_no: int,
        phase: str,
        run: Callable[[int], object],
        clean: Callable[[int, object], bool],
        abandon: Optional[Callable[[int], None]] = None,
    ) -> _TaskResult:
        """Run one phase on a healthy replica, failing over on degradation.

        ``run(replica)`` performs the phase; ``clean(replica, payload)``
        judges whether the attempt lost evidence.  A dirty attempt marks
        its replica failed and retries the next healthy one *only while
        one exists* — the last replica standing is never marked down, so
        an exhausted group keeps serving its (degraded) best effort every
        round instead of going dark, exactly the unreplicated behavior.
        """
        sharded = self.sharded
        delta = TimeBreakdown()
        attempts: List[Tuple[int, TimeBreakdown]] = []
        events: List[Dict[str, object]] = []
        tried: set = set()
        while True:
            healthy = [
                r for r in sharded.healthy_replicas(shard_id) if r not in tried
            ]
            choice = self._choose(shard_id, round_no, healthy)
            if events and events[-1]["to_replica"] is None:
                events[-1]["to_replica"] = choice
            tried.add(choice)
            machine = sharded.replica(shard_id, choice)
            start = machine.clock.snapshot()
            payload = run(choice)
            d = machine.clock.since(start)
            self._add(delta, d)
            attempts.append((choice, d))
            if clean(choice, payload):
                return _TaskResult(payload, choice, delta, attempts, events)
            remaining = [
                r for r in sharded.healthy_replicas(shard_id) if r not in tried
            ]
            if not remaining:
                # Redundancy exhausted: serve the degraded answer.
                events.append({
                    "round": round_no,
                    "shard": shard_id,
                    "failed_replica": choice,
                    "to_replica": None,
                    "phase": phase,
                })
                return _TaskResult(payload, choice, delta, attempts, events)
            sharded.mark_down(shard_id, replica_id=choice)
            if abandon is not None:
                abandon(choice)
            events.append({
                "round": round_no,
                "shard": shard_id,
                "failed_replica": choice,
                "to_replica": None,
                "phase": phase,
            })

    def _fixed_task(
        self, shard_id: int, replica_id: int, run: Callable[[int], object]
    ) -> _TaskResult:
        """Run one phase pinned to a specific replica (no failover)."""
        machine = self.sharded.replica(shard_id, replica_id)
        start = machine.clock.snapshot()
        payload = run(replica_id)
        d = machine.clock.since(start)
        return _TaskResult(payload, replica_id, d, [(replica_id, d)])

    # -- batch driving ---------------------------------------------------------

    def _check_epoch(self) -> None:
        if self.sharded.epoch != self.epoch:
            raise RebalanceInProgressError(
                reason="scheduler is stale after a topology cutover",
                expected_epoch=self.epoch,
                actual_epoch=self.sharded.epoch,
            )

    def run_batch(self, queries: List[str]) -> BatchOutcome:
        self._check_epoch()
        sharded = self.sharded
        stats = SchedulerStats(workers=self.max_workers)
        critical = TimeBreakdown()
        results: List[ShardedQueryResult] = []
        per_shard: Dict[int, List[QueryResult]] = {
            i: [] for i in range(sharded.n_shards)
        }
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            for text in queries:
                live = sharded.live_shards
                round_no = self._rounds
                self._rounds += 1
                coord_start = sharded.clock.snapshot()
                if self.engine == "taat":
                    answers, served = self._serve_taat(
                        pool, live, round_no, text, stats, critical
                    )
                else:
                    answers, served = self._wave(
                        pool, live,
                        lambda i: self._failover_task(
                            i, round_no, "daat",
                            run=lambda r, i=i: self._daat_engine(i, r).run_query(text),
                            clean=lambda r, res: not res.degraded,
                        ),
                        stats, critical,
                    )
                stats.served_by.append(dict(sorted(served.items())))
                outcomes: List[ShardOutcome] = []
                for shard_id in range(sharded.n_shards):
                    if shard_id in answers:
                        outcomes.append(ShardOutcome(
                            shard_id, answers[shard_id],
                            replica_id=served[shard_id],
                        ))
                        per_shard[shard_id].append(answers[shard_id])
                    else:
                        outcomes.append(ShardOutcome(
                            shard_id,
                            attempted_down=self._down_attempted(shard_id, text),
                        ))
                sharded.clock.charge_user(
                    sharded.clock.cost.cpu_ms_per_posting
                    * sum(len(o.result.ranking) for o in outcomes if o.result)
                )
                results.append(merge_results(text, outcomes, top_k=self.top_k))
                coord = sharded.clock.since(coord_start)
                critical.user_ms += coord.user_ms
                critical.system_ms += coord.system_ms
                critical.io_ms += coord.io_ms
        return BatchOutcome(
            results=results,
            per_shard_results=per_shard,
            stats=stats,
            critical=critical,
        )

    def run_wave(self, texts: List[str]) -> WaveOutcome:
        """Serve a wave of queries with the per-phase barriers shared.

        Where :meth:`run_batch` pays two barriers (collect, score) *per
        query*, a wave pays two barriers *total*: every shard collects
        the whole wave in one task, the coordinator runs the df
        exchange for all queries in one pass, and every shard scores
        the whole wave in a second task.  Rankings are bit-identical to
        per-query serving — the phases do exactly the same storage and
        scoring work, just grouped — which the serving gate checks
        against the single-disk engine.
        """
        self._check_epoch()
        sharded = self.sharded
        stats = SchedulerStats(workers=self.max_workers, waves=1)
        critical = TimeBreakdown()
        per_shard: Dict[int, List[QueryResult]] = {
            i: [] for i in range(sharded.n_shards)
        }
        if not texts:
            return WaveOutcome([], [], per_shard, stats, critical)
        n = len(texts)
        per_query_ms = [0.0] * n
        live = sharded.live_shards
        round_no = self._rounds
        self._rounds += 1
        cost = sharded.clock.cost
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            if self.engine == "taat":
                collected, served = self._wave(
                    pool, live,
                    lambda i: self._failover_task(
                        i, round_no, "collect",
                        run=lambda r, i=i: self._taat_runner(i, r).collect_many(texts),
                        clean=lambda r, _p, i=i: (
                            self._taat_runner(i, r).pending_failures == 0
                        ),
                        abandon=lambda r, i=i: self._taat_runner(i, r).abandon(),
                    ),
                    stats, critical,
                )
                # One coordinator pass sums every query's df vector.
                coord_start = sharded.clock.snapshot()
                global_df_lists: List[List[int]] = []
                for q in range(n):
                    slots = len(collected[live[0]][0][q])
                    global_df_lists.append([
                        sum(collected[i][0][q][slot] for i in live)
                        for slot in range(slots)
                    ])
                    exchange_ms = cost.cpu_ms_per_posting * slots * len(live)
                    sharded.clock.charge_user(exchange_ms)
                    per_query_ms[q] += exchange_ms
                self._add(critical, sharded.clock.since(coord_start))
                # Score runs pinned to whichever replica collected: its
                # memo provider holds the postings, and phase 2 touches
                # no storage, so it cannot fail independently.
                scored, _ = self._wave(
                    pool, live,
                    lambda i: self._fixed_task(
                        i, served[i],
                        run=lambda r, i=i: self._taat_runner(i, r).score_many(
                            global_df_lists
                        ),
                    ),
                    stats, critical,
                )
                answers = [
                    {i: scored[i][0][q] for i in live} for q in range(n)
                ]
                for q in range(n):
                    per_query_ms[q] += max(
                        collected[i][1][q].wall_ms for i in live
                    )
                    per_query_ms[q] += max(
                        scored[i][1][q].wall_ms for i in live
                    )
            else:
                ran, served = self._wave(
                    pool, live,
                    lambda i: self._failover_task(
                        i, round_no, "daat",
                        run=lambda r, i=i: self._daat_many(i, r, texts),
                        clean=lambda r, payload: all(
                            not res.degraded for res in payload[0]
                        ),
                    ),
                    stats, critical,
                )
                answers = [{i: ran[i][0][q] for i in live} for q in range(n)]
                for q in range(n):
                    per_query_ms[q] += max(ran[i][1][q].wall_ms for i in live)
        stats.served_by.append(dict(sorted(served.items())))
        results: List[ShardedQueryResult] = []
        coord_start = sharded.clock.snapshot()
        for q, text in enumerate(texts):
            outcomes: List[ShardOutcome] = []
            for shard_id in range(sharded.n_shards):
                if shard_id in answers[q]:
                    outcomes.append(ShardOutcome(
                        shard_id, answers[q][shard_id],
                        replica_id=served[shard_id],
                    ))
                    per_shard[shard_id].append(answers[q][shard_id])
                else:
                    outcomes.append(ShardOutcome(
                        shard_id,
                        attempted_down=self._down_attempted(shard_id, text),
                    ))
            merge_ms = cost.cpu_ms_per_posting * sum(
                len(o.result.ranking) for o in outcomes if o.result
            )
            sharded.clock.charge_user(merge_ms)
            per_query_ms[q] += merge_ms
            results.append(merge_results(text, outcomes, top_k=self.top_k))
        self._add(critical, sharded.clock.since(coord_start))
        return WaveOutcome(
            results=results,
            per_query_ms=per_query_ms,
            per_shard_results=per_shard,
            stats=stats,
            critical=critical,
        )

    def _daat_many(self, shard_id: int, replica_id: int, texts: List[str]):
        """One replica's whole-wave DAAT task, with per-query deltas."""
        engine = self._daat_engine(shard_id, replica_id)
        clock = self.sharded.replica(shard_id, replica_id).clock
        results, deltas = [], []
        for text in texts:
            start = clock.snapshot()
            results.append(engine.run_query(text))
            deltas.append(clock.since(start))
        return results, deltas

    @staticmethod
    def _add(critical: TimeBreakdown, delta: TimeBreakdown) -> None:
        critical.user_ms += delta.user_ms
        critical.system_ms += delta.system_ms
        critical.io_ms += delta.io_ms

    def _serve_taat(
        self,
        pool: ThreadPoolExecutor,
        live: List[int],
        round_no: int,
        text: str,
        stats: SchedulerStats,
        critical: TimeBreakdown,
    ):
        """The two-phase exchange: collect local dfs, sum, score."""
        local_dfs, served = self._wave(
            pool, live,
            lambda i: self._failover_task(
                i, round_no, "collect",
                run=lambda r, i=i: self._taat_runner(i, r).collect(text),
                clean=lambda r, _p, i=i: (
                    self._taat_runner(i, r).pending_failures == 0
                ),
                abandon=lambda r, i=i: self._taat_runner(i, r).abandon(),
            ),
            stats, critical,
        )
        slots = len(local_dfs[live[0]])
        global_dfs = [
            sum(local_dfs[i][slot] for i in live) for slot in range(slots)
        ]
        # The exchange is coordinator work: one combine per (slot, shard).
        self.sharded.clock.charge_user(
            self.sharded.clock.cost.cpu_ms_per_posting * slots * len(live)
        )
        answers, _ = self._wave(
            pool, live,
            lambda i: self._fixed_task(
                i, served[i],
                run=lambda r, i=i: self._taat_runner(i, r).score(global_dfs),
            ),
            stats, critical,
        )
        return answers, served

    def _wave(
        self,
        pool: ThreadPoolExecutor,
        shard_ids: List[int],
        task: Callable[[int], _TaskResult],
        stats: SchedulerStats,
        critical: TimeBreakdown,
    ):
        """One barrier: run ``task`` on every listed shard, gather in order.

        Returns the payload map and the replica that produced each
        shard's payload.  Busy ledgers charge every attempt (failed
        failover probes included); the critical path takes the slowest
        shard's *total* task delta, so failover latency is visible on
        the simulated wall clock.
        """
        stats.tasks += len(shard_ids)
        stats.max_queue_depth = max(stats.max_queue_depth, len(shard_ids))
        futures = {i: pool.submit(self._on_shard, i, task) for i in shard_ids}
        answers: Dict[int, object] = {}
        served: Dict[int, int] = {}
        deltas: Dict[int, TimeBreakdown] = {}
        for shard_id in shard_ids:  # shard order, regardless of completion order
            outcome = futures[shard_id].result()
            answers[shard_id] = outcome.payload
            served[shard_id] = outcome.replica_id
            deltas[shard_id] = outcome.delta
            for replica_id, attempt in outcome.attempts:
                key = (shard_id, replica_id)
                stats.replica_busy_ms[key] = (
                    stats.replica_busy_ms.get(key, 0.0) + attempt.wall_ms
                )
            stats.failovers.extend(outcome.events)
        stats.barriers += 1
        slowest = max(shard_ids, key=lambda i: (deltas[i].wall_ms, i))
        critical.user_ms += deltas[slowest].user_ms
        critical.system_ms += deltas[slowest].system_ms
        critical.io_ms += deltas[slowest].io_ms
        for shard_id in shard_ids:
            stats.busy_ms[shard_id] = (
                stats.busy_ms.get(shard_id, 0.0) + deltas[shard_id].wall_ms
            )
        return answers, served

    def _on_shard(self, shard_id: int, task: Callable[[int], _TaskResult]):
        """Run one task against one shard's simulated machines.

        The per-shard lock serializes all touches of that shard's
        replicas, so their clock deltas are attributable to exactly
        this task.
        """
        with self._locks[shard_id]:
            return task(shard_id)

    def _down_attempted(self, shard_id: int, text: str) -> int:
        """Stored terms a down shard would have been asked to read.

        The shard's dictionary is coordinator-resident metadata, so the
        accounting works even when the shard's disk is unreachable.
        """
        index = self.sharded.shards[shard_id].index
        count = 0
        for term in set(query_terms(parse_query(text))):
            entry = index.term_entry(term)
            if entry is not None and entry.df and entry.storage_key:
                count += 1
        return count
