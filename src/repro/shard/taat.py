"""Two-phase term-at-a-time evaluation on one shard.

Sharding breaks the inference network's silent assumption that a term's
decoded record *is* its collection-wide evidence: the reference
network's :meth:`~repro.inquery.network.InferenceNetwork._eval_term`
scores with ``df = len(postings)``, and the proximity/synonym operators
likewise derive the virtual term's document frequency from the matches
they just computed.  On a shard those counts are local, and a local df
changes the idf weight of *every* belief — rankings would silently drift
from the single-disk engine's.

The fix is the classic global-statistics exchange, run as two phases per
query:

1. **Collect** (:class:`_SlotCollector`): walk the query tree in
   pre-order and perform each leaf's storage work — fetch and decode
   term records, build proximity/synonym virtual postings — recording
   one :class:`_LeafSlot` per leaf with its *local* document frequency.
   No beliefs are computed.  The coordinator sums the slot vectors of
   every shard element-wise; because each document lives on exactly one
   shard, the sums are exactly the df values the unsharded network
   would have derived.
2. **Inject** (:class:`_InjectedNetwork`): evaluate the tree normally,
   except that each leaf's belief table is computed from phase 1's
   memoized postings and the coordinator's *global* df.  No storage is
   touched — the memo provider replays phase 1's data, which also
   guarantees both phases saw the same bytes even under an active fault
   plan.

Leaf slots are consumed in pre-order on both walks; the tree is parsed
from the same query text with the same parser on every shard, so the
slot sequences line up by construction.
"""

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.prepared import IRSystem
from ..errors import BadBlockError, ReproError
from ..inquery import InferenceNetwork, OpNode, QueryResult, TermNode, parse_query
from ..inquery.engine import DEFAULT_TOP_K, _IndexProvider
from ..inquery.network import DEFAULT_BELIEF
from ..inquery.postings import Posting
from ..inquery.query import QueryNode, count_nodes, query_terms


class _MemoProvider(_IndexProvider):
    """Per-query postings memo shared by the two phases.

    The first lookup of a term does the real storage access (with its
    decode and per-posting CPU charges, and its attempt/failure
    accounting); repeats — including every phase 2 lookup — return the
    remembered value free of charge.  Memoizing by term also pins the
    *data*: under a fault plan, phase 2 scores exactly the postings
    phase 1 fetched rather than re-rolling the fault dice.
    """

    def __init__(self, index, clock, reserve: bool):
        super().__init__(index, clock, reserve)
        self._memo: Dict[str, Optional[List[Posting]]] = {}

    def postings(self, term: str) -> Optional[List[Posting]]:
        if term in self._memo:
            return self._memo[term]
        result = super().postings(term)
        self._memo[term] = result
        return result


@dataclass
class _LeafSlot:
    """One leaf's phase 1 outcome: its postings and local df.

    A "leaf" is anything the network scores as a single term: a
    :class:`TermNode`, or a proximity/synonym operator whose virtual
    postings were materialized from its children.
    """

    postings: Optional[List[Posting]]
    local_df: int


class _SlotCollector(InferenceNetwork):
    """Phase 1: leaf storage work only, recording slots in pre-order."""

    def __init__(self, provider: _MemoProvider):
        super().__init__(provider)
        self.slots: List[_LeafSlot] = []

    def _push(self, postings: Optional[List[Posting]]) -> None:
        self.slots.append(
            _LeafSlot(postings=postings, local_df=len(postings) if postings else 0)
        )

    def collect(self, node: QueryNode) -> None:
        if isinstance(node, TermNode):
            self._push(self._provider.postings(node.term))
            return
        # Window derivations mirror the reference handlers exactly, so
        # the virtual postings (and their combine charges) are the ones
        # an unsharded evaluation of this shard's data would build.
        if node.op == "phrase":
            self._push(self._proximity_postings(node, ordered=True, window=1))
            return
        if node.op == "od":
            self._push(
                self._proximity_postings(node, ordered=True, window=max(node.window, 1))
            )
            return
        if node.op == "uw":
            self._push(
                self._proximity_postings(
                    node, ordered=False, window=max(node.window, len(node.children))
                )
            )
            return
        if node.op == "syn":
            self._push(self._synonym_postings(node))
            return
        for child in node.children:
            self.collect(child)


class _InjectedNetwork(InferenceNetwork):
    """Phase 2: the reference evaluation with global df at every leaf."""

    def __init__(
        self,
        provider: _MemoProvider,
        slots: List[_LeafSlot],
        global_dfs: List[int],
    ):
        super().__init__(provider)
        self._slots = slots
        self._global_dfs = global_dfs
        self._cursor = 0

    def _leaf_table(self):
        slot = self._slots[self._cursor]
        df = self._global_dfs[self._cursor]
        self._cursor += 1
        if not slot.postings or df < 1:
            # No local evidence: every local document keeps the default
            # belief, exactly as it would in the global belief table.
            return {}, DEFAULT_BELIEF
        return self._belief_from_postings(slot.postings, df=df)

    def _eval_term(self, term: str):
        return self._leaf_table()

    def _proximity(self, node: OpNode, ordered: bool, window: int):
        return self._leaf_table()

    def _eval_syn(self, node: OpNode):
        return self._leaf_table()


class ShardTaatRunner:
    """Drives the two phases of one query on one shard's machine.

    The scheduler calls :meth:`collect` on every shard, sums the local
    df vectors, then calls :meth:`score` everywhere with the sums.
    Reservations are taken before phase 1 and released after phase 2,
    so the paper's reserve optimization spans the whole query exactly as
    it does on the unsharded engine.
    """

    def __init__(self, system: IRSystem, top_k: int = DEFAULT_TOP_K):
        self.system = system
        self.top_k = top_k
        #: Optional decoded-term cache, attached per replica by the
        #: scheduler (``None`` = the historical path, byte-for-byte).
        self.term_cache = None
        self._pending: List[
            Tuple[str, QueryNode, _MemoProvider, List[_LeafSlot]]
        ] = []

    def collect(self, text: str) -> List[int]:
        """Phase 1: leaf storage work; returns the local df vector."""
        if self._pending:
            raise ReproError("previous query's score phase never ran")
        return self._collect_one(text)

    def _collect_one(self, text: str) -> List[int]:
        index = self.system.index
        clock = self.system.clock
        tree = parse_query(text)
        clock.charge_user(clock.cost.cpu_ms_per_query_node * count_nodes(tree))
        if self.system.config.use_reservation:
            # Best-effort, as on the unsharded engine: a storage failure
            # while probing residency pins nothing; the collect phase
            # below degrades the real read failures.
            for term in query_terms(tree):
                entry = index.term_entry(term)
                if entry is not None and entry.storage_key:
                    try:
                        index.store.reserve(entry.storage_key)
                    except BadBlockError:
                        break
        provider = _MemoProvider(index, clock, self.system.config.use_reservation)
        # The memo answers repeats within the query; the term cache sits
        # under it (via the inherited postings fetch) and answers
        # repeats *across* queries on this replica.
        provider.term_cache = self.term_cache
        collector = _SlotCollector(provider)
        collector.collect(tree)
        self._pending.append((text, tree, provider, collector.slots))
        return [slot.local_df for slot in collector.slots]

    @property
    def pending_failures(self) -> int:
        """Storage failures seen by the pending collect phase(s).

        The failover scheduler probes this after phase 1: a non-zero
        count means this replica's collect already lost data (the score
        phase would produce a degraded result), so the work should be
        retried on another replica *before* the df exchange — a degraded
        local df vector would poison the global sums.
        """
        return sum(
            provider.failures for _text, _tree, provider, _slots in self._pending
        )

    def abandon(self) -> None:
        """Drop pending collect state (failover gave up on this replica).

        Releases any reservations phase 1 pinned so the machine is
        clean if it ever comes back.
        """
        self._pending.clear()
        self.system.index.store.release_reservations()

    def score(self, global_dfs: List[int]) -> QueryResult:
        """Phase 2: evaluate with global statistics and rank local docs."""
        if not self._pending:
            raise ReproError("score phase without a collect phase")
        try:
            return self._score_one(global_dfs)
        finally:
            self.system.index.store.release_reservations()

    def _score_one(self, global_dfs: List[int]) -> QueryResult:
        text, tree, provider, slots = self._pending.pop(0)
        if len(global_dfs) != len(slots):
            raise ReproError(
                f"df exchange shape mismatch: {len(slots)} leaf slots, "
                f"{len(global_dfs)} global dfs"
            )
        clock = self.system.clock
        network = _InjectedNetwork(provider, slots, global_dfs)
        scores, _default = network.evaluate(tree)
        clock.charge_user(clock.cost.cpu_ms_per_posting * len(scores))
        ranking = heapq.nsmallest(
            self.top_k, scores.items(), key=lambda item: (-item[1], item[0])
        )
        return QueryResult(
            query=text,
            ranking=ranking,
            terms_looked_up=provider.lookups,
            degraded=provider.failures > 0,
            terms_attempted=provider.attempts,
            terms_failed=provider.failures,
        )

    # -- wave (batched) driving -------------------------------------------

    def collect_many(self, texts: List[str]) -> Tuple[List[List[int]], List]:
        """Phase 1 for a whole wave of queries, one barrier's worth.

        Returns the local df vector per query plus the per-query
        simulated clock delta, so the scheduler can attribute a latency
        to each request inside the shared barrier.  Reservations taken
        by each query stay pinned until :meth:`score_many` releases
        them all — the wave-spanning analogue of the paper's
        reserve-across-the-query optimization (the LRU buffers tolerate
        reservation overflow by design).
        """
        if self._pending:
            raise ReproError("previous query's score phase never ran")
        clock = self.system.clock
        dfs: List[List[int]] = []
        deltas = []
        for text in texts:
            start = clock.snapshot()
            dfs.append(self._collect_one(text))
            deltas.append(clock.since(start))
        return dfs, deltas

    def score_many(self, global_df_lists: List[List[int]]) -> Tuple[List[QueryResult], List]:
        """Phase 2 for the wave collected by :meth:`collect_many`.

        ``global_df_lists[q]`` is the coordinator-summed df vector of
        wave query ``q``, in collect order.  All reservations are
        released once, after the last query scores (or on the first
        failure).
        """
        if len(global_df_lists) != len(self._pending):
            raise ReproError(
                f"wave shape mismatch: {len(self._pending)} pending queries, "
                f"{len(global_df_lists)} df vectors"
            )
        clock = self.system.clock
        results: List[QueryResult] = []
        deltas = []
        try:
            for global_dfs in global_df_lists:
                start = clock.snapshot()
                results.append(self._score_one(global_dfs))
                deltas.append(clock.since(start))
        finally:
            self.system.index.store.release_reservations()
        return results, deltas
