"""The sharded system: N simulated machines serving one collection.

Each shard is a full :class:`~repro.core.prepared.IRSystem` — its own
:class:`~repro.simdisk.SimDisk`, file system, Mneme pools (or B-tree),
per-pool LRU buffers sized by the Table 2 heuristics *from that shard's
own record-size distribution*, and its own simulated clock.  The paper's
single-machine layout is replicated per shard rather than stretched
across shards, which is exactly how one scales the design: the pool and
buffer heuristics are functions of the data a machine stores, so a shard
storing 1/N of the postings sizes its large buffer from *its* largest
record.

The coordinator owns a clock of its own (statistics exchange, merge) and
the administrative up/down state; the scheduler in :mod:`.scheduler`
turns the pieces into query service.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from ..core.config import SystemConfig
from ..core.prepared import IRSystem, PreparedCollection, materialize
from ..errors import ConfigError, ShardUnavailableError
from ..inquery import DEFAULT_TOP_K
from ..simdisk import SimClock
from .partition import Partitioner, ShardPrepared, make_partitioner, partition_prepared


@dataclass
class ShardedIRSystem:
    """One prepared collection served by N single-machine shards."""

    config: SystemConfig
    prepared: PreparedCollection            #: the global (unsharded) preparation
    partitioner: Partitioner
    shards: List[IRSystem]
    shard_prepared: List[ShardPrepared]
    clock: SimClock = field(default_factory=SimClock)  #: coordinator clock
    _down: Set[int] = field(default_factory=set)

    def __post_init__(self):
        self.clock = SimClock(cost=self.config.cost)

    @property
    def name(self) -> str:
        return f"{self.config.name}x{self.n_shards}"

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of_doc(self, doc_id: int) -> int:
        return self.partitioner.shard_of(doc_id)

    # -- administrative shard state ------------------------------------------

    def mark_down(self, shard_id: int) -> None:
        """Take a shard out of service; queries degrade around it."""
        self._check_shard(shard_id)
        self._down.add(shard_id)

    def mark_up(self, shard_id: int) -> None:
        self._check_shard(shard_id)
        self._down.discard(shard_id)

    def is_down(self, shard_id: int) -> bool:
        return shard_id in self._down

    @property
    def shards_down(self) -> Sequence[int]:
        return tuple(sorted(self._down))

    @property
    def live_shards(self) -> List[int]:
        live = [i for i in range(self.n_shards) if i not in self._down]
        if not live:
            raise ShardUnavailableError(
                next(iter(sorted(self._down))),
                reason="every shard of the index is down",
            )
        return live

    def _check_shard(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.n_shards:
            raise ConfigError(
                f"shard {shard_id} out of range for {self.n_shards} shards"
            )

    # -- convenience ----------------------------------------------------------

    def fault_shard(self, shard_id: int, plan) -> None:
        """Attach a serving-time fault plan to one shard's disk.

        Build-time faults go through ``materialize(...,
        fault_plan=...)``; this is the chaos harness's post-build hook —
        e.g. ``fault_shard(0, FaultPlan.dead_disk())`` kills shard 0's
        reads from the next query on.  Pass ``None`` to detach.
        """
        self._check_shard(shard_id)
        self.shards[shard_id].fs.disk.attach_fault_plan(plan)

    def scheduler(
        self,
        top_k: int = DEFAULT_TOP_K,
        engine: str = "taat",
        max_workers=None,
        prune: str = "off",
    ):
        from .scheduler import ShardScheduler

        return ShardScheduler(
            self, top_k=top_k, engine=engine, max_workers=max_workers, prune=prune
        )


def _per_shard_plans(fault_plans, n_shards: int) -> List[Optional[object]]:
    """Normalize the ``fault_plans`` argument to one entry per shard.

    Accepts ``None``, a sequence (padded with ``None``), a mapping from
    shard id to plan, or a single plan — which is attached to shard 0,
    the conventional victim of one-shard chaos runs.
    """
    plans: List[Optional[object]] = [None] * n_shards
    if fault_plans is None:
        return plans
    if isinstance(fault_plans, dict):
        for shard_id, plan in fault_plans.items():
            if not 0 <= shard_id < n_shards:
                raise ConfigError(f"fault plan for unknown shard {shard_id}")
            plans[shard_id] = plan
        return plans
    if isinstance(fault_plans, (list, tuple)):
        if len(fault_plans) > n_shards:
            raise ConfigError(
                f"{len(fault_plans)} fault plans for {n_shards} shards"
            )
        plans[: len(fault_plans)] = list(fault_plans)
        return plans
    plans[0] = fault_plans
    return plans


def materialize_sharded(
    prepared: PreparedCollection,
    config: SystemConfig,
    n_shards: int,
    partitioner: Union[str, Partitioner] = "hash",
    fault_plans=None,
) -> ShardedIRSystem:
    """Partition a prepared collection and build one machine per shard.

    Every shard build goes through the ordinary
    :func:`~repro.core.prepared.materialize`, so a shard is
    indistinguishable from a small single-disk system — same pools, same
    buffer heuristics, same dictionary construction.  The per-shard
    prepared view carries the *global* document table and per-term
    df/ctf (see :meth:`~repro.shard.partition.ShardPrepared.serving_view`),
    which is what keeps sharded scoring bit-identical to the single-disk
    engine.
    """
    if isinstance(partitioner, str):
        partitioner = make_partitioner(
            partitioner, n_shards, len(prepared.doctable)
        )
    elif partitioner.n_shards != n_shards:
        raise ConfigError(
            f"partitioner is for {partitioner.n_shards} shards, asked for {n_shards}"
        )
    plans = _per_shard_plans(fault_plans, n_shards)
    shard_prepared = partition_prepared(prepared, partitioner)
    shards = [
        materialize(sp.serving_view(prepared), config, fault_plan=plans[sp.shard_id])
        for sp in shard_prepared
    ]
    return ShardedIRSystem(
        config=config,
        prepared=prepared,
        partitioner=partitioner,
        shards=shards,
        shard_prepared=shard_prepared,
    )
