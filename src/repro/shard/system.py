"""The sharded system: N simulated machines serving one collection.

Each shard is a full :class:`~repro.core.prepared.IRSystem` — its own
:class:`~repro.simdisk.SimDisk`, file system, Mneme pools (or B-tree),
per-pool LRU buffers sized by the Table 2 heuristics *from that shard's
own record-size distribution*, and its own simulated clock.  The paper's
single-machine layout is replicated per shard rather than stretched
across shards, which is exactly how one scales the design: the pool and
buffer heuristics are functions of the data a machine stores, so a shard
storing 1/N of the postings sizes its large buffer from *its* largest
record.

Replication extends the same move: a shard may carry ``R`` *mirror*
machines built from the same :class:`~repro.shard.partition.ShardPrepared`
slice.  Because every build is deterministic, a mirror's platter is
byte-identical to the primary's (verified at build time), so the
scheduler may serve any healthy replica and the rankings cannot tell the
difference — failover is gated on bit-identity, not best effort.  Lost
mirrors are rebuilt online (:meth:`ShardedIRSystem.rereplicate`) by
scanning a surviving replica's platter on the simulated clock.

The coordinator owns a clock of its own (statistics exchange, merge) and
the administrative up/down state; the scheduler in :mod:`.scheduler`
turns the pieces into query service.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.config import SystemConfig
from ..core.prepared import IRSystem, PreparedCollection, materialize
from ..errors import (
    ConfigError,
    RebalanceInProgressError,
    ReplicaFailedError,
    ShardUnavailableError,
)
from ..inquery import DEFAULT_TOP_K
from ..simdisk import SimClock


from .partition import Partitioner, ShardPrepared, make_partitioner, partition_prepared


@dataclass
class ShardedIRSystem:
    """One prepared collection served by N single-machine shards.

    ``replica_groups[s]`` holds shard ``s``'s machines; index 0 is the
    primary and indexes 1..R are mirrors.  All replicas of a shard are
    byte-identical at build; health is tracked per ``(shard, replica)``
    so a single dead disk downgrades one mirror, not the shard.
    ``epoch`` counts topology cutovers (shard splits): schedulers capture
    it at construction and refuse to run across a cutover.
    """

    config: SystemConfig
    prepared: PreparedCollection            #: the global (unsharded) preparation
    partitioner: Partitioner
    replica_groups: List[List[IRSystem]]
    shard_prepared: List[ShardPrepared]
    clock: SimClock = field(default_factory=SimClock)  #: coordinator clock
    epoch: int = 0                          #: bumped by every rebalance cutover
    _down: Set[int] = field(default_factory=set)
    _replica_down: Set[Tuple[int, int]] = field(default_factory=set)
    _rebalancing: bool = field(default=False)

    def __post_init__(self):
        self.clock = SimClock(cost=self.config.cost)

    @property
    def name(self) -> str:
        return f"{self.config.name}x{self.n_shards}"

    @property
    def n_shards(self) -> int:
        return len(self.replica_groups)

    @property
    def replicas(self) -> int:
        """Mirror count R (replicas beyond the primary)."""
        return max(len(group) for group in self.replica_groups) - 1

    @property
    def shards(self) -> List[IRSystem]:
        """The primary machine of every shard (legacy single-replica view)."""
        return [group[0] for group in self.replica_groups]

    def replica(self, shard_id: int, replica_id: int) -> IRSystem:
        self._check_replica(shard_id, replica_id)
        return self.replica_groups[shard_id][replica_id]

    def shard_of_doc(self, doc_id: int) -> int:
        return self.partitioner.shard_of(doc_id)

    # -- administrative shard / replica state ---------------------------------

    def mark_down(self, shard_id: int, replica_id: Optional[int] = None) -> None:
        """Take a shard (or one replica of it) out of service.

        With ``replica_id=None`` the whole shard goes down and queries
        degrade around it; with a replica id only that mirror is
        removed and the scheduler fails over to the survivors.
        """
        if replica_id is None:
            self._check_shard(shard_id)
            self._down.add(shard_id)
        else:
            self._check_replica(shard_id, replica_id)
            self._replica_down.add((shard_id, replica_id))

    def mark_up(self, shard_id: int, replica_id: Optional[int] = None) -> None:
        if replica_id is None:
            self._check_shard(shard_id)
            self._down.discard(shard_id)
        else:
            self._check_replica(shard_id, replica_id)
            self._replica_down.discard((shard_id, replica_id))

    def is_down(self, shard_id: int) -> bool:
        return shard_id in self._down

    def healthy_replicas(self, shard_id: int) -> List[int]:
        """Replica ids of ``shard_id`` not marked down, lowest first."""
        self._check_shard(shard_id)
        return [
            replica_id
            for replica_id in range(len(self.replica_groups[shard_id]))
            if (shard_id, replica_id) not in self._replica_down
        ]

    def replica_health(self) -> Dict[int, Dict[str, List[int]]]:
        """Per-shard healthy/failed replica ids (for stats surfaces)."""
        report = {}
        for shard_id in range(self.n_shards):
            healthy = self.healthy_replicas(shard_id)
            all_ids = range(len(self.replica_groups[shard_id]))
            report[shard_id] = {
                "healthy": healthy,
                "failed": [r for r in all_ids if r not in healthy],
            }
        return report

    @property
    def shards_down(self) -> Sequence[int]:
        return tuple(sorted(self._down))

    @property
    def replicas_down(self) -> Sequence[Tuple[int, int]]:
        return tuple(sorted(self._replica_down))

    @property
    def live_shards(self) -> List[int]:
        live = [
            i
            for i in range(self.n_shards)
            if i not in self._down and self.healthy_replicas(i)
        ]
        if not live:
            down = self._down or {s for s, _r in self._replica_down}
            raise ShardUnavailableError(
                next(iter(sorted(down))) if down else 0,
                reason="every shard of the index is down",
            )
        return live

    def _check_shard(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.n_shards:
            raise ConfigError(
                f"shard {shard_id} out of range for {self.n_shards} shards"
            )

    def _check_replica(self, shard_id: int, replica_id: int) -> None:
        self._check_shard(shard_id)
        if not 0 <= replica_id < len(self.replica_groups[shard_id]):
            raise ConfigError(
                f"replica {replica_id} out of range for shard {shard_id} "
                f"({len(self.replica_groups[shard_id])} replicas)"
            )

    # -- convenience ----------------------------------------------------------

    def fault_shard(self, shard_id: int, plan, replica_id: int = 0) -> None:
        """Attach a serving-time fault plan to one replica's disk.

        Build-time faults go through ``materialize(...,
        fault_plan=...)``; this is the chaos harness's post-build hook —
        e.g. ``fault_shard(0, FaultPlan.dead_disk())`` kills shard 0's
        primary from the next query on, and ``replica_id=1`` targets the
        first mirror instead.  Pass ``None`` to detach.
        """
        self._check_replica(shard_id, replica_id)
        self.replica_groups[shard_id][replica_id].fs.disk.attach_fault_plan(plan)

    def scheduler(
        self,
        top_k: int = DEFAULT_TOP_K,
        engine: str = "taat",
        max_workers=None,
        prune: str = "off",
        replica_policy: str = "primary",
        policy_seed: int = 0,
        term_cache_bytes: int = 0,
    ):
        from .scheduler import ShardScheduler

        return ShardScheduler(
            self, top_k=top_k, engine=engine, max_workers=max_workers,
            prune=prune, replica_policy=replica_policy, policy_seed=policy_seed,
            term_cache_bytes=term_cache_bytes,
        )

    # -- re-replication -------------------------------------------------------

    def rereplicate(self, shard_id: int, replica_id: int) -> Dict[str, object]:
        """Rebuild a lost replica from a surviving one, online.

        The replacement machine is materialized from the shard's
        prepared slice (deterministic, so its platter matches the
        survivors byte for byte) while the *source* replica is charged a
        full platter scan on its simulated clock — the cost a live
        re-replication imposes on a machine that keeps serving queries.
        The new machine swaps into the replica group and the down-mark
        clears; byte-identity against the source is verified before the
        swap.

        Raises :class:`RebalanceInProgressError` during a split and
        :class:`ReplicaFailedError` when no healthy source remains.
        """
        if self._rebalancing:
            raise RebalanceInProgressError(
                reason=f"cannot re-replicate shard {shard_id} during a split"
            )
        self._check_replica(shard_id, replica_id)
        sources = [
            r for r in self.healthy_replicas(shard_id) if r != replica_id
        ]
        if not sources:
            raise ReplicaFailedError(
                shard_id, replica_id,
                reason="no healthy source replica to re-replicate from",
            )
        source_id = sources[0]
        source = self.replica_groups[shard_id][source_id]

        # Charge the survivor a sequential scan of its allocated blocks:
        # live re-replication reads the platter it streams from.
        start = source.clock.snapshot()
        blocks = 0
        for block_no in range(source.fs.disk.blocks_allocated):
            source.fs.disk.read_block(block_no)
            blocks += 1
        scan = source.clock.since(start)

        replacement = materialize(
            self.shard_prepared[shard_id].serving_view(self.prepared),
            self.config,
        )
        if replacement.fs.disk._blocks != source.fs.disk._blocks:
            raise ReplicaFailedError(
                shard_id, replica_id,
                reason="re-replicated platter diverged from source",
            )
        self.replica_groups[shard_id][replica_id] = replacement
        self._replica_down.discard((shard_id, replica_id))
        return {
            "shard": shard_id,
            "replica": replica_id,
            "source_replica": source_id,
            "blocks_scanned": blocks,
            "source_scan_ms": scan.wall_ms,
            "verified": True,
        }

    # -- rebalance hooks (driven by shard.rebalance) --------------------------

    def begin_rebalance(self) -> None:
        if self._rebalancing:
            raise RebalanceInProgressError(reason="a split is already running")
        self._rebalancing = True

    def abort_rebalance(self) -> None:
        self._rebalancing = False

    def cutover(
        self,
        partitioner: Partitioner,
        replica_groups: List[List[IRSystem]],
        shard_prepared: List[ShardPrepared],
    ) -> None:
        """Atomically switch to a new topology (called at a wave boundary).

        Health state resets — the new machines are all freshly built and
        verified — and ``epoch`` bumps so any scheduler still holding
        the old topology refuses to run against the new one.
        """
        self.partitioner = partitioner
        self.replica_groups = replica_groups
        self.shard_prepared = shard_prepared
        self._down = set()
        self._replica_down = set()
        self._rebalancing = False
        self.epoch += 1


def _per_shard_plans(
    fault_plans, n_shards: int, replicas: int = 0
) -> Dict[Tuple[int, int], object]:
    """Normalize the ``fault_plans`` argument to ``(shard, replica)`` keys.

    Accepts ``None``, a sequence (one plan per shard primary, padded), a
    mapping from shard id *or* ``(shard, replica)`` tuple to plan, or a
    single plan — which is attached to shard 0's primary, the
    conventional victim of one-shard chaos runs.
    """
    plans: Dict[Tuple[int, int], object] = {}
    if fault_plans is None:
        return plans
    if isinstance(fault_plans, dict):
        for key, plan in fault_plans.items():
            if isinstance(key, tuple):
                shard_id, replica_id = key
            else:
                shard_id, replica_id = key, 0
            if not 0 <= shard_id < n_shards:
                raise ConfigError(f"fault plan for unknown shard {shard_id}")
            if not 0 <= replica_id <= replicas:
                raise ConfigError(
                    f"fault plan for unknown replica {replica_id} of "
                    f"shard {shard_id} (R={replicas})"
                )
            plans[(shard_id, replica_id)] = plan
        return plans
    if isinstance(fault_plans, (list, tuple)):
        if len(fault_plans) > n_shards:
            raise ConfigError(
                f"{len(fault_plans)} fault plans for {n_shards} shards"
            )
        for shard_id, plan in enumerate(fault_plans):
            if plan is not None:
                plans[(shard_id, 0)] = plan
        return plans
    plans[(0, 0)] = fault_plans
    return plans


def materialize_sharded(
    prepared: PreparedCollection,
    config: SystemConfig,
    n_shards: int,
    partitioner: Union[str, Partitioner] = "hash",
    fault_plans=None,
    replicas: int = 0,
    verify_replicas: bool = True,
) -> ShardedIRSystem:
    """Partition a prepared collection and build one machine per shard.

    Every shard build goes through the ordinary
    :func:`~repro.core.prepared.materialize`, so a shard is
    indistinguishable from a small single-disk system — same pools, same
    buffer heuristics, same dictionary construction.  The per-shard
    prepared view carries the *global* document table and per-term
    df/ctf (see :meth:`~repro.shard.partition.ShardPrepared.serving_view`),
    which is what keeps sharded scoring bit-identical to the single-disk
    engine.

    ``replicas=R`` additionally builds R mirror machines per shard from
    the same slice.  Mirrors are built *clean* (serving-time fault plans
    from ``fault_plans[(shard, r)]`` attach after the build) and each
    clean-built platter is verified byte-identical against the group's
    reference before the system is returned; a divergence raises
    :class:`ReplicaFailedError` — it would mean the build is
    nondeterministic, which breaks the failover bit-identity contract.
    """
    if replicas < 0:
        raise ConfigError(f"replicas must be >= 0, got {replicas}")
    if isinstance(partitioner, str):
        partitioner = make_partitioner(
            partitioner, n_shards, len(prepared.doctable)
        )
    elif partitioner.n_shards != n_shards:
        raise ConfigError(
            f"partitioner is for {partitioner.n_shards} shards, asked for {n_shards}"
        )
    plans = _per_shard_plans(fault_plans, n_shards, replicas)
    shard_prepared = partition_prepared(prepared, partitioner)
    replica_groups: List[List[IRSystem]] = []
    for sp in shard_prepared:
        view = sp.serving_view(prepared)
        build_plan = plans.get((sp.shard_id, 0))
        group = [materialize(view, config, fault_plan=build_plan)]
        # The reference platter for byte-identity is a clean build; a
        # primary with a build-time fault plan (torn writes etc.) is
        # exempt from verification, mirrors then verify among themselves.
        reference = group[0] if build_plan is None else None
        for replica_id in range(1, replicas + 1):
            mirror = materialize(view, config)
            if verify_replicas and reference is not None:
                if mirror.fs.disk._blocks != reference.fs.disk._blocks:
                    raise ReplicaFailedError(
                        sp.shard_id, replica_id,
                        reason="mirror platter diverged from primary at build",
                    )
            if reference is None:
                reference = mirror
            plan = plans.get((sp.shard_id, replica_id))
            if plan is not None:
                mirror.fs.disk.attach_fault_plan(plan)
            group.append(mirror)
        replica_groups.append(group)
    return ShardedIRSystem(
        config=config,
        prepared=prepared,
        partitioner=partitioner,
        replica_groups=replica_groups,
        shard_prepared=shard_prepared,
    )
