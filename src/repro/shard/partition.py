"""Document partitioners and per-shard index preparation.

A shard owns a contiguous or hashed subset of the *documents*; every
posting of a document lives in that document's home shard.  This is the
document-partitioned ("local index") organization: each shard holds a
complete miniature inverted file over its own documents, queries fan out
to every shard, and per-shard top-k results merge losslessly because no
document's evidence is split across shards.

The partitioners are pure integer functions of the document id, so the
same document always lands on the same shard for a given (scheme, N) —
builds are reproducible and a re-partition is an explicit operation, not
an accident of iteration order.

:func:`partition_prepared` splits an already-prepared collection
(:class:`~repro.core.prepared.PreparedCollection`) without re-running
the indexing sort: each global record is decoded once, its postings are
routed by document id, and each shard re-encodes its slice.  Term ids
stay *global*, so shard dictionaries, merge bookkeeping, and the N=1
degenerate case line up with the unsharded build exactly (for N=1 the
shard's records are byte-for-byte the unsharded records).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..inquery import DocTable, IndexStats, decode_record, encode_record, uncompressed_size


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a deterministic, platform-stable int hash."""
    mask = (1 << 64) - 1
    value = (value + 0x9E3779B97F4A7C15) & mask
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & mask
    return value ^ (value >> 31)


class Partitioner:
    """Maps a document id to its home shard."""

    scheme = "?"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ConfigError("a partitioned index needs at least one shard")
        self.n_shards = n_shards

    def shard_of(self, doc_id: int) -> int:
        raise NotImplementedError

    def refine(self, factor: int) -> "Partitioner":
        """A partitioner over ``n_shards * factor`` shards that *refines*
        this one: every new shard's documents all come from a single old
        shard (``parent_of``), so a split can stream each old platter
        into its children without any cross-shard document motion.
        """
        raise NotImplementedError

    def parent_of(self, child_shard: int, factor: int) -> int:
        """Old shard that owned every document of ``child_shard`` after
        ``refine(factor)``."""
        raise NotImplementedError

    def children_of(self, parent_shard: int, factor: int) -> List[int]:
        """New shards whose documents come from ``parent_shard``."""
        if not 0 <= parent_shard < self.n_shards:
            raise ConfigError(f"no shard {parent_shard} in {self.n_shards}")
        return [
            child
            for child in range(self.n_shards * factor)
            if self.parent_of(child, factor) == parent_shard
        ]

    def _check_factor(self, factor: int) -> None:
        if factor < 2:
            raise ConfigError(f"split factor must be >= 2, got {factor}")

    def describe(self) -> dict:
        return {"scheme": self.scheme, "shards": self.n_shards}


class HashPartitioner(Partitioner):
    """Deterministic hash partitioning: uniform load, no locality.

    Uses the SplitMix64 finalizer rather than Python's salted ``hash``
    so shard assignment is identical across processes and platforms.
    """

    scheme = "hash"

    def shard_of(self, doc_id: int) -> int:
        return _mix64(doc_id) % self.n_shards

    def refine(self, factor: int) -> "HashPartitioner":
        # (h mod N·f) mod N == h mod N, so the residue class mod N·f
        # determines the old shard: hashing refines itself.
        self._check_factor(factor)
        return HashPartitioner(self.n_shards * factor)

    def parent_of(self, child_shard: int, factor: int) -> int:
        self._check_factor(factor)
        if not 0 <= child_shard < self.n_shards * factor:
            raise ConfigError(f"no child shard {child_shard}")
        return child_shard % self.n_shards


class RangePartitioner(Partitioner):
    """Contiguous document-id ranges: locality-preserving partitioning.

    Shard ``i`` owns an equal-width slice of ``[1, n_docs]``; with the
    synthetic collections' dense 1-based ids this balances document
    counts to within one.
    """

    scheme = "range"

    def __init__(self, n_shards: int, n_docs: int):
        super().__init__(n_shards)
        if n_docs < 1:
            raise ConfigError("cannot range-partition an empty collection")
        self.n_docs = n_docs

    def shard_of(self, doc_id: int) -> int:
        if doc_id < 1:
            raise ConfigError(f"document id {doc_id} outside [1, {self.n_docs}]")
        scaled = (min(doc_id, self.n_docs) - 1) * self.n_shards
        return scaled // self.n_docs

    def refine(self, factor: int) -> "RangePartitioner":
        # floor(x·N·f/D) // f == floor(x·N/D): each old range slice is
        # exactly the union of f consecutive finer slices.
        self._check_factor(factor)
        return RangePartitioner(self.n_shards * factor, self.n_docs)

    def parent_of(self, child_shard: int, factor: int) -> int:
        self._check_factor(factor)
        if not 0 <= child_shard < self.n_shards * factor:
            raise ConfigError(f"no child shard {child_shard}")
        return child_shard // factor

    def describe(self) -> dict:
        return {**super().describe(), "n_docs": self.n_docs}


def make_partitioner(scheme: str, n_shards: int, n_docs: int) -> Partitioner:
    """Partitioner factory used by ``materialize(..., partitioner=...)``."""
    if scheme == "hash":
        return HashPartitioner(n_shards)
    if scheme == "range":
        return RangePartitioner(n_shards, n_docs)
    raise ConfigError(f"unknown partitioning scheme {scheme!r}")


@dataclass
class ShardPrepared:
    """One shard's slice of a prepared collection.

    ``records`` keep the *global* term ids; ``df``/``ctf``/``doctable``
    /``stats`` here are **shard-local** — they describe what this shard
    actually stores, and summing them across shards reconstructs the
    global statistics exactly (the partitioner round-trip invariant the
    tests assert).  The *serving* view handed to ``materialize`` is
    built by :meth:`serving_view`, which swaps in the global document
    table and global per-term df/ctf so every shard scores with
    collection-wide statistics.
    """

    shard_id: int
    n_shards: int
    doc_ids: List[int]
    records: List[Tuple[int, bytes]]
    df: Dict[int, int] = field(default_factory=dict)
    ctf: Dict[int, int] = field(default_factory=dict)
    doctable: DocTable = field(default_factory=DocTable)
    stats: IndexStats = field(default_factory=IndexStats)

    @property
    def largest_record(self) -> int:
        return max(self.stats.record_sizes) if self.stats.record_sizes else 0

    def serving_view(self, prepared) -> "PreparedCollection":
        """A PreparedCollection materializable as this shard's machine.

        Shard-local records and record-size statistics (Table 2 buffers
        are sized per shard) combined with the *global* document table
        and *global* df/ctf: the inference networks read ``doc_count``,
        ``average_doc_length``, document lengths, and dictionary term
        statistics from the index they are attached to, and those must
        be collection-wide for sharded rankings to be bit-identical to
        the single-disk engine's.
        """
        from ..core.prepared import PreparedCollection

        shard_terms = {term_id for term_id, _record in self.records}
        term_id_of_rank = {
            rank: term_id
            for rank, term_id in prepared.term_id_of_rank.items()
            if term_id in shard_terms
        }
        return PreparedCollection(
            name=f"{prepared.name}#shard{self.shard_id}of{self.n_shards}",
            collection=prepared.collection,
            records=self.records,
            term_id_of_rank=term_id_of_rank,
            rank_of_term_id={t: r for r, t in term_id_of_rank.items()},
            df={t: prepared.df[t] for t in shard_terms},
            ctf={t: prepared.ctf[t] for t in shard_terms},
            doctable=prepared.doctable,
            stats=self.stats,
            # Global max_tf >= any shard-local max_tf, so the pruning
            # bound stays admissible on every shard (like df/ctf, bound
            # metadata is collection-wide so shard rankings agree with
            # the single-disk engine's).
            max_tf={t: prepared.max_tf.get(t, 0) for t in shard_terms},
        )


def partition_prepared(
    prepared, partitioner: Partitioner
) -> List[ShardPrepared]:
    """Split a prepared collection into per-shard slices.

    Every posting is routed by its document's home shard; a term whose
    postings all live elsewhere simply has no record (and no dictionary
    entry) in this shard.  Record encoding is identical to the global
    build's, so the N=1 partition reproduces the unsharded records
    byte for byte.
    """
    n = partitioner.n_shards
    shards = [
        ShardPrepared(shard_id=i, n_shards=n, doc_ids=[], records=[])
        for i in range(n)
    ]

    home: Dict[int, int] = {}
    for doc_id, length in prepared.doctable.lengths.items():
        shard_id = partitioner.shard_of(doc_id)
        home[doc_id] = shard_id
        shards[shard_id].doc_ids.append(doc_id)
        shards[shard_id].doctable.add(doc_id, length)
        shards[shard_id].stats.documents += 1

    for term_id, record in prepared.records:
        if n == 1:
            slices: List[Optional[List]] = [None]
            slices[0] = decode_record(record)
        else:
            slices = [None] * n
            for posting in decode_record(record):
                shard_id = home[posting[0]]
                if slices[shard_id] is None:
                    slices[shard_id] = []
                slices[shard_id].append(posting)
        for shard_id, postings in enumerate(slices):
            if not postings:
                continue
            shard = shards[shard_id]
            encoded = record if n == 1 else encode_record(postings)
            shard.records.append((term_id, encoded))
            shard.df[term_id] = len(postings)
            shard.ctf[term_id] = sum(len(p) for _d, p in postings)
            shard.stats.records += 1
            shard.stats.postings += sum(len(p) for _d, p in postings)
            shard.stats.compressed_bytes += len(encoded)
            shard.stats.uncompressed_bytes += uncompressed_size(postings)
            shard.stats.record_sizes.append(len(encoded))
    return shards
