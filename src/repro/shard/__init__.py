"""Document-partitioned sharding of the inverted file.

The paper's system is one machine: one disk, one Mneme file, one set of
pools and buffers.  Its scaling story ("collections of a gigabyte or
more") points straight at partitioning: split the *documents* across N
such machines, replicate the pool/buffer layout on each, fan every query
out, and merge.  This package adds that layer without disturbing the
single-machine stack beneath it:

* :mod:`.partition` — deterministic hash/range document partitioners and
  the per-shard slicing of a prepared collection;
* :mod:`.system` — :func:`materialize_sharded` builds one simulated
  machine per shard; :class:`ShardedIRSystem` holds them plus the
  coordinator state;
* :mod:`.taat` / :mod:`.scheduler` — per-shard engines behind a
  thread-pool scheduler with a global-statistics exchange, keeping
  sharded rankings bit-identical to the single-disk engine's;
* :mod:`.merge` — lossless top-k merging with degraded-mode accounting;
* :mod:`.metrics` — per-shard Table 3-6 breakdowns plus critical-path
  wall clock, queue depth, and load skew;
* :mod:`.rebalance` — deterministic online shard splitting (2 -> 4) with
  byte-identical child platters and an atomic epoch-bumping cutover.

Replication rides on the same layer: ``materialize_sharded(...,
replicas=R)`` builds R byte-identical mirrors per shard, the scheduler
routes each round to a healthy replica and fails over deterministically
when one degrades, and :meth:`ShardedIRSystem.rereplicate` rebuilds a
lost mirror from a survivor on the simulated clock.
"""

from .merge import ShardOutcome, ShardedQueryResult, merge_results
from .metrics import ShardRunMetrics, measure_sharded_run
from .rebalance import SplitReport, split_shards
from .partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    ShardPrepared,
    make_partitioner,
    partition_prepared,
)
from .scheduler import BatchOutcome, SchedulerStats, ShardScheduler, WaveOutcome
from .system import ShardedIRSystem, materialize_sharded
from .taat import ShardTaatRunner

__all__ = [
    "BatchOutcome",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "SchedulerStats",
    "ShardOutcome",
    "ShardPrepared",
    "ShardRunMetrics",
    "ShardScheduler",
    "ShardTaatRunner",
    "ShardedIRSystem",
    "ShardedQueryResult",
    "SplitReport",
    "WaveOutcome",
    "materialize_sharded",
    "measure_sharded_run",
    "merge_results",
    "partition_prepared",
    "make_partitioner",
    "split_shards",
]
