"""Measuring a sharded run with the paper's methodology, per shard.

Each shard is measured exactly like a single-disk system — cold start,
:class:`~repro.core.metrics.SystemSnapshot` before, difference after —
so every per-shard breakdown is a bona fide :class:`RunMetrics` directly
comparable with the unsharded tables.  On top of those the sharded
metrics add the two quantities that only exist with N machines:

* ``wall_s`` becomes the **critical path** — per query phase, the
  slowest shard's simulated time plus the coordinator's serial exchange
  and merge work.  This is what an N-machine deployment's wall clock
  would read, and what the scaling benchmark's speedup is computed from.
* ``wall_s_sum`` is total simulated machine time across shards and
  coordinator — the resource bill.  ``wall_s_sum / wall_s`` close to N
  means the fan-out actually ran in parallel; ``shard_skew`` near 1.0
  means the partitioner spread the load evenly.

I/A/B counters and per-pool buffer statistics are summed across shards:
they count physical work, which does not care which machine did it.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.metrics import RunMetrics, SystemSnapshot, cold_start
from ..inquery.engine import DEFAULT_TOP_K
from ..mneme import BufferStats
from .system import ShardedIRSystem


@dataclass
class ShardRunMetrics(RunMetrics):
    """RunMetrics over the merged results, plus the sharding ledger."""

    #: Total simulated machine-time across shards + coordinator (seconds).
    wall_s_sum: float = 0.0
    #: Coordinator-only time (df exchange + merge), part of ``wall_s``.
    coordinator_wall_s: float = 0.0
    per_shard: List[RunMetrics] = field(default_factory=list)
    tasks: int = 0
    barriers: int = 0
    max_queue_depth: int = 0
    shard_skew: float = 1.0
    shards_down: Tuple[int, ...] = ()

    @property
    def parallel_efficiency(self) -> float:
        """``wall_s_sum / (N * wall_s)``: 1.0 is perfect scaling."""
        if self.wall_s <= 0 or not self.per_shard:
            return 0.0
        return self.wall_s_sum / (len(self.per_shard) * self.wall_s)


def _sum_buffer_stats(per_shard: List[RunMetrics]) -> Dict[str, BufferStats]:
    """Element-wise sum of each shard's per-pool buffer counters."""
    totals: Dict[str, BufferStats] = {}
    for metrics in per_shard:
        for pool, stats in metrics.buffer_stats.items():
            if pool not in totals:
                totals[pool] = BufferStats()
            total = totals[pool]
            total.refs += stats.refs
            total.hits += stats.hits
            total.insertions += stats.insertions
            total.evictions += stats.evictions
    return totals


def measure_sharded_run(
    sharded: ShardedIRSystem,
    queries: List[str],
    query_set_name: str = "",
    top_k: int = DEFAULT_TOP_K,
    engine: str = "taat",
    cold: bool = True,
    keep_results: bool = True,
    max_workers=None,
    prune: str = "off",
) -> ShardRunMetrics:
    """Run a query set through the shard scheduler and measure everything."""
    live = sharded.live_shards
    if cold:
        for shard_id in live:
            cold_start(sharded.shards[shard_id])
        sharded.clock.reset()
    snapshots = {
        shard_id: SystemSnapshot(sharded.shards[shard_id]) for shard_id in live
    }
    coordinator_start = sharded.clock.snapshot()
    scheduler = sharded.scheduler(
        top_k=top_k, engine=engine, max_workers=max_workers, prune=prune
    )
    outcome = scheduler.run_batch(queries)
    coordinator = sharded.clock.since(coordinator_start)

    per_shard = [
        snapshots[shard_id].metrics(
            outcome.per_shard_results[shard_id],
            query_set_name=query_set_name,
            queries=len(queries),
            keep_results=keep_results,
        )
        for shard_id in live
    ]
    shard_wall_sum = sum(m.wall_s for m in per_shard)
    results = outcome.results
    return ShardRunMetrics(
        system=sharded.name,
        query_set=query_set_name,
        queries=len(queries),
        wall_s=outcome.critical.wall_ms / 1000.0,
        user_s=outcome.critical.user_ms / 1000.0,
        system_io_s=outcome.critical.system_io_ms / 1000.0,
        io_inputs=sum(m.io_inputs for m in per_shard),
        file_accesses=sum(m.file_accesses for m in per_shard),
        record_lookups=sum(m.record_lookups for m in per_shard),
        bytes_from_file=sum(m.bytes_from_file for m in per_shard),
        buffer_stats=_sum_buffer_stats(per_shard),
        results=results if keep_results else [],
        degraded_queries=sum(1 for r in results if r.degraded),
        terms_failed=sum(r.terms_failed for r in results),
        # Pruning counters live on the per-shard engine results (the
        # merged coordinator results don't carry them), so the summed
        # view comes from the per-shard metrics.
        documents_skipped=sum(m.documents_skipped for m in per_shard),
        blocks_skipped=sum(m.blocks_skipped for m in per_shard),
        prune_threshold_updates=sum(
            m.prune_threshold_updates for m in per_shard
        ),
        wall_s_sum=shard_wall_sum + coordinator.wall_ms / 1000.0,
        coordinator_wall_s=coordinator.wall_ms / 1000.0,
        per_shard=per_shard,
        tasks=outcome.stats.tasks,
        barriers=outcome.stats.barriers,
        max_queue_depth=outcome.stats.max_queue_depth,
        shard_skew=outcome.stats.shard_skew,
        shards_down=tuple(sharded.shards_down),
    )
