"""Measuring a sharded run with the paper's methodology, per shard.

Each shard is measured exactly like a single-disk system — cold start,
:class:`~repro.core.metrics.SystemSnapshot` before, difference after —
so every per-shard breakdown is a bona fide :class:`RunMetrics` directly
comparable with the unsharded tables.  On top of those the sharded
metrics add the two quantities that only exist with N machines:

* ``wall_s`` becomes the **critical path** — per query phase, the
  slowest shard's simulated time plus the coordinator's serial exchange
  and merge work.  This is what an N-machine deployment's wall clock
  would read, and what the scaling benchmark's speedup is computed from.
* ``wall_s_sum`` is total simulated machine time across shards and
  coordinator — the resource bill.  ``wall_s_sum / wall_s`` close to N
  means the fan-out actually ran in parallel; ``shard_skew`` near 1.0
  means the partitioner spread the load evenly.

With replication a "shard" is a *group* of byte-identical machines; the
shard's entry in ``per_shard`` sums the counters of every replica that
was healthy when the run began (a failed-over attempt's reads happened
on a real machine and stay on the bill), while the results-derived
fields come from whatever replica actually served each query.

I/A/B counters and per-pool buffer statistics are summed across shards:
they count physical work, which does not care which machine did it.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.metrics import RunMetrics, SystemSnapshot, cold_start
from ..inquery import QueryResult
from ..inquery.engine import DEFAULT_TOP_K
from ..mneme import BufferStats
from .system import ShardedIRSystem


@dataclass
class ShardRunMetrics(RunMetrics):
    """RunMetrics over the merged results, plus the sharding ledger."""

    #: Total simulated machine-time across shards + coordinator (seconds).
    wall_s_sum: float = 0.0
    #: Coordinator-only time (df exchange + merge), part of ``wall_s``.
    coordinator_wall_s: float = 0.0
    per_shard: List[RunMetrics] = field(default_factory=list)
    tasks: int = 0
    barriers: int = 0
    max_queue_depth: int = 0
    shard_skew: float = 1.0
    shards_down: Tuple[int, ...] = ()
    #: Mirror count R of the measured system (0 = unreplicated).
    replicas: int = 0
    #: ``(shard, replica)`` pairs that were marked down when the run ended.
    replicas_down: Tuple[Tuple[int, int], ...] = ()
    #: Simulated busy ms per ``(shard, replica)``, failed attempts included.
    replica_busy_ms: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: One ``{shard: replica}`` map per scheduler round.
    served_by: List[Dict[int, int]] = field(default_factory=list)
    #: Failover events in deterministic round/shard order (see scheduler).
    failovers: List[Dict[str, object]] = field(default_factory=list)

    @property
    def parallel_efficiency(self) -> float:
        """``wall_s_sum / (N * wall_s)``: 1.0 is perfect scaling."""
        if self.wall_s <= 0 or not self.per_shard:
            return 0.0
        return self.wall_s_sum / (len(self.per_shard) * self.wall_s)


def _sum_buffer_stats(per_shard: List[RunMetrics]) -> Dict[str, BufferStats]:
    """Element-wise sum of each shard's per-pool buffer counters."""
    totals: Dict[str, BufferStats] = {}
    for metrics in per_shard:
        for pool, stats in metrics.buffer_stats.items():
            if pool not in totals:
                totals[pool] = BufferStats()
            total = totals[pool]
            total.refs += stats.refs
            total.hits += stats.hits
            total.insertions += stats.insertions
            total.evictions += stats.evictions
    return totals


def _group_metrics(
    parts: List[RunMetrics],
    results: List[QueryResult],
    query_set_name: str,
    queries: int,
    keep_results: bool,
) -> RunMetrics:
    """Fold one replica group's counter deltas into a shard-level view.

    Counters sum across replicas (physical work on real machines);
    results-derived fields come from the queries the group served.
    """
    return RunMetrics(
        system=parts[0].system,
        query_set=query_set_name,
        queries=queries,
        wall_s=sum(p.wall_s for p in parts),
        user_s=sum(p.user_s for p in parts),
        system_io_s=sum(p.system_io_s for p in parts),
        io_inputs=sum(p.io_inputs for p in parts),
        file_accesses=sum(p.file_accesses for p in parts),
        record_lookups=sum(p.record_lookups for p in parts),
        bytes_from_file=sum(p.bytes_from_file for p in parts),
        buffer_stats=_sum_buffer_stats(parts),
        results=results if keep_results else [],
        degraded_queries=sum(1 for r in results if r.degraded),
        terms_failed=sum(r.terms_failed for r in results),
        documents_skipped=sum(
            getattr(r, "documents_skipped", 0) for r in results
        ),
        blocks_skipped=sum(getattr(r, "blocks_skipped", 0) for r in results),
        prune_threshold_updates=sum(
            getattr(r, "prune_threshold_updates", 0) for r in results
        ),
    )


def measure_sharded_run(
    sharded: ShardedIRSystem,
    queries: List[str],
    query_set_name: str = "",
    top_k: int = DEFAULT_TOP_K,
    engine: str = "taat",
    cold: bool = True,
    keep_results: bool = True,
    max_workers=None,
    prune: str = "off",
    replica_policy: str = "primary",
    policy_seed: int = 0,
    term_cache_bytes: int = 0,
) -> ShardRunMetrics:
    """Run a query set through the shard scheduler and measure everything."""
    live = sharded.live_shards
    groups = {
        shard_id: sharded.healthy_replicas(shard_id) for shard_id in live
    }
    if cold:
        for shard_id in live:
            for replica_id in groups[shard_id]:
                cold_start(sharded.replica(shard_id, replica_id))
        sharded.clock.reset()
    snapshots = {
        (shard_id, replica_id): SystemSnapshot(
            sharded.replica(shard_id, replica_id)
        )
        for shard_id in live
        for replica_id in groups[shard_id]
    }
    coordinator_start = sharded.clock.snapshot()
    scheduler = sharded.scheduler(
        top_k=top_k, engine=engine, max_workers=max_workers, prune=prune,
        replica_policy=replica_policy, policy_seed=policy_seed,
        term_cache_bytes=term_cache_bytes,
    )
    outcome = scheduler.run_batch(queries)
    coordinator = sharded.clock.since(coordinator_start)
    term_stats = None
    if term_cache_bytes > 0:
        from ..serve.termcache import merge_stats

        term_stats = merge_stats(
            cache for _s, _r, cache in scheduler.term_caches()
        )

    per_shard = []
    for shard_id in live:
        parts = [
            snapshots[(shard_id, replica_id)].metrics(
                [], query_set_name=query_set_name,
                queries=len(queries), keep_results=False,
            )
            for replica_id in groups[shard_id]
        ]
        per_shard.append(_group_metrics(
            parts,
            outcome.per_shard_results[shard_id],
            query_set_name,
            len(queries),
            keep_results,
        ))
    shard_wall_sum = sum(m.wall_s for m in per_shard)
    results = outcome.results
    return ShardRunMetrics(
        system=sharded.name,
        query_set=query_set_name,
        queries=len(queries),
        wall_s=outcome.critical.wall_ms / 1000.0,
        user_s=outcome.critical.user_ms / 1000.0,
        system_io_s=outcome.critical.system_io_ms / 1000.0,
        io_inputs=sum(m.io_inputs for m in per_shard),
        file_accesses=sum(m.file_accesses for m in per_shard),
        record_lookups=sum(m.record_lookups for m in per_shard),
        bytes_from_file=sum(m.bytes_from_file for m in per_shard),
        buffer_stats=_sum_buffer_stats(per_shard),
        results=results if keep_results else [],
        degraded_queries=sum(1 for r in results if r.degraded),
        terms_failed=sum(r.terms_failed for r in results),
        # Pruning counters live on the per-shard engine results (the
        # merged coordinator results don't carry them), so the summed
        # view comes from the per-shard metrics.
        documents_skipped=sum(m.documents_skipped for m in per_shard),
        blocks_skipped=sum(m.blocks_skipped for m in per_shard),
        prune_threshold_updates=sum(
            m.prune_threshold_updates for m in per_shard
        ),
        term_cache_hits=term_stats.hits if term_stats else 0,
        term_cache_misses=term_stats.misses if term_stats else 0,
        term_cache_evictions=term_stats.evictions if term_stats else 0,
        term_cache_bytes=term_stats.bytes if term_stats else 0,
        wall_s_sum=shard_wall_sum + coordinator.wall_ms / 1000.0,
        coordinator_wall_s=coordinator.wall_ms / 1000.0,
        per_shard=per_shard,
        tasks=outcome.stats.tasks,
        barriers=outcome.stats.barriers,
        max_queue_depth=outcome.stats.max_queue_depth,
        shard_skew=outcome.stats.shard_skew,
        shards_down=tuple(sharded.shards_down),
        replicas=sharded.replicas,
        replicas_down=tuple(sharded.replicas_down),
        replica_busy_ms=dict(outcome.stats.replica_busy_ms),
        served_by=list(outcome.stats.served_by),
        failovers=list(outcome.stats.failovers),
    )
