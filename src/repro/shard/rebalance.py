"""Deterministic online shard splitting (2 -> 4) with atomic cutover.

A split refines the partitioner (:meth:`Partitioner.refine`): every new
shard's documents come from exactly one old shard, so re-partitioning
never moves a document between surviving shards — each old platter
streams into ``factor`` child platters and nothing else changes.  The
streaming is *live*: records are fetched from a healthy replica of each
old shard through its ordinary store (charged to that machine's
simulated clock, buffers and all — the survivor pays for the copy while
it keeps serving queries), routed by the refined partitioner, and
re-encoded into child :class:`~repro.shard.partition.ShardPrepared`
slices with exactly the bookkeeping
:func:`~repro.shard.partition.partition_prepared` uses.

Because record decode/encode and build order are deterministic, the
child platters are **byte-identical** to a stop-the-world rebuild at the
refined shard count — the failover gate asserts this, which is what
makes the mid-traffic split observationally invisible: any query served
after the cutover ranks exactly as it would on a fresh N·factor system.

The cutover itself (:meth:`ShardedIRSystem.cutover`) swaps partitioner,
replica groups, and prepared slices in one step at a wave boundary and
bumps the topology epoch; schedulers built against the old topology
refuse to run (:class:`~repro.errors.RebalanceInProgressError`) instead
of silently mixing layouts, and the serving layer invalidates its result
cache on the epoch bump.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.prepared import materialize
from ..errors import BadBlockError, ConfigError, ReplicaFailedError
from ..inquery import decode_record, encode_record, uncompressed_size
from ..synth import term_string
from .partition import ShardPrepared
from .system import ShardedIRSystem


@dataclass
class SplitReport:
    """What a split did, for benches and the CLI."""

    factor: int
    old_shards: int
    new_shards: int
    replicas: int
    records_streamed: int
    postings_moved: int
    #: old shard -> replica the stream read from
    source_replicas: Dict[int, int] = field(default_factory=dict)
    #: old shard -> simulated ms the stream charged that replica
    stream_ms: Dict[int, float] = field(default_factory=dict)
    mirrors_verified: int = 0
    epoch: int = 0

    def as_dict(self) -> dict:
        return {
            "factor": self.factor,
            "old_shards": self.old_shards,
            "new_shards": self.new_shards,
            "replicas": self.replicas,
            "records_streamed": self.records_streamed,
            "postings_moved": self.postings_moved,
            "source_replicas": {
                str(k): v for k, v in sorted(self.source_replicas.items())
            },
            "mirrors_verified": self.mirrors_verified,
            "epoch": self.epoch,
        }


def _route_docs(
    sharded: ShardedIRSystem, new_part, factor: int
) -> List[ShardPrepared]:
    """Build the children's document-side bookkeeping, verifying that the
    refined partitioner really refines the current one for every doc."""
    new_n = new_part.n_shards
    children = [
        ShardPrepared(shard_id=c, n_shards=new_n, doc_ids=[], records=[])
        for c in range(new_n)
    ]
    for doc_id, length in sharded.prepared.doctable.lengths.items():
        child = new_part.shard_of(doc_id)
        parent = sharded.partitioner.parent_of(child, factor)
        if parent != sharded.partitioner.shard_of(doc_id):
            raise ConfigError(
                f"partitioner refinement violated: doc {doc_id} moves from "
                f"shard {sharded.partitioner.shard_of(doc_id)} to child "
                f"{child} of shard {parent}"
            )
        children[child].doc_ids.append(doc_id)
        children[child].doctable.add(doc_id, length)
        children[child].stats.documents += 1
    return children


def _stream_shard(
    sharded: ShardedIRSystem,
    shard_id: int,
    new_part,
    children: List[ShardPrepared],
    report: SplitReport,
) -> None:
    """Stream one old shard's records from a surviving replica into its
    children, retrying the next healthy replica if the source dies."""
    prepared = sharded.prepared
    sources = list(sharded.healthy_replicas(shard_id))
    last_error = None
    for source_id in sources:
        source = sharded.replica(shard_id, source_id)
        routed: List[List[tuple]] = []  # per record: (term_id, child slices)
        start = source.clock.snapshot()
        try:
            for term_id, _record in sharded.shard_prepared[shard_id].records:
                term = term_string(prepared.rank_of_term_id[term_id])
                entry = source.index.term_entry(term)
                data = source.index.store.fetch(entry.storage_key)
                slices: Dict[int, list] = {}
                for posting in decode_record(data):
                    child = new_part.shard_of(posting[0])
                    slices.setdefault(child, []).append(posting)
                routed.append((term_id, slices))
        except BadBlockError as error:
            # This survivor is dying too: mark it, try the next one.
            last_error = error
            sharded.mark_down(shard_id, replica_id=source_id)
            continue
        report.source_replicas[shard_id] = source_id
        report.stream_ms[shard_id] = source.clock.since(start).wall_ms
        for term_id, slices in routed:
            for child_id in sorted(slices):
                postings = slices[child_id]
                child = children[child_id]
                encoded = encode_record(postings)
                child.records.append((term_id, encoded))
                child.df[term_id] = len(postings)
                child.ctf[term_id] = sum(len(p) for _d, p in postings)
                child.stats.records += 1
                child.stats.postings += sum(len(p) for _d, p in postings)
                child.stats.compressed_bytes += len(encoded)
                child.stats.uncompressed_bytes += uncompressed_size(postings)
                child.stats.record_sizes.append(len(encoded))
                report.postings_moved += len(postings)
            report.records_streamed += 1
        return
    raise ReplicaFailedError(
        shard_id, sources[-1] if sources else 0,
        reason=f"no healthy replica survived to stream the split: {last_error}",
    )


def split_shards(
    sharded: ShardedIRSystem, factor: int = 2, verify_replicas: bool = True
) -> SplitReport:
    """Split every shard into ``factor`` children and cut over atomically.

    The old system keeps serving until the cutover (the caller picks the
    wave boundary); on return ``sharded`` *is* the new topology — same
    replica count, fresh health state, ``epoch`` bumped.  Raises
    :class:`~repro.errors.RebalanceInProgressError` if a split is
    already running, and leaves the old topology untouched on any
    failure.
    """
    sharded.begin_rebalance()
    try:
        new_part = sharded.partitioner.refine(factor)
        replicas = sharded.replicas
        report = SplitReport(
            factor=factor,
            old_shards=sharded.n_shards,
            new_shards=new_part.n_shards,
            replicas=replicas,
            records_streamed=0,
            postings_moved=0,
        )
        children = _route_docs(sharded, new_part, factor)
        for shard_id in range(sharded.n_shards):
            _stream_shard(sharded, shard_id, new_part, children, report)

        groups = []
        for child in children:
            view = child.serving_view(sharded.prepared)
            primary = materialize(view, sharded.config)
            group = [primary]
            for replica_id in range(1, replicas + 1):
                mirror = materialize(view, sharded.config)
                if verify_replicas:
                    if mirror.fs.disk._blocks != primary.fs.disk._blocks:
                        raise ReplicaFailedError(
                            child.shard_id, replica_id,
                            reason="split mirror diverged from child primary",
                        )
                    report.mirrors_verified += 1
                group.append(mirror)
            groups.append(group)
    except Exception:
        sharded.abort_rebalance()
        raise
    sharded.cutover(new_part, groups, children)
    report.epoch = sharded.epoch
    return report
