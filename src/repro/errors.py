"""Exception hierarchy shared by every repro subpackage.

All library errors derive from :class:`ReproError` so callers can catch one
base class at the public-API boundary.  Subsystems raise the most specific
subclass that applies; nothing in the library raises bare ``Exception``.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class StorageError(ReproError):
    """Base class for errors raised by the simulated storage substrate."""


class DiskFullError(StorageError):
    """The simulated disk has no free blocks left."""


class BadBlockError(StorageError):
    """A block read failed verification (torn write / corruption)."""


class ReadFailedError(BadBlockError):
    """A read kept failing after bounded retries (and any repair attempt).

    This is the storage layer's explicit "I give up" signal: engines may
    catch it (and its :class:`BadBlockError` siblings) to degrade
    gracefully instead of aborting a whole query batch.
    """


class ChecksumError(BadBlockError):
    """Segment bytes failed checksum verification (silent corruption)."""


class ShardUnavailableError(StorageError):
    """A shard of a partitioned index cannot serve requests.

    Raised inside the shard scheduler when a shard has been marked down
    (administratively or by its health checks); the scheduler catches it
    and degrades the merged result (``completeness`` < 1) instead of
    failing the query.  It escapes to callers only when a shard is
    addressed directly.

    ``replica_id`` identifies the mirror that failed when the error is
    scoped to one replica of a replicated shard; it is ``None`` when the
    whole shard (every replica) is unavailable.
    """

    def __init__(self, shard_id: int, reason: str = "", replica_id=None):
        at = f" replica {replica_id}" if replica_id is not None else ""
        detail = f": {reason}" if reason else ""
        super().__init__(f"shard {shard_id}{at} is unavailable{detail}")
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.reason = reason


class ReplicaFailedError(ShardUnavailableError):
    """A specific replica of a shard failed or diverged.

    Raised when a mirror platter fails byte-identity verification at
    build or re-replication time, or when re-replication is requested
    and no healthy source replica survives to stream from.  Failover
    itself never raises this — the scheduler downgrades a failed replica
    and retries the next healthy one — so seeing it means replication
    *management*, not serving, went wrong.
    """

    def __init__(self, shard_id: int, replica_id: int, reason: str = ""):
        super().__init__(shard_id, reason=reason, replica_id=replica_id)


class RebalanceInProgressError(ReproError):
    """A conflicting operation raced with a shard-split cutover.

    Raised when re-replication or a second split is requested while a
    rebalance is streaming records, and by stale schedulers whose
    captured topology epoch no longer matches the backend after an
    atomic cutover (``expected_epoch`` vs ``actual_epoch``).  Callers
    rebuild their scheduler from the post-cutover backend and retry.
    """

    def __init__(self, reason: str = "", expected_epoch=None,
                 actual_epoch=None):
        detail = f": {reason}" if reason else ""
        if expected_epoch is not None:
            detail += (f" (scheduler epoch {expected_epoch}, "
                       f"backend epoch {actual_epoch})")
        super().__init__(f"rebalance conflict{detail}")
        self.reason = reason
        self.expected_epoch = expected_epoch
        self.actual_epoch = actual_epoch


class ServiceUnavailableError(ReproError):
    """The query service cannot accept or complete requests.

    Raised by :class:`~repro.serve.service.QueryService` when a request
    arrives after shutdown, or when every shard behind the service is
    down — the per-shard degradation machinery has nothing left to
    degrade *to*.  Carries ``reason`` like
    :class:`ShardUnavailableError` carries ``shard_id``/``reason``.
    """

    def __init__(self, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"query service unavailable{detail}")
        self.reason = reason


class RequestSheddedError(ServiceUnavailableError):
    """A request was refused by admission control instead of queued.

    Overload is a first-class state of the service, not an accident: a
    bounded admission queue refuses work it could only serve uselessly
    late.  The request is *accounted* — it appears in the service's
    shed ledger and per-class metrics — never silently dropped.
    ``reason`` is the admission verdict (``"queue-full"`` for a bounded
    queue at capacity); ``query`` and ``priority`` identify the victim.
    """

    def __init__(self, reason: str = "", query: str = "",
                 priority: str = "interactive"):
        detail = f": {reason}" if reason else ""
        Exception.__init__(self, f"request {query!r} shed{detail}")
        self.reason = reason
        self.query = query
        self.priority = priority


class DeadlineExceededError(RequestSheddedError):
    """A request's deadline passed before the service could start it.

    Requests carry an absolute deadline on the service clock; one that
    would be dequeued past its deadline is expired at wave-formation
    time (serving it would burn capacity on an answer the client has
    already abandoned).  ``deadline_ms`` is the missed deadline and
    ``now_ms`` the service time at which it was declared dead — both on
    the simulated clock, so the expiry set is a pure function of the
    request trace.
    """

    def __init__(self, query: str = "", priority: str = "interactive",
                 deadline_ms: float = 0.0, now_ms: float = 0.0):
        super().__init__(
            f"deadline {deadline_ms:.3f}ms passed at t={now_ms:.3f}ms",
            query=query, priority=priority,
        )
        self.deadline_ms = deadline_ms
        self.now_ms = now_ms


class CacheInconsistencyError(ReproError):
    """A result-cache entry survived past its invalidation epoch.

    This is an internal-invariant failure, not an operational state:
    the cache clears itself when its epoch is bumped, so an entry whose
    recorded epoch disagrees with the cache's means the eviction logic
    is broken and the entry may rank against a stale index.  Serving it
    silently would violate the bit-identity contract, hence an error
    with the offending ``key`` and a ``reason`` payload.
    """

    def __init__(self, key: str = "", reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"result cache inconsistent for key {key!r}{detail}")
        self.key = key
        self.reason = reason


class FileSystemError(StorageError):
    """Errors from the simulated file system layer."""


class FileNotFoundInStoreError(FileSystemError):
    """Named simulated file does not exist."""


class BTreeError(ReproError):
    """Base class for B-tree keyed file errors."""


class KeyNotFoundError(BTreeError, KeyError):
    """Lookup of a key with no record in the keyed file."""


class DuplicateKeyError(BTreeError):
    """Insert of a key that already has a record."""


class MnemeError(ReproError):
    """Base class for Mneme persistent object store errors."""


class ObjectNotFoundError(MnemeError, KeyError):
    """No object with the requested identifier exists."""


class InvalidIdentifierError(MnemeError, ValueError):
    """An object identifier is malformed or out of range."""


class PoolError(MnemeError):
    """An object violates the policies of the pool it was assigned to."""


class BufferError_(MnemeError):
    """Errors from the extensible buffer framework.

    Named with a trailing underscore to avoid shadowing the (obscure)
    builtin :class:`BufferError`.
    """


class RecoveryError(MnemeError):
    """The redo log is unusable or inconsistent at restart."""


class TransactionError(MnemeError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction can no longer be used (conflict or explicit abort)."""


class LockConflictError(TransactionAborted):
    """A lock request conflicted; the requesting transaction was aborted."""

    def __init__(self, oid: int, holder: int, requester: int):
        super().__init__(
            f"transaction {requester} aborted: object {oid} is locked by "
            f"transaction {holder}"
        )
        self.oid = oid
        self.holder = holder
        self.requester = requester


class IndexError_(ReproError):
    """Errors from inverted file index construction or access.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class QueryError(ReproError):
    """A structured query could not be parsed or evaluated."""


class PruningUnsupportedError(QueryError):
    """Dynamic pruning was required but no safe bound is available.

    Raised when an engine is asked to *require* pruned evaluation
    (``prune="require"``) for a query whose operators or stored
    metadata cannot provide an admissible score upper bound — e.g. a
    ``#wsum`` with negative weights (the fold is no longer monotone in
    each term belief) or an index built before max-tf bound metadata
    existed.  With ``prune="auto"`` these cases silently fall back to
    exhaustive evaluation instead; the explicit error removes the
    ambiguity when a caller needs to know pruning actually happened.
    """

    def __init__(self, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"dynamic pruning unsupported{detail}")
        self.reason = reason


class ConfigError(ReproError, ValueError):
    """Invalid experiment or system configuration."""
