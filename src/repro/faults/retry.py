"""Bounded retry-with-backoff policy for the Mneme read path.

A transient fault (controller timeout, torn sector re-read) is retried a
bounded number of times; every wait is charged to the *simulated* clock
so degraded runs show up in the Table 3/4-style timings instead of
silently costing nothing.  The policy object is immutable so one
instance can be shared by every file of a store.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed segment read is retried.

    ``max_attempts`` counts the initial read: the default of 4 means one
    read plus up to three retries.  The wait before retry ``n`` (1-based)
    is ``backoff_ms * multiplier ** (n - 1)``, charged as I/O wait.
    """

    max_attempts: int = 4
    backoff_ms: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_ms < 0 or self.multiplier <= 0:
            raise ValueError("backoff_ms must be >= 0 and multiplier > 0")

    def wait_before(self, retry: int) -> float:
        """Simulated milliseconds to wait before 1-based retry ``retry``."""
        if retry < 1:
            raise ValueError("retries are numbered from 1")
        return self.backoff_ms * self.multiplier ** (retry - 1)

    @property
    def max_retries(self) -> int:
        return self.max_attempts - 1
