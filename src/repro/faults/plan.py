"""Deterministic fault plans for the simulated disk.

A :class:`FaultPlan` is a schedule of :class:`FaultEvent`\\ s attached to
a :class:`~repro.simdisk.disk.SimDisk`.  Each event names a *channel*
(read, write, or allocate), an eligible-operation index at which it
triggers, and how many consecutive operations it affects.  Because the
simulated stack is deterministic, "the 1 243rd eligible read" identifies
the same physical block on every run with the same build — which is what
makes a seeded chaos run reproducible and lets the harness assert
bit-identical degraded results for a fixed seed.

Fault kinds
-----------

``transient-read``
    The block transfer fails (:class:`~repro.errors.BadBlockError`); the
    head still moved and the wasted rotation is charged to the clock.
    Once triggered the event *sticks to the block it hit* for its
    remaining ``times`` — modelling a sector that stays unreadable
    across immediate retries, then recovers (or, with ``times`` at or
    above the retry budget, stays dead until rewritten).
``bit-flip``
    One stored bit is flipped *at rest* before the read returns, i.e.
    silent corruption the disk itself does not notice.  Only per-segment
    checksums above can catch it.
``read-latency`` / ``write-latency``
    The operation succeeds but costs ``extra_ms`` more simulated I/O
    wait — a degraded actuator or a deep controller queue.
``torn-write``
    The tail half of the written block is replaced with zeroes on the
    platter while the write reports success (the classic torn page the
    redo log exists for).
``disk-full``
    The scheduled allocation raises
    :class:`~repro.errors.DiskFullError` — mid-build space exhaustion.

Scoping: a plan built with ``eligible_blocks`` only counts (and only
faults) operations on those physical blocks, so a harness can aim
faults at one file's data while leaving auxiliary tables, dictionaries,
and the redo log untouched.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from . import state as _state

#: Event kind -> operation channel it triggers on.
CHANNELS: Dict[str, str] = {
    "transient-read": "read",
    "bit-flip": "read",
    "read-latency": "read",
    "torn-write": "write",
    "write-latency": "write",
    "disk-full": "alloc",
}


@dataclass
class FaultEvent:
    """One scheduled fault.

    ``at_op`` is the 0-based index on the event's channel counting only
    *eligible* operations (see plan scoping).  ``times`` > 1 makes the
    event sticky: after triggering it keeps firing on re-accesses of the
    same block until its budget is spent.
    """

    kind: str
    at_op: int
    times: int = 1
    extra_ms: float = 0.0     #: additional simulated wait (latency kinds)
    bit: int = 0              #: which bit of the block to flip (bit-flip)
    #: Sticky events (the default) latch onto the block they first hit
    #: and keep firing only on re-accesses of that block.  Non-sticky
    #: events fire on *consecutive eligible operations* regardless of
    #: block — ``times`` large enough models a dead actuator that fails
    #: every transfer (see :meth:`FaultPlan.dead_disk`).
    sticky: bool = True
    fired: int = 0            #: firings so far (mutated by the plan)
    bound_block: Optional[int] = None  #: block a sticky event latched onto

    def __post_init__(self):
        if self.kind not in CHANNELS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_op < 0 or self.times < 1:
            raise ValueError("at_op must be >= 0 and times >= 1")

    @property
    def channel(self) -> str:
        return CHANNELS[self.kind]

    @property
    def spent(self) -> bool:
        return self.fired >= self.times


@dataclass
class FaultStats:
    """What a plan actually did, per kind."""

    transient_reads: int = 0
    bit_flips: int = 0
    read_latencies: int = 0
    torn_writes: int = 0
    write_latencies: int = 0
    disk_fulls: int = 0

    _FIELDS = (
        "transient_reads", "bit_flips", "read_latencies",
        "torn_writes", "write_latencies", "disk_fulls",
    )
    _BY_KIND = {
        "transient-read": "transient_reads",
        "bit-flip": "bit_flips",
        "read-latency": "read_latencies",
        "torn-write": "torn_writes",
        "write-latency": "write_latencies",
        "disk-full": "disk_fulls",
    }

    def count(self, kind: str) -> None:
        name = self._BY_KIND[kind]
        setattr(self, name, getattr(self, name) + 1)

    @property
    def total(self) -> int:
        return sum(getattr(self, name) for name in self._FIELDS)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}


class FaultPlan:
    """A deterministic schedule of faults over eligible disk operations."""

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        eligible_blocks: Optional[Set[int]] = None,
        label: str = "",
    ):
        self.events: List[FaultEvent] = list(events)
        #: Free-form tag naming the victim (e.g. ``"shard0/replica1"``),
        #: surfaced by chaos harnesses and failover traces.
        self.label = label
        #: Physical blocks the plan applies to (``None`` = every block).
        self.eligible_blocks = (
            None if eligible_blocks is None else set(eligible_blocks)
        )
        #: Eligible operations seen so far, per channel.  These advance
        #: even for an empty plan, so an event-free "probe" plan measures
        #: a run's eligible-operation horizon.
        self.ops: Dict[str, int] = {"read": 0, "write": 0, "alloc": 0}
        self.stats = FaultStats()

    # -- hooks called by SimDisk ------------------------------------------------

    def observe_read(self, block_no: int) -> Optional[FaultEvent]:
        return self._observe("read", block_no)

    def observe_write(self, block_no: int) -> Optional[FaultEvent]:
        return self._observe("write", block_no)

    def observe_alloc(self) -> Optional[FaultEvent]:
        return self._observe("alloc", None)

    def _observe(self, channel: str, block_no: Optional[int]) -> Optional[FaultEvent]:
        if not _state.enabled():
            return None
        if (
            block_no is not None
            and self.eligible_blocks is not None
            and block_no not in self.eligible_blocks
        ):
            return None
        op = self.ops[channel]
        self.ops[channel] = op + 1
        for event in self.events:
            if event.channel != channel or event.spent:
                continue
            if event.fired > 0:
                # Sticky: already triggered, keep failing the same block.
                # Non-sticky: keep failing every eligible operation.
                if not event.sticky or event.bound_block == block_no:
                    event.fired += 1
                    self.stats.count(event.kind)
                    return event
                continue
            if event.at_op == op:
                event.fired += 1
                event.bound_block = block_no
                self.stats.count(event.kind)
                return event
        return None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def unfired(self) -> int:
        """Event firings still pending (0 once every event is spent)."""
        return sum(event.times - event.fired for event in self.events)

    @property
    def exhausted(self) -> bool:
        return self.unfired == 0

    def clear(self) -> int:
        """Drop every pending firing; returns how many were dropped.

        After ``clear()`` the plan never fires again (operation counters
        keep advancing), which is how a harness guarantees the
        "after faults clear" phase really is fault-free.
        """
        dropped = self.unfired
        self.events = [event for event in self.events if event.spent]
        return dropped

    @classmethod
    def dead_disk(
        cls, eligible_blocks: Optional[Set[int]] = None, label: str = ""
    ) -> "FaultPlan":
        """A plan under which every eligible read fails, forever.

        Models a dead disk (or a dead shard of a partitioned index):
        from the first read on, every transfer raises
        :class:`~repro.errors.BadBlockError`, exhausting the reader's
        retry budget each time.  Writes and allocations still succeed —
        the platter spins, the heads are gone.
        """
        return cls(
            [FaultEvent("transient-read", at_op=0, times=1 << 62, sticky=False)],
            eligible_blocks=eligible_blocks,
            label=label,
        )

    # -- seeded generation --------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        read_ops: int = 0,
        write_ops: int = 0,
        transient_reads: int = 0,
        stuck_reads: int = 0,
        bit_flips: int = 0,
        latency_spikes: int = 0,
        torn_writes: int = 0,
        retry_attempts: int = 4,
        latency_ms: float = 40.0,
        eligible_blocks: Optional[Set[int]] = None,
    ) -> "FaultPlan":
        """Generate a deterministic mixed schedule from one seed.

        ``transient_reads`` recover within the retry budget
        (``times < retry_attempts``); ``stuck_reads`` exceed it, so the
        reader gives up and the serving layer must degrade.  Event
        positions are sampled without replacement per channel, so no two
        events contend for the same trigger operation.
        """
        rng = random.Random(seed)
        events: List[FaultEvent] = []

        read_events = transient_reads + stuck_reads + bit_flips + latency_spikes
        if read_events and read_ops > 0:
            slots = rng.sample(range(read_ops), min(read_events, read_ops))
            rng.shuffle(slots)
            for _ in range(transient_reads):
                if not slots:
                    break
                events.append(FaultEvent(
                    "transient-read", slots.pop(),
                    times=rng.randint(1, max(1, retry_attempts - 1)),
                ))
            for _ in range(stuck_reads):
                if not slots:
                    break
                events.append(FaultEvent(
                    "transient-read", slots.pop(), times=retry_attempts,
                ))
            for _ in range(bit_flips):
                if not slots:
                    break
                events.append(FaultEvent(
                    "bit-flip", slots.pop(), bit=rng.randrange(8 * 8192),
                ))
            for _ in range(latency_spikes):
                if not slots:
                    break
                events.append(FaultEvent(
                    "read-latency", slots.pop(),
                    extra_ms=latency_ms * rng.uniform(0.5, 2.0),
                ))
        if torn_writes and write_ops > 0:
            for slot in rng.sample(range(write_ops), min(torn_writes, write_ops)):
                events.append(FaultEvent("torn-write", slot))
        events.sort(key=lambda event: (event.channel, event.at_op))
        return cls(events, eligible_blocks=eligible_blocks)
