"""Deterministic fault injection for the simulated storage stack.

The subsystem has three pieces:

* :class:`FaultPlan` / :class:`FaultEvent` — a seeded schedule of disk
  faults (transient read errors, at-rest bit flips, torn writes, latency
  spikes, mid-build disk-full) attached to a
  :class:`~repro.simdisk.disk.SimDisk`;
* :class:`RetryPolicy` — the bounded-backoff retry the Mneme read path
  applies before giving up, with every wait charged to the simulated
  clock;
* :mod:`repro.faults.state` — the ``REPRO_FAULTS`` kill switch that
  disarms attached plans entirely.

Degraded serving on top of these lives in the engines
(:mod:`repro.inquery.engine`, :mod:`repro.inquery.daat`); the end-to-end
chaos harness is :mod:`repro.bench.chaos`.
"""

from .plan import CHANNELS, FaultEvent, FaultPlan, FaultStats
from .retry import RetryPolicy
from .state import enabled, set_enabled, use_faults

__all__ = [
    "CHANNELS",
    "FaultEvent",
    "FaultPlan",
    "FaultStats",
    "RetryPolicy",
    "enabled",
    "set_enabled",
    "use_faults",
]
