"""Global fault-injection kill switch.

Mirrors :mod:`repro.fastpath.state`: a tiny, dependency-free toggle so
the disk layer can consult it without import cycles.  Unlike the fast
path, fault injection defaults *on* only in the sense that an attached
:class:`~repro.faults.plan.FaultPlan` is honoured; with no plan attached
nothing in the stack changes.  ``REPRO_FAULTS=0`` (or ``off`` / ``false``
/ ``no``) disarms every attached plan — hooks stop counting operations
and never fire, so a run with the switch off is byte-identical to a run
with no plan at all.
"""

import os
from contextlib import contextmanager


def _initial() -> bool:
    env = os.environ.get("REPRO_FAULTS", "").strip().lower()
    if env in ("0", "off", "false", "no"):
        return False
    return True


#: Whether attached fault plans are honoured.  Mutate through
#: :func:`set_enabled` / :func:`use_faults`.
ENABLED = _initial()


def enabled() -> bool:
    """Is fault injection currently armed?"""
    return ENABLED


def set_enabled(flag: bool) -> bool:
    """Arm or disarm fault injection; returns the previous setting."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(flag)
    return previous


@contextmanager
def use_faults(flag: bool):
    """Temporarily arm or disarm fault injection (tests, harnesses)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
