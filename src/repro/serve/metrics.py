"""Per-class service metrics: latency, shedding, goodput.

:class:`ServiceMetrics` shapes one :class:`~repro.serve.service.ServiceReport`
into the overload-control ledger the saturation gate and the CLI read:
per priority class, how many requests were admitted, how many were
shed (and why), and the latency distribution of the *admitted* ones —
the population an SLO is stated over.  Latency digests come from
:func:`repro.core.stats.latency_summary`, the same nearest-rank
percentile arithmetic every other benchmark uses, so two identical
runs produce byte-identical metric dicts.

Goodput is admitted completions per second of makespan (first offered
arrival to last served completion): the throughput the service
*delivered*, with shed requests in the denominator's time window but
not in the numerator.  Under overload this is the number that should
be monotone in worker count — raw offered throughput is a property of
the trace, not the service.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.stats import latency_summary
from ..synth.traffic import PRIORITIES


def _round_digest(digest: Dict[str, float]) -> Dict[str, float]:
    return {key: round(value, 4) for key, value in digest.items()}


@dataclass
class ClassMetrics:
    """One priority class's slice of a traffic run."""

    priority: str
    admitted: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def offered(self) -> int:
        return self.admitted + self.shed_queue_full + self.shed_deadline

    @property
    def shed_fraction(self) -> float:
        offered = self.offered
        if not offered:
            return 0.0
        return (self.shed_queue_full + self.shed_deadline) / offered

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "shed_fraction": round(self.shed_fraction, 4),
            "latency": dict(self.latency),
        }


@dataclass
class ServiceMetrics:
    """The whole run: per-class ledgers plus the service-wide digest."""

    name: str
    offered: int
    admitted: int
    shed_queue_full: int
    shed_deadline: int
    goodput_qps: float
    makespan_ms: float
    latency: Dict[str, float]
    per_class: Dict[str, ClassMetrics]
    waves: int = 0
    workers: int = 0
    queue_limit: int = 0

    @property
    def shed_fraction(self) -> float:
        if not self.offered:
            return 0.0
        return (self.shed_queue_full + self.shed_deadline) / self.offered

    @classmethod
    def from_report(cls, report) -> "ServiceMetrics":
        """Shape a :class:`~repro.serve.service.ServiceReport`."""
        per_class: Dict[str, ClassMetrics] = {
            priority: ClassMetrics(priority=priority) for priority in PRIORITIES
        }
        class_latencies: Dict[str, List[float]] = {p: [] for p in PRIORITIES}
        for row in report.served:
            bucket = per_class.setdefault(
                row.priority, ClassMetrics(priority=row.priority)
            )
            bucket.admitted += 1
            class_latencies.setdefault(row.priority, []).append(row.latency_ms)
        for row in report.shed:
            bucket = per_class.setdefault(
                row.priority, ClassMetrics(priority=row.priority)
            )
            if row.reason == "queue-full":
                bucket.shed_queue_full += 1
            else:
                bucket.shed_deadline += 1
        for priority, bucket in per_class.items():
            bucket.latency = _round_digest(
                latency_summary(class_latencies.get(priority, []))
            )
        admitted = len(report.served)
        shed_queue_full = sum(
            1 for row in report.shed if row.reason == "queue-full"
        )
        shed_deadline = len(report.shed) - shed_queue_full
        # Makespan opens at the first *offered* arrival (shed or not)
        # and closes at the last served completion, so goodput charges
        # the service for the whole window it was offered work in.
        events = [row.arrival_ms for row in report.served]
        events += [row.arrival_ms for row in report.shed]
        start = min(events) if events else 0.0
        end = max((row.completion_ms for row in report.served), default=start)
        makespan_ms = max(0.0, end - start)
        goodput = admitted / makespan_ms * 1000.0 if makespan_ms > 0 else 0.0
        return cls(
            name=report.name,
            offered=admitted + len(report.shed),
            admitted=admitted,
            shed_queue_full=shed_queue_full,
            shed_deadline=shed_deadline,
            goodput_qps=goodput,
            makespan_ms=makespan_ms,
            latency=_round_digest(latency_summary(report.latencies_ms())),
            per_class={
                priority: per_class[priority] for priority in sorted(per_class)
            },
            waves=report.waves,
            workers=report.workers,
            queue_limit=report.queue_limit,
        )

    def as_dict(self, shed_trace: Optional[List] = None) -> dict:
        """A JSON-ready dict; byte-identical across identical runs.

        ``shed_trace`` (a report's ``shed`` list) additionally embeds
        the exact shed set — which requests, when, and why — which the
        determinism gate compares across runs.
        """
        cell = {
            "name": self.name,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "shed_fraction": round(self.shed_fraction, 4),
            "goodput_qps": round(self.goodput_qps, 2),
            "makespan_ms": round(self.makespan_ms, 4),
            "waves": self.waves,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "latency": dict(self.latency),
            "per_class": {
                priority: bucket.as_dict()
                for priority, bucket in self.per_class.items()
            },
        }
        if shed_trace is not None:
            cell["shed_trace"] = [
                {
                    "text": row.text,
                    "priority": row.priority,
                    "arrival_ms": round(row.arrival_ms, 4),
                    "shed_ms": round(row.shed_ms, 4),
                    "reason": row.reason,
                    "error": row.error,
                }
                for row in shed_trace
            ]
        return cell
