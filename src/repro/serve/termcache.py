"""The decoded-term cache: byte-budgeted, epoch-aware, tombstone-safe.

The paper's central performance result is that *record caching helps
more* than anything else Mneme does — query streams repeat terms, so
keeping inverted-list records resident pays (Tables 5/6, Figure 2).
The block LRU buffers reproduce that at the bottom of the stack and the
:class:`~repro.serve.cache.ResultCache` lifts it to whole queries; this
module adds the missing middle tier: a cache of **decoded** postings,
so a repeated term skips not only the SimDisk reads but the v-byte
decode as well.

One :class:`TermCache` serves one replica of one shard (flat systems
are shard 0).  Entries are keyed by ``(kind, term)`` where ``kind``
names the read choke point that produced them:

* ``"postings"`` — the TAAT provider's decoded ``[(doc, positions)]``
  list (:meth:`_IndexProvider.postings`);
* ``"arrays"``   — the fast TAAT provider's columnar
  :class:`~repro.fastpath.codec.RecordArrays`;
* ``"stream"``   — a DAAT stream recording: the decoded batch sequence
  one full drain of ``stream_postings`` produced;
* ``"blocks"``   — per-block ``(doc_ids, tfs, raw_nbytes)`` triples for
  the MaxScore :class:`~repro.inquery.bounds.PrunableSource`.

Correctness rules (the observational-identity contract):

* **Entries are epoch-raw.**  Payloads are cached *unfiltered*; the
  tombstone filter is applied after every cache fetch, against the
  union of the entry's tombstone snapshot and the index's current set.
  Deletes therefore never invalidate anything — a tombstoned document
  is filtered out of a hit exactly as it is filtered out of a fresh
  decode.
* **Adds invalidate exactly the mutated terms.**  An ingest batch
  rewrites only the records of the terms it adds postings to;
  :meth:`invalidate_terms` drops those entries (every kind) on the
  owning shard's caches and nothing else.
* **Compaction invalidates nothing.**  Folding tombstones rewrites
  records *without* the dead documents; :meth:`fold_tombstones` merges
  the folded set into every entry's snapshot, so a stale payload
  filtered through its snapshot yields exactly the live postings a
  fresh decode of the folded record yields.  Entries whose physical
  layout matters (``"blocks"``) carry a *fingerprint* of that layout
  and simply miss when compaction re-split their chunks.
* **Hits are charged a probe.**  Call sites charge
  :data:`TERM_PROBE_MS` on the simulated clock per lookup so latency
  accounting stays honest; the elided work (block reads, decode
  charges, ``record_lookups``) is the measured win.

Eviction is size-weighted LRU under ``byte_budget``; an entry larger
than ``max_entry_fraction`` of the budget is never admitted (a single
TIPSTER-scale list would otherwise flush the whole cache for one term).
"""

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError

#: Simulated cost of probing the term cache, charged by call sites on
#: every lookup (hit or miss).  Small against even one block read.
TERM_PROBE_MS = 0.002

#: Entry kinds, in the order the stack consults them (documentation).
KINDS = ("postings", "arrays", "stream", "blocks")


@dataclass
class TermCacheStats:
    """Counters over the cache's lifetime (reset only with the cache)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_oversize: int = 0
    invalidated_terms: int = 0
    bytes: int = 0       # currently resident payload bytes
    peak_bytes: int = 0  # high-water mark of ``bytes``

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected_oversize": self.rejected_oversize,
            "invalidated_terms": self.invalidated_terms,
            "bytes": self.bytes,
            "peak_bytes": self.peak_bytes,
        }


@dataclass
class _Entry:
    payload: object
    nbytes: int
    dead: frozenset
    fingerprint: Optional[tuple]
    epoch: int


class TermCache:
    """Size-weighted LRU of decoded postings for one shard replica."""

    def __init__(
        self,
        byte_budget: int,
        shard: int = 0,
        max_entry_fraction: float = 0.25,
        record_trace: bool = False,
    ):
        if byte_budget < 1:
            raise ConfigError("term cache byte_budget must be at least 1")
        if not 0.0 < max_entry_fraction <= 1.0:
            raise ConfigError("max_entry_fraction must be in (0, 1]")
        self.byte_budget = byte_budget
        self.shard = shard
        self.max_entry_bytes = max(1, int(byte_budget * max_entry_fraction))
        #: per-lookup probe charge; engines read it off the attached
        #: cache so :mod:`repro.inquery` never imports the serve layer.
        self.probe_ms = TERM_PROBE_MS
        self.epoch = 0
        self.stats = TermCacheStats()
        self._entries: "OrderedDict[Tuple[str, object], _Entry]" = OrderedDict()
        #: deterministic (op, kind, term) event log for the bench gate;
        #: off by default — it grows without bound.
        self.trace: Optional[List[Tuple[str, str, str]]] = (
            [] if record_trace else None
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Probe without touching recency or statistics."""
        return key in self._entries

    # -- lookups ---------------------------------------------------------------

    def get(self, kind: str, term, fingerprint: Optional[tuple] = None):
        """The entry for ``(kind, term)`` (freshened to MRU), or ``None``.

        A stored fingerprint that no longer matches the caller's view of
        the record's physical layout (compaction re-split the chunks)
        drops the entry and reports a miss — the caller re-reads and
        re-caches, exactly as if the entry had been evicted.
        """
        self.stats.lookups += 1
        key = (kind, term)
        entry = self._entries.get(key)
        if entry is not None and entry.fingerprint != fingerprint:
            self._drop(key)
            entry = None
        if entry is None:
            self.stats.misses += 1
            if self.trace is not None:
                self.trace.append(("miss", kind, str(term)))
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.trace is not None:
            self.trace.append(("hit", kind, str(term)))
        return entry

    def put(
        self,
        kind: str,
        term,
        payload,
        nbytes: int,
        dead: Iterable[int] = (),
        fingerprint: Optional[tuple] = None,
    ) -> bool:
        """Admit a decoded payload; returns whether it was cached.

        ``dead`` is the index's tombstone set at decode time (the
        snapshot hits filter through, unioned with the then-current
        set).  ``nbytes`` is the payload's resident charge — the
        encoded record size, which both bounds the decoded arrays and
        is exactly the footprint the elided fetch would have made
        resident.
        """
        nbytes = max(1, int(nbytes))
        if nbytes > self.max_entry_bytes:
            self.stats.rejected_oversize += 1
            return False
        key = (kind, term)
        if key in self._entries:
            self._drop(key)
        self._entries[key] = _Entry(
            payload=payload,
            nbytes=nbytes,
            dead=frozenset(dead),
            fingerprint=fingerprint,
            epoch=self.epoch,
        )
        self.stats.bytes += nbytes
        self.stats.insertions += 1
        if self.trace is not None:
            self.trace.append(("put", kind, str(term)))
        while self.stats.bytes > self.byte_budget and len(self._entries) > 1:
            victim = next(iter(self._entries))
            self._drop(victim)
            self.stats.evictions += 1
            if self.trace is not None:
                self.trace.append(("evict", victim[0], str(victim[1])))
        if self.stats.bytes > self.byte_budget:
            # Sole survivor still over budget (budget < max_entry_bytes
            # only when max_entry_fraction == 1): evict it too.
            self._drop(key)
            self.stats.evictions += 1
            if self.trace is not None:
                self.trace.append(("evict", kind, str(term)))
            return False
        self.stats.peak_bytes = max(self.stats.peak_bytes, self.stats.bytes)
        return True

    def _drop(self, key) -> None:
        entry = self._entries.pop(key)
        self.stats.bytes -= entry.nbytes

    # -- index lifecycle hooks -------------------------------------------------

    def note_epoch(self, epoch: int) -> None:
        """Stamp subsequently inserted entries with the published epoch."""
        self.epoch = epoch

    def invalidate_terms(self, terms: Iterable) -> int:
        """Drop every entry (all kinds) for each mutated term.

        Called once per ingest batch with the owning shard's mutated
        terms; returns how many entries were dropped.
        """
        wanted = set(terms)
        if not wanted:
            return 0
        victims = [key for key in self._entries if key[1] in wanted]
        for key in victims:
            self._drop(key)
            if self.trace is not None:
                self.trace.append(("invalidate", key[0], str(key[1])))
        self.stats.invalidated_terms += len(victims)
        return len(victims)

    def fold_tombstones(self, dead: Iterable[int]) -> None:
        """Compaction folded ``dead`` out of the records: remember them.

        Cached payloads decoded *before* the fold still contain those
        documents; merging the folded set into every entry's snapshot
        keeps post-compaction hits filtering them, with zero entries
        dropped — compaction stays invalidation-free.
        """
        folded = frozenset(dead)
        if not folded:
            return
        for entry in self._entries.values():
            entry.dead = entry.dead | folded

    def clear(self) -> None:
        self._entries.clear()
        self.stats.bytes = 0


def merge_stats(caches: Iterable[Optional[TermCache]]) -> TermCacheStats:
    """Summed counters across a fleet of caches (absent caches skipped)."""
    total = TermCacheStats()
    for cache in caches:
        if cache is None:
            continue
        stats = cache.stats
        total.lookups += stats.lookups
        total.hits += stats.hits
        total.misses += stats.misses
        total.insertions += stats.insertions
        total.evictions += stats.evictions
        total.rejected_oversize += stats.rejected_oversize
        total.invalidated_terms += stats.invalidated_terms
        total.bytes += stats.bytes
        total.peak_bytes += stats.peak_bytes
    return total
