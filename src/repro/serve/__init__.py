"""The serving layer: a concurrent batch query service with a result cache.

The paper's caching argument is made at the *record* level: query
streams repeat terms, so keeping decoded inverted-list records resident
pays (Figure 2, the ``mneme-cache`` configuration).  Real traffic
repeats at the *query* level too — this package lifts the same insight
one layer up.  :class:`~repro.serve.service.QueryService` fronts a
single-disk engine or a :class:`~repro.shard.system.ShardedIRSystem`
with:

* an admission queue and simulated worker pool that groups requests
  into **waves**, so the shard scheduler's per-phase barriers and the
  term-at-a-time df exchange are amortized across a batch
  (:meth:`~repro.shard.scheduler.ShardScheduler.run_wave`);
* a **normalized-query result cache**
  (:class:`~repro.serve.cache.ResultCache`): a size-bounded LRU keyed
  by the canonical query tree (parse → stop → stem → render), with an
  invalidation epoch bumped on rebuild/compaction.  Hits are
  bit-identical to cold evaluation; degraded results
  (``completeness < 1``) are never admitted;
* a **decoded-term cache** (:class:`~repro.serve.termcache.TermCache`),
  the middle tier between the block LRU buffers and the result cache: a
  byte-budgeted per-replica cache of decoded postings that answers the
  hot-term repeats the paper's record-caching experiment measured,
  eliding the SimDisk reads *and* the v-byte decode while keeping
  rankings bit-identical (``term_cache_bytes`` on the service, the
  scheduler, or the benches; off by default).

Overload is a first-class state rather than an accident: a bounded
admission queue (``queue_limit``), per-request deadlines expired at
wave formation, and two priority classes (``interactive`` beats
``batch``) make shedding deterministic and accounted — see
:mod:`repro.serve.service` for the model and
:class:`~repro.serve.metrics.ServiceMetrics` for the per-class ledger.

Traffic comes from :mod:`repro.synth.traffic`; the regression gates are
:mod:`repro.bench.serve` (light load) and :mod:`repro.bench.saturate`
(past capacity).
"""

from .cache import CacheStats, ResultCache, clone_result
from .metrics import ClassMetrics, ServiceMetrics
from .service import (
    CACHE_PROBE_MS,
    QueryService,
    ServedRequest,
    ServiceReport,
    ServiceStats,
    ShedRequest,
)
from .termcache import TERM_PROBE_MS, TermCache, TermCacheStats, merge_stats

__all__ = [
    "CACHE_PROBE_MS",
    "CacheStats",
    "ClassMetrics",
    "QueryService",
    "ResultCache",
    "ServedRequest",
    "ServiceMetrics",
    "ServiceReport",
    "ServiceStats",
    "ShedRequest",
    "TERM_PROBE_MS",
    "TermCache",
    "TermCacheStats",
    "clone_result",
    "merge_stats",
]
