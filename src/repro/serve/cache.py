"""The normalized-query result cache: a size-bounded LRU with epochs.

Entries are keyed by the canonical query form
(:func:`~repro.inquery.normalize.canonical_query_key` plus the
engine/top-k discriminator the service prepends), so two differently
spelled queries that provably evaluate identically share one entry.

Three rules keep cached serving inside the bit-identity contract:

* **Admission** — only complete results enter.  A degraded result
  (``completeness < 1``) reflects whatever faults were active when it
  was computed; replaying it after the faults clear would serve stale
  damage, so it is evaluated fresh every time and counted in
  ``rejected_degraded``.
* **Isolation** — entries are deep-copied on the way in and on the way
  out.  A caller mutating a served ranking can never corrupt the
  cached copy, and two hits never alias each other.
* **Epochs** — the service bumps :meth:`ResultCache.invalidate` when
  the index changes underneath it (incremental add/remove, rebuild,
  compaction).  The bump clears the table *and* advances the epoch
  stamped into every entry; a lookup that ever finds an entry from an
  older epoch raises
  :class:`~repro.errors.CacheInconsistencyError` — serving it silently
  could rank against an index state that no longer exists.
"""

import copy
import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import CacheInconsistencyError, ConfigError
from ..inquery.engine import QueryResult


def _frozen_copy(value):
    """Isolated copy of the shapes a result actually carries.

    Results are dataclasses of scalars, strings, and (possibly nested)
    lists/tuples/dicts of the same — no cycles, no exotic objects — so
    a structural recursion over exactly those shapes gives the same
    isolation ``copy.deepcopy`` did without its memo table and
    per-object dispatch (the cache probes this on every hit and put, a
    measured hot path).  Scalars and strings are immutable and shared.
    """
    if isinstance(value, list):
        return [_frozen_copy(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_frozen_copy(item) for item in value)
    if isinstance(value, dict):
        return {key: _frozen_copy(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return set(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _clone_dataclass(value)
    return value


def _clone_dataclass(obj):
    duplicate = copy.copy(obj)
    for spec in dataclasses.fields(obj):
        setattr(duplicate, spec.name, _frozen_copy(getattr(obj, spec.name)))
    return duplicate


def clone_result(result: QueryResult, query_text: Optional[str] = None) -> QueryResult:
    """An isolated copy of a result, optionally re-labelled.

    ``copy.copy`` + per-field copies keep the runtime class, so a
    cached :class:`~repro.inquery.daat.DAATResult` or
    :class:`~repro.shard.merge.ShardedQueryResult` keeps its extra
    fields — a hit is indistinguishable from the evaluation that
    produced the entry, except for the ``query`` text echoing the
    *requesting* spelling rather than the first spelling cached.
    """
    duplicate = _clone_dataclass(result)
    if query_text is not None and query_text != duplicate.query:
        duplicate.query = query_text
    return duplicate


@dataclass
class CacheStats:
    """Counters over the cache's lifetime (reset only with the cache)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_degraded: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected_degraded": self.rejected_degraded,
            "invalidations": self.invalidations,
        }


class ResultCache:
    """Size-bounded LRU over canonical query keys, epoch-invalidated."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ConfigError("result cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[int, QueryResult]]" = OrderedDict()
        self._epoch = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Probe without touching recency or statistics."""
        return key in self._entries

    @property
    def epoch(self) -> int:
        return self._epoch

    def keys(self):
        """Keys from least to most recently used (eviction order)."""
        return list(self._entries)

    def get(self, key: str, query_text: Optional[str] = None) -> Optional[QueryResult]:
        """The cached result for ``key`` (freshened to MRU), or ``None``.

        ``query_text`` re-labels the returned copy with the requesting
        query's own spelling.
        """
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        epoch, result = entry
        if epoch != self._epoch:
            raise CacheInconsistencyError(
                key=key,
                reason=f"entry epoch {epoch} survived into epoch {self._epoch}",
            )
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return clone_result(result, query_text)

    def put(self, key: str, result: QueryResult) -> bool:
        """Admit a result; returns whether it was cached.

        Degraded (incomplete) results are refused — see the module
        docstring.  Inserting an existing key refreshes its entry and
        recency.
        """
        if result.degraded or result.completeness < 1.0:
            self.stats.rejected_degraded += 1
            return False
        self._entries[key] = (self._epoch, clone_result(result))
        self._entries.move_to_end(key)
        self.stats.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    def invalidate(self, reason: str = "") -> int:
        """Index changed: advance the epoch and drop every entry.

        Returns how many entries were dropped.  ``reason`` is
        documentation for the caller's logs; the cache itself only
        needs the bump.
        """
        del reason
        self._epoch += 1
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += 1
        return dropped
