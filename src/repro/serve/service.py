"""The concurrent batch query service.

:class:`QueryService` is the front door of the serving stack: requests
arrive with timestamps (from :mod:`repro.synth.traffic` or callers),
queue for admission, and are served in **waves** by a pool of simulated
workers with a cross-query result cache in front of the backend.

Time model
----------
Everything is measured on the repo's *simulated* clocks, like every
other benchmark here (the Python threads of the shard scheduler give
real concurrency for I/O-free simulated machines, but real-thread
timing would measure the interpreter, not the modelled system).  A
request's life:

1. It waits in the admission queue until the service is free — the
   service forms a wave of up to ``max_batch`` requests that have
   arrived by ``now``, ordered by the stable key
   ``(priority, arrival, seq)`` (interactive beats batch; ties break
   on arrival time, then stream position), so the schedule is a pure
   function of the request trace.
2. Each wave query is normalized to its canonical key
   (:func:`~repro.inquery.normalize.canonical_query_key`; parse charge
   ``cpu_ms_per_query_node`` × nodes, plus :data:`CACHE_PROBE_MS` for
   the probe) and looked up.  Hits complete immediately.  Distinct
   missing keys are evaluated once per wave — a duplicate inside the
   wave shares the evaluation ("shared").
3. Misses are assigned to ``workers`` simulated workers
   longest-processing-time first (deterministic ties by wave order):
   each evaluation's cost is its measured simulated duration — the
   engine's clock delta on a single-disk backend, the per-query
   critical-path share from
   :meth:`~repro.shard.scheduler.ShardScheduler.run_wave` on a sharded
   one (so a sharded wave pays its two barriers once, not per query).
4. The wave ends when its slowest worker finishes; the next wave is
   admitted then (a barrier, matching the scheduler's semantics).

Overload control
----------------
Under sustained open-loop load above capacity an unbounded FIFO queue
"serves" every request with unbounded latency; overload is instead a
first-class, accounted state:

* **Bounded admission** (``queue_limit``): a request that arrives
  while ``queue_limit`` requests are already waiting is rejected at
  its arrival time — a :class:`~repro.errors.RequestSheddedError`
  verdict (reason ``"queue-full"``) recorded in the report's shed
  ledger.  ``queue_limit=0`` keeps the historical unbounded queue.
* **Deadline expiry**: requests may carry an absolute
  ``deadline_ms``; at every wave formation, waiting requests whose
  deadline has passed are expired with a
  :class:`~repro.errors.DeadlineExceededError` verdict instead of
  being served uselessly late.  Expiry is checked at *dequeue* time
  (lazy, like a real server popping its run queue) — an admitted
  request therefore always starts by its deadline, which is what
  bounds admitted queueing delay.
* **Priority classes**: wave formation orders by
  ``(priority rank, arrival, seq)`` — ``interactive`` ahead of
  ``batch`` — so under saturation batch work yields capacity first.

Shed requests never reach normalization, evaluation, or the result
cache — they cannot populate or touch cached state — and they are
never silently dropped: every one appears in
:attr:`ServiceReport.shed` and the per-class
:class:`~repro.serve.metrics.ServiceMetrics`.

Correctness
-----------
Every served result — hit, miss, or shared — is bit-identical to a
cold evaluation of its own query text; the gates in
:mod:`repro.bench.serve` and :mod:`repro.bench.saturate` verify this
against a fresh single-disk engine for every admitted request of every
traffic run.  Degraded results are served (never raised) but never
cached, and :meth:`QueryService.invalidate_cache` must be called when
the index mutates (the incremental-update paths are the canonical
callers).
"""

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.metrics import cold_start
from ..core.prepared import IRSystem
from ..core.stats import latency_summary, max_over_mean
from ..errors import (
    ConfigError,
    DeadlineExceededError,
    RequestSheddedError,
    ServiceUnavailableError,
    ShardUnavailableError,
)
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K, QueryResult, RetrievalEngine
from ..inquery.normalize import normalize_tree, render_canonical
from ..inquery.query import count_nodes, parse_query
from ..shard.system import ShardedIRSystem
from ..synth.traffic import PRIORITY_RANK, ClosedLoopTraffic, TimedRequest
from .cache import CacheStats, ResultCache, clone_result
from .termcache import TermCache, TermCacheStats, merge_stats

#: Simulated cost of one cache probe (hash the canonical key, compare).
CACHE_PROBE_MS = 0.05


@dataclass
class ServedRequest:
    """One request's audited life through the service."""

    text: str
    arrival_ms: float
    start_ms: float        #: when its wave was admitted
    completion_ms: float
    outcome: str           #: "hit" | "miss" | "shared"
    result: QueryResult
    priority: str = "interactive"
    deadline_ms: Optional[float] = None

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms


@dataclass
class ShedRequest:
    """One request refused by admission control — accounted, not served.

    ``reason`` is ``"queue-full"`` (bounded queue at capacity when the
    request arrived) or ``"deadline"`` (expired at wave formation);
    ``error`` names the matching exception class, the taxonomy callers
    of :meth:`as_error` receive.
    """

    text: str
    priority: str
    arrival_ms: float
    shed_ms: float        #: service time at which the verdict was pronounced
    reason: str           #: "queue-full" | "deadline"
    deadline_ms: Optional[float] = None

    @property
    def error(self) -> str:
        return (
            "DeadlineExceededError" if self.reason == "deadline"
            else "RequestSheddedError"
        )

    def as_error(self) -> RequestSheddedError:
        """The verdict as its exception (what :meth:`serve_one` raises)."""
        if self.reason == "deadline":
            return DeadlineExceededError(
                query=self.text, priority=self.priority,
                deadline_ms=self.deadline_ms or 0.0, now_ms=self.shed_ms,
            )
        return RequestSheddedError(
            reason=self.reason, query=self.text, priority=self.priority
        )


@dataclass
class ServiceStats:
    """What the service did, across every request it ever processed."""

    requests: int = 0
    waves: int = 0
    evaluated: int = 0        #: backend evaluations actually run
    cache_hits: int = 0
    shared_in_wave: int = 0   #: duplicates that rode another's evaluation
    degraded_served: int = 0
    busy_ms: float = 0.0      #: summed evaluation cost (machine time)
    barriers: int = 0         #: shard-scheduler barriers paid
    admitted: int = 0         #: requests that made it into a wave
    shed_queue_full: int = 0  #: rejected at arrival, bounded queue full
    shed_deadline: int = 0    #: expired at wave formation
    failovers: int = 0        #: replica failovers absorbed while serving
    rebalances: int = 0       #: live topology cutovers (shard splits)
    ingests: int = 0          #: mutation batches applied and published
    compactions: int = 0      #: tombstone fold-out + store compaction passes
    #: Decoded-term cache counters, merged over every per-replica cache
    #: this service ever owned (zeros when term caching is off).
    term_cache_hits: int = 0
    term_cache_misses: int = 0
    term_cache_evictions: int = 0
    term_cache_bytes: int = 0
    term_cache_peak_bytes: int = 0
    term_cache_invalidated: int = 0
    #: Simulated busy milliseconds per shard, summed over every wave
    #: (sharded backends only) — the scheduler's ledger surfaced here.
    shard_busy_ms: Dict[int, float] = field(default_factory=dict)
    #: Same ledger keyed by ``(shard, replica)`` — failed attempts stay
    #: on the replica that burned them (replicated backends only).
    replica_busy_ms: Dict[Tuple[int, int], float] = field(default_factory=dict)

    @property
    def shard_skew(self) -> float:
        """Max-over-mean shard busy time: 1.0 is a perfectly even load."""
        return max_over_mean(self.shard_busy_ms.values())


@dataclass
class ServiceReport:
    """One traffic run's outcome, ready for latency shaping."""

    name: str
    served: List[ServedRequest]
    workers: int
    max_batch: int
    cache_stats: Optional[CacheStats] = None
    waves: int = 0
    shed: List[ShedRequest] = field(default_factory=list)
    queue_limit: int = 0

    def latencies_ms(self) -> List[float]:
        return [row.latency_ms for row in self.served]

    @property
    def offered(self) -> int:
        """Everything the trace presented: served plus shed."""
        return len(self.served) + len(self.shed)

    @property
    def shed_fraction(self) -> float:
        offered = self.offered
        return len(self.shed) / offered if offered else 0.0

    @property
    def makespan_ms(self) -> float:
        """First arrival to last completion on the service clock."""
        if not self.served:
            return 0.0
        start = min(row.arrival_ms for row in self.served)
        end = max(row.completion_ms for row in self.served)
        return end - start

    @property
    def throughput_qps(self) -> float:
        span = self.makespan_ms
        return len(self.served) / span * 1000.0 if span > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        if not self.served:
            return 0.0
        hits = sum(1 for row in self.served if row.outcome == "hit")
        return hits / len(self.served)

    def summary(self) -> dict:
        digest = latency_summary(self.latencies_ms())
        digest = {k: round(v, 4) for k, v in digest.items()}
        digest.update(
            requests=len(self.served),
            waves=self.waves,
            throughput_qps=round(self.throughput_qps, 2),
            hit_rate=round(self.hit_rate, 4),
            outcomes={
                outcome: sum(1 for r in self.served if r.outcome == outcome)
                for outcome in ("hit", "miss", "shared")
            },
        )
        if self.shed:
            digest["shed"] = {
                "queue_full": sum(
                    1 for r in self.shed if r.reason == "queue-full"
                ),
                "deadline": sum(
                    1 for r in self.shed if r.reason == "deadline"
                ),
                "fraction": round(self.shed_fraction, 4),
            }
        return digest


def _priority_rank(priority: str) -> int:
    rank = PRIORITY_RANK.get(priority)
    if rank is None:
        raise ConfigError(
            f"unknown priority class {priority!r} "
            f"(expected one of {sorted(PRIORITY_RANK)})"
        )
    return rank


class QueryService:
    """Wave-batched, cached query serving over one backend.

    ``backend`` is a single-disk :class:`~repro.core.prepared.IRSystem`
    or a :class:`~repro.shard.system.ShardedIRSystem`; ``engine``
    selects term-at-a-time (any query shape) or document-at-a-time
    (flat ``#sum``/``#wsum``).  ``workers`` is the simulated
    query-evaluation parallelism (independent of the shard fan-out
    inside one evaluation); ``max_batch`` caps a wave.  Pass
    ``use_cache=False`` for an honest no-cache baseline (also disables
    in-wave sharing), or supply a prebuilt ``cache`` to share one
    across services.

    ``queue_limit`` bounds the admission queue (0 = unbounded, the
    historical behavior); see the module docstring for the shedding
    and priority semantics.

    ``prune`` (document-at-a-time only) turns on dynamic top-k pruning
    in the backend engines.  Pruned results are bit-identical to
    exhaustive ones, so the cache key deliberately does *not*
    discriminate on it — a pruned service can share a cache with an
    exhaustive one.
    """

    def __init__(
        self,
        backend: Union[IRSystem, ShardedIRSystem],
        engine: str = "taat",
        top_k: int = DEFAULT_TOP_K,
        workers: int = 1,
        max_batch: int = 8,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
        cache_size: int = 512,
        cold: bool = True,
        prune: str = "off",
        queue_limit: int = 0,
        term_cache_bytes: int = 0,
    ):
        if engine not in ("taat", "daat"):
            raise ConfigError(f"unknown service engine {engine!r}")
        if prune != "off" and engine != "daat":
            raise ConfigError(
                "dynamic pruning requires the document-at-a-time engine"
            )
        if workers < 1:
            raise ConfigError("service needs at least one worker")
        if max_batch < 1:
            raise ConfigError("max_batch must be at least 1")
        if queue_limit < 0:
            raise ConfigError("queue_limit must be non-negative (0 = unbounded)")
        self.backend = backend
        self.engine = engine
        self.top_k = top_k
        self.prune = prune
        self.workers = workers
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self.sharded = isinstance(backend, ShardedIRSystem)
        if cold:
            # Serve from the paper's cold state: caches purged, clocks
            # zeroed — otherwise build-time buffer residency would leak
            # into the first requests' latencies (and shield a faulted
            # disk from ever being read).
            if self.sharded:
                # Every replica, not just primaries: a failover must not
                # land on a machine still warm from the build.
                for group in backend.replica_groups:
                    for machine in group:
                        cold_start(machine)
                backend.clock.reset()
            else:
                cold_start(backend)
        if term_cache_bytes < 0:
            raise ConfigError("term_cache_bytes must be non-negative (0 = off)")
        self.term_cache_bytes = term_cache_bytes
        #: Counters of caches retired by rebalance (their replacements
        #: start cold, but lifetime stats must not go backwards).
        self._retired_term_stats = TermCacheStats()
        if self.sharded:
            self._scheduler = backend.scheduler(
                top_k=top_k, engine=engine, prune=prune,
                term_cache_bytes=term_cache_bytes,
            )
            index = backend.shards[0].index
        elif engine == "daat":
            self._engine = DocumentAtATimeEngine(
                backend.index,
                top_k=top_k,
                use_reservation=backend.config.use_reservation,
                use_fastpath=backend.config.use_fastpath,
                prune=prune,
            )
            index = backend.index
        else:
            self._engine = RetrievalEngine(
                backend.index,
                top_k=top_k,
                use_reservation=backend.config.use_reservation,
                use_fastpath=backend.config.use_fastpath,
            )
            index = backend.index
        if not self.sharded and term_cache_bytes > 0:
            self._engine.term_cache = TermCache(term_cache_bytes, shard=0)
        # Normalization must match the backend's: same stop list, same
        # stemmer (every shard shares the global preparation, so shard
        # 0's index speaks for all of them).
        self._stopwords = index.stopwords
        self._stem_fn = index.stem_fn
        self._cost = backend.clock.cost
        self.cache = (
            cache
            if cache is not None
            else (ResultCache(cache_size) if use_cache else None)
        )
        self.stats = ServiceStats()
        self._open = True

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop admitting requests; subsequent serving raises."""
        self._open = False

    def _check_open(self) -> None:
        if not self._open:
            raise ServiceUnavailableError("service has been shut down")

    def invalidate_cache(self, reason: str = "") -> int:
        """The index changed: bump the cache epoch, dropping all entries."""
        if self.cache is None:
            return 0
        return self.cache.invalidate(reason)

    # -- the decoded-term cache fleet --------------------------------------

    def term_caches(self) -> List[TermCache]:
        """Every live per-replica decoded-term cache (empty when off)."""
        if self.term_cache_bytes <= 0:
            return []
        if self.sharded:
            return [cache for _s, _r, cache in self._scheduler.term_caches()]
        cache = getattr(self._engine, "term_cache", None)
        return [cache] if cache is not None else []

    def term_cache_stats(self) -> TermCacheStats:
        """Lifetime counters: live caches plus rebalance-retired ones."""
        merged = merge_stats(self.term_caches())
        retired = self._retired_term_stats
        merged.lookups += retired.lookups
        merged.hits += retired.hits
        merged.misses += retired.misses
        merged.insertions += retired.insertions
        merged.evictions += retired.evictions
        merged.rejected_oversize += retired.rejected_oversize
        merged.invalidated_terms += retired.invalidated_terms
        return merged

    def _sync_term_stats(self) -> None:
        if self.term_cache_bytes <= 0:
            return
        merged = self.term_cache_stats()
        self.stats.term_cache_hits = merged.hits
        self.stats.term_cache_misses = merged.misses
        self.stats.term_cache_evictions = merged.evictions
        self.stats.term_cache_bytes = merged.bytes
        self.stats.term_cache_peak_bytes = merged.peak_bytes
        self.stats.term_cache_invalidated = merged.invalidated_terms

    def rebalance(self, factor: int = 2):
        """Split every shard into ``factor`` children, live.

        Called between waves (the natural cutover boundary: nothing is
        in flight).  The streaming copy reads from surviving replicas on
        the simulated clock, the child platters are byte-identical to a
        stop-the-world rebuild at the new shard count, and the result
        cache epoch is bumped so no pre-split entry can ever be served
        post-split — even though results are identical by construction,
        a cached row must never outlive the topology that produced it.
        Returns the :class:`~repro.shard.rebalance.SplitReport`.
        """
        self._check_open()
        if not self.sharded:
            raise ConfigError("rebalance requires a sharded backend")
        from ..shard.rebalance import split_shards

        # Retire the term caches with the topology that filled them:
        # post-split records live on different machines with different
        # storage keys, so the replacements start cold by design.
        self._retired_term_stats = self.term_cache_stats()
        report = split_shards(self.backend, factor=factor)
        # The old scheduler is epoch-stale by design; build a fresh one
        # against the new topology.
        self._scheduler = self.backend.scheduler(
            top_k=self.top_k, engine=self.engine, prune=self.prune,
            term_cache_bytes=self.term_cache_bytes,
        )
        self.invalidate_cache("rebalance-cutover")
        self.stats.rebalances += 1
        self._sync_term_stats()
        return report

    @property
    def ingest_pipeline(self):
        """The lazily-built :class:`~repro.live.IngestPipeline` over this
        service's backend.  One pipeline per service: the epoch manager
        must see every mutation batch, or its per-epoch live-document
        snapshots stop matching the index."""
        pipeline = getattr(self, "_ingest_pipeline", None)
        if pipeline is None:
            from ..live import IngestPipeline

            pipeline = IngestPipeline(self.backend)
            self._ingest_pipeline = pipeline
        return pipeline

    def ingest(self, adds: Sequence = (), deletes: Sequence = ()):
        """Apply one mutation batch between waves and publish its epoch.

        Adds and deletes route through the incremental-update paths
        (sharded backends route each mutation to the owning shard's
        replica group), the batch publishes a new index epoch sealed by
        a WAL epoch-commit marker, and the result cache epoch is bumped
        exactly once — a request admitted before this call saw the old
        corpus exactly, one admitted after sees the new corpus exactly.
        Returns the :class:`~repro.live.IngestReport`.
        """
        self._check_open()
        report = self.ingest_pipeline.apply(adds=adds, deletes=deletes)
        self.invalidate_cache(f"ingest-epoch-{report.epoch}")
        # Term caches are surgical where the result cache is wholesale:
        # only the owning shard's mutated terms drop (deletes are
        # tombstones — the post-fetch filter handles them, nothing to
        # invalidate).
        for cache in self.term_caches():
            terms = report.mutated_terms.get(cache.shard, ())
            if terms:
                cache.invalidate_terms(terms)
            cache.note_epoch(report.epoch)
        self.stats.ingests += 1
        self._sync_term_stats()
        return report

    def compact(self):
        """Fold tombstones out and compact every machine's Mneme file.

        Runs concurrently with query traffic on the simulated clocks.
        Rankings are invariant under compaction — the decode-time
        tombstone filter already hid the dead documents — so the cache
        is deliberately *not* invalidated: every cached row is still
        bit-identical to a cold evaluation.  Returns the
        :class:`~repro.live.CompactionSummary`.
        """
        self._check_open()
        # Snapshot the tombstones compaction is about to fold: cached
        # payloads decoded before the fold still contain those documents
        # and must keep filtering them after the index's own set empties.
        folded: Dict[int, set] = {}
        if self.term_caches():
            if self.sharded:
                for shard_id, group in enumerate(self.backend.replica_groups):
                    folded[shard_id] = set(group[0].index.tombstones)
            else:
                folded[0] = set(self.backend.index.tombstones)
        summary = self.ingest_pipeline.compact()
        for cache in self.term_caches():
            dead = folded.get(cache.shard)
            if dead:
                cache.fold_tombstones(dead)
        self.stats.compactions += 1
        self._sync_term_stats()
        return summary

    # -- normalization -----------------------------------------------------

    def key_of(self, text: str) -> str:
        """The cache key: engine/top-k discriminator + canonical tree."""
        key, _overhead = self._normalize(text)
        return key

    def _normalize(self, text: str) -> Tuple[str, float]:
        tree = parse_query(text)
        overhead = (
            self._cost.cpu_ms_per_query_node * count_nodes(tree) + CACHE_PROBE_MS
        )
        canonical = render_canonical(
            normalize_tree(tree, self._stopwords, self._stem_fn)
        )
        return f"{self.engine}|k{self.top_k}|{canonical}", overhead

    # -- shedding ----------------------------------------------------------

    def _shed(self, request: TimedRequest, shed_ms: float, reason: str,
              ledger: List[ShedRequest]) -> None:
        """Pronounce one shed verdict: counted, ledgered, never silent."""
        if reason == "deadline":
            self.stats.shed_deadline += 1
        else:
            self.stats.shed_queue_full += 1
        ledger.append(ShedRequest(
            text=request.text,
            priority=request.priority,
            arrival_ms=request.arrival_ms,
            shed_ms=shed_ms,
            reason=reason,
            deadline_ms=request.deadline_ms,
        ))

    # -- serving -----------------------------------------------------------

    def serve_one(
        self,
        text: str,
        priority: str = "interactive",
        deadline_ms: Optional[float] = None,
    ) -> QueryResult:
        """Serve one query right now (a wave of one).

        ``deadline_ms`` is absolute on the service clock (the request
        arrives at t=0); a deadline already in the past raises
        :class:`~repro.errors.DeadlineExceededError` — the verdict a
        stream run records in its shed ledger instead.
        """
        self._check_open()
        _priority_rank(priority)
        if deadline_ms is not None and deadline_ms < 0.0:
            self.stats.shed_deadline += 1
            raise DeadlineExceededError(
                query=text, priority=priority,
                deadline_ms=deadline_ms, now_ms=0.0,
            )
        request = TimedRequest(
            text=text, arrival_ms=0.0, priority=priority, deadline_ms=deadline_ms
        )
        self.stats.admitted += 1
        rows, _wave_end = self._serve_wave([request], 0.0)
        return rows[0].result

    def process(
        self, requests: Sequence[TimedRequest], name: str = ""
    ) -> ServiceReport:
        """Serve an open-loop request stream to completion.

        The schedule — wave composition, shed set, every latency — is a
        pure function of the request trace and the service knobs: ties
        are broken by input position, expiry is checked on the
        simulated clock, and nothing samples randomness.
        """
        self._check_open()
        order = sorted(
            range(len(requests)), key=lambda i: (requests[i].arrival_ms, i)
        )
        for i in order:
            _priority_rank(requests[i].priority)
        served: List[ServedRequest] = []
        shed: List[ShedRequest] = []
        waiting: List[int] = []
        waves = 0
        now = 0.0
        cursor = 0
        while cursor < len(order) or waiting:
            if not waiting:
                now = max(now, requests[order[cursor]].arrival_ms)
            # Admission: arrivals up to `now`, each checked against the
            # bounded queue at its own arrival instant.
            while (
                cursor < len(order)
                and requests[order[cursor]].arrival_ms <= now
            ):
                i = order[cursor]
                cursor += 1
                if self.queue_limit and len(waiting) >= self.queue_limit:
                    self._shed(
                        requests[i], requests[i].arrival_ms, "queue-full", shed
                    )
                else:
                    waiting.append(i)
            # Wave formation: lazily expire what is already past its
            # deadline, then take the best (priority, arrival, seq)
            # prefix.
            still: List[int] = []
            for i in waiting:
                request = requests[i]
                if (
                    request.deadline_ms is not None
                    and request.deadline_ms < now
                ):
                    self._shed(request, now, "deadline", shed)
                else:
                    still.append(i)
            waiting = still
            if not waiting:
                continue
            waiting.sort(key=lambda i: (
                _priority_rank(requests[i].priority), requests[i].arrival_ms, i
            ))
            wave = [requests[i] for i in waiting[: self.max_batch]]
            waiting = waiting[self.max_batch:]
            self.stats.admitted += len(wave)
            rows, wave_end = self._serve_wave(wave, now)
            served.extend(rows)
            waves += 1
            now = max(now, wave_end)
        return ServiceReport(
            name=name,
            served=served,
            workers=self.workers,
            max_batch=self.max_batch,
            cache_stats=self.cache.stats if self.cache is not None else None,
            waves=waves,
            shed=shed,
            queue_limit=self.queue_limit,
        )

    def process_closed(self, traffic: ClosedLoopTraffic) -> ServiceReport:
        """Drive a closed-loop stream: completions pace the users.

        Deadlines and priorities apply exactly as in :meth:`process`; a
        user whose request expires re-thinks from the shed time (the
        client saw its deadline blow and re-issues later).  The queue
        bound is not applied — a closed loop's backlog is already
        bounded by ``concurrency``.
        """
        self._check_open()
        traffic.reset()
        ready: List[Tuple[float, int]] = [
            (traffic.first_arrival(user), user)
            for user in range(traffic.concurrency)
        ]
        heapq.heapify(ready)
        served: List[ServedRequest] = []
        shed: List[ShedRequest] = []
        #: Requests drawn but not yet admitted to a wave, with their user.
        waiting: List[Tuple[TimedRequest, int]] = []
        waves = 0
        now = 0.0
        while ready or waiting:
            if not waiting:
                now = max(now, ready[0][0])
            while ready and ready[0][0] <= now:
                arrival, user = heapq.heappop(ready)
                request = traffic.next_request(arrival)
                if request is None:
                    continue  # budget spent: retire this user
                waiting.append((request, user))
            still: List[Tuple[TimedRequest, int]] = []
            for request, user in waiting:
                if (
                    request.deadline_ms is not None
                    and request.deadline_ms < now
                ):
                    self._shed(request, now, "deadline", shed)
                    heapq.heappush(ready, (now + traffic.think(user), user))
                else:
                    still.append((request, user))
            waiting = still
            if not waiting:
                continue
            waiting.sort(key=lambda pair: (
                _priority_rank(pair[0].priority),
                pair[0].arrival_ms,
                pair[0].seq,
            ))
            wave_pairs = waiting[: self.max_batch]
            waiting = waiting[self.max_batch:]
            self.stats.admitted += len(wave_pairs)
            rows, wave_end = self._serve_wave(
                [pair[0] for pair in wave_pairs], now
            )
            served.extend(rows)
            waves += 1
            for row, (_request, user) in zip(rows, wave_pairs):
                heapq.heappush(
                    ready, (row.completion_ms + traffic.think(user), user)
                )
            now = max(now, wave_end)
        return ServiceReport(
            name=traffic.profile.name,
            served=served,
            workers=self.workers,
            max_batch=self.max_batch,
            cache_stats=self.cache.stats if self.cache is not None else None,
            waves=waves,
            shed=shed,
            queue_limit=self.queue_limit,
        )

    # -- one wave ----------------------------------------------------------

    def _serve_wave(
        self, wave: List[TimedRequest], start_ms: float
    ) -> Tuple[List[ServedRequest], float]:
        self.stats.waves += 1
        self.stats.requests += len(wave)
        plans = [(request,) + self._normalize(request.text) for request in wave]
        rows: List[Optional[ServedRequest]] = [None] * len(wave)
        first_of_key: Dict[str, int] = {}
        owner_of: Dict[int, int] = {}   # wave index -> evaluation owner index
        miss_order: List[int] = []      # owner indexes, in wave order
        for idx, (request, key, overhead) in enumerate(plans):
            cached = (
                self.cache.get(key, query_text=request.text)
                if self.cache is not None
                else None
            )
            if cached is not None:
                self.stats.cache_hits += 1
                rows[idx] = ServedRequest(
                    text=request.text,
                    arrival_ms=request.arrival_ms,
                    start_ms=start_ms,
                    completion_ms=start_ms + overhead,
                    outcome="hit",
                    result=cached,
                    priority=request.priority,
                    deadline_ms=request.deadline_ms,
                )
            elif self.cache is not None and key in first_of_key:
                # In-wave duplicate: ride the first occurrence's
                # evaluation.  (Cache off: no sharing — every request
                # is its own evaluation, the honest baseline.)
                owner_of[idx] = first_of_key[key]
                self.stats.shared_in_wave += 1
            else:
                if self.cache is not None:
                    first_of_key[key] = idx
                owner_of[idx] = idx
                miss_order.append(idx)
        evaluated = self._evaluate([plans[idx][0].text for idx in miss_order])
        result_of: Dict[int, Tuple[QueryResult, float]] = dict(
            zip(miss_order, evaluated)
        )
        for idx, (result, _cost_ms) in result_of.items():
            if result.degraded or result.completeness < 1.0:
                self.stats.degraded_served += 1
            if self.cache is not None:
                self.cache.put(plans[idx][1], result)
        # Longest-processing-time assignment onto the simulated workers;
        # ties broken by wave order, so the schedule is deterministic.
        finish_of: Dict[int, float] = {}
        worker_free = [start_ms] * self.workers
        for position in sorted(
            range(len(miss_order)), key=lambda p: (-evaluated[p][1], p)
        ):
            worker = min(range(self.workers), key=lambda w: (worker_free[w], w))
            worker_free[worker] += evaluated[position][1]
            finish_of[miss_order[position]] = worker_free[worker]
        for idx, (request, _key, overhead) in enumerate(plans):
            if rows[idx] is not None:
                continue
            owner = owner_of[idx]
            result, _cost = result_of[owner]
            if idx == owner:
                outcome, served_result = "miss", result
            else:
                outcome = "shared"
                served_result = clone_result(result, query_text=request.text)
            rows[idx] = ServedRequest(
                text=request.text,
                arrival_ms=request.arrival_ms,
                start_ms=start_ms,
                completion_ms=finish_of[owner] + overhead,
                outcome=outcome,
                result=served_result,
                priority=request.priority,
                deadline_ms=request.deadline_ms,
            )
        wave_end = max(row.completion_ms for row in rows) if rows else start_ms
        self._sync_term_stats()
        return rows, wave_end  # type: ignore[return-value]

    def _evaluate(self, texts: List[str]) -> List[Tuple[QueryResult, float]]:
        """Run the backend; each result with its simulated cost in ms."""
        if not texts:
            return []
        self.stats.evaluated += len(texts)
        if self.sharded:
            try:
                outcome = self._scheduler.run_wave(texts)
            except ShardUnavailableError as error:
                raise ServiceUnavailableError(
                    f"no live shards behind the service ({error.reason or error})"
                ) from error
            self.stats.barriers += outcome.stats.barriers
            self.stats.busy_ms += sum(outcome.per_query_ms)
            self.stats.failovers += len(outcome.stats.failovers)
            for shard_id, busy in sorted(outcome.stats.busy_ms.items()):
                self.stats.shard_busy_ms[shard_id] = (
                    self.stats.shard_busy_ms.get(shard_id, 0.0) + busy
                )
            for pair, busy in sorted(outcome.stats.replica_busy_ms.items()):
                self.stats.replica_busy_ms[pair] = (
                    self.stats.replica_busy_ms.get(pair, 0.0) + busy
                )
            return list(zip(outcome.results, outcome.per_query_ms))
        clock = self.backend.clock
        out: List[Tuple[QueryResult, float]] = []
        for text in texts:
            start = clock.snapshot()
            result = self._engine.run_query(text)
            delta = clock.since(start)
            self.stats.busy_ms += delta.wall_ms
            out.append((result, delta.wall_ms))
        return out
