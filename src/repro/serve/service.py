"""The concurrent batch query service.

:class:`QueryService` is the front door of the serving stack: requests
arrive with timestamps (from :mod:`repro.synth.traffic` or callers),
queue for admission, and are served in **waves** by a pool of simulated
workers with a cross-query result cache in front of the backend.

Time model
----------
Everything is measured on the repo's *simulated* clocks, like every
other benchmark here (the Python threads of the shard scheduler give
real concurrency for I/O-free simulated machines, but real-thread
timing would measure the interpreter, not the modelled system).  A
request's life:

1. It waits in the admission queue until the service is free — the
   service forms a wave of up to ``max_batch`` requests that have
   arrived by ``now``, FIFO.
2. Each wave query is normalized to its canonical key
   (:func:`~repro.inquery.normalize.canonical_query_key`; parse charge
   ``cpu_ms_per_query_node`` × nodes, plus :data:`CACHE_PROBE_MS` for
   the probe) and looked up.  Hits complete immediately.  Distinct
   missing keys are evaluated once per wave — a duplicate inside the
   wave shares the evaluation ("shared").
3. Misses are assigned to ``workers`` simulated workers
   longest-processing-time first (deterministic ties by wave order):
   each evaluation's cost is its measured simulated duration — the
   engine's clock delta on a single-disk backend, the per-query
   critical-path share from
   :meth:`~repro.shard.scheduler.ShardScheduler.run_wave` on a sharded
   one (so a sharded wave pays its two barriers once, not per query).
4. The wave ends when its slowest worker finishes; the next wave is
   admitted then (a barrier, matching the scheduler's semantics).

A request's latency is completion − arrival: queueing delay, the
normalization/probe overhead, and its service time.  With the cache
off the service also disables in-wave sharing, so the cache-off
baseline honestly evaluates every request.

Correctness
-----------
Every served result — hit, miss, or shared — is bit-identical to a
cold evaluation of its own query text; the gate in
:mod:`repro.bench.serve` verifies this against a fresh single-disk
engine for every request of every traffic run.  Degraded results are
served (never raised) but never cached, and
:meth:`QueryService.invalidate_cache` must be called when the index
mutates (the incremental-update paths are the canonical callers).
"""

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.metrics import cold_start
from ..core.prepared import IRSystem
from ..core.stats import latency_summary
from ..errors import ConfigError, ServiceUnavailableError, ShardUnavailableError
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K, QueryResult, RetrievalEngine
from ..inquery.normalize import normalize_tree, render_canonical
from ..inquery.query import count_nodes, parse_query
from ..shard.system import ShardedIRSystem
from ..synth.traffic import ClosedLoopTraffic, TimedRequest
from .cache import CacheStats, ResultCache, clone_result

#: Simulated cost of one cache probe (hash the canonical key, compare).
CACHE_PROBE_MS = 0.05


@dataclass
class ServedRequest:
    """One request's audited life through the service."""

    text: str
    arrival_ms: float
    start_ms: float        #: when its wave was admitted
    completion_ms: float
    outcome: str           #: "hit" | "miss" | "shared"
    result: QueryResult

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms


@dataclass
class ServiceStats:
    """What the service did, across every request it ever processed."""

    requests: int = 0
    waves: int = 0
    evaluated: int = 0        #: backend evaluations actually run
    cache_hits: int = 0
    shared_in_wave: int = 0   #: duplicates that rode another's evaluation
    degraded_served: int = 0
    busy_ms: float = 0.0      #: summed evaluation cost (machine time)
    barriers: int = 0         #: shard-scheduler barriers paid


@dataclass
class ServiceReport:
    """One traffic run's outcome, ready for latency shaping."""

    name: str
    served: List[ServedRequest]
    workers: int
    max_batch: int
    cache_stats: Optional[CacheStats] = None
    waves: int = 0

    def latencies_ms(self) -> List[float]:
        return [row.latency_ms for row in self.served]

    @property
    def makespan_ms(self) -> float:
        """First arrival to last completion on the service clock."""
        if not self.served:
            return 0.0
        start = min(row.arrival_ms for row in self.served)
        end = max(row.completion_ms for row in self.served)
        return end - start

    @property
    def throughput_qps(self) -> float:
        span = self.makespan_ms
        return len(self.served) / span * 1000.0 if span > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        if not self.served:
            return 0.0
        hits = sum(1 for row in self.served if row.outcome == "hit")
        return hits / len(self.served)

    def summary(self) -> dict:
        digest = latency_summary(self.latencies_ms())
        digest = {k: round(v, 4) for k, v in digest.items()}
        digest.update(
            requests=len(self.served),
            waves=self.waves,
            throughput_qps=round(self.throughput_qps, 2),
            hit_rate=round(self.hit_rate, 4),
            outcomes={
                outcome: sum(1 for r in self.served if r.outcome == outcome)
                for outcome in ("hit", "miss", "shared")
            },
        )
        return digest


class QueryService:
    """Wave-batched, cached query serving over one backend.

    ``backend`` is a single-disk :class:`~repro.core.prepared.IRSystem`
    or a :class:`~repro.shard.system.ShardedIRSystem`; ``engine``
    selects term-at-a-time (any query shape) or document-at-a-time
    (flat ``#sum``/``#wsum``).  ``workers`` is the simulated
    query-evaluation parallelism (independent of the shard fan-out
    inside one evaluation); ``max_batch`` caps a wave.  Pass
    ``use_cache=False`` for an honest no-cache baseline (also disables
    in-wave sharing), or supply a prebuilt ``cache`` to share one
    across services.

    ``prune`` (document-at-a-time only) turns on dynamic top-k pruning
    in the backend engines.  Pruned results are bit-identical to
    exhaustive ones, so the cache key deliberately does *not*
    discriminate on it — a pruned service can share a cache with an
    exhaustive one.
    """

    def __init__(
        self,
        backend: Union[IRSystem, ShardedIRSystem],
        engine: str = "taat",
        top_k: int = DEFAULT_TOP_K,
        workers: int = 1,
        max_batch: int = 8,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
        cache_size: int = 512,
        cold: bool = True,
        prune: str = "off",
    ):
        if engine not in ("taat", "daat"):
            raise ConfigError(f"unknown service engine {engine!r}")
        if prune != "off" and engine != "daat":
            raise ConfigError(
                "dynamic pruning requires the document-at-a-time engine"
            )
        if workers < 1:
            raise ConfigError("service needs at least one worker")
        if max_batch < 1:
            raise ConfigError("max_batch must be at least 1")
        self.backend = backend
        self.engine = engine
        self.top_k = top_k
        self.prune = prune
        self.workers = workers
        self.max_batch = max_batch
        self.sharded = isinstance(backend, ShardedIRSystem)
        if cold:
            # Serve from the paper's cold state: caches purged, clocks
            # zeroed — otherwise build-time buffer residency would leak
            # into the first requests' latencies (and shield a faulted
            # disk from ever being read).
            if self.sharded:
                for shard in backend.shards:
                    cold_start(shard)
                backend.clock.reset()
            else:
                cold_start(backend)
        if self.sharded:
            self._scheduler = backend.scheduler(
                top_k=top_k, engine=engine, prune=prune
            )
            index = backend.shards[0].index
        elif engine == "daat":
            self._engine = DocumentAtATimeEngine(
                backend.index,
                top_k=top_k,
                use_reservation=backend.config.use_reservation,
                use_fastpath=backend.config.use_fastpath,
                prune=prune,
            )
            index = backend.index
        else:
            self._engine = RetrievalEngine(
                backend.index,
                top_k=top_k,
                use_reservation=backend.config.use_reservation,
                use_fastpath=backend.config.use_fastpath,
            )
            index = backend.index
        # Normalization must match the backend's: same stop list, same
        # stemmer (every shard shares the global preparation, so shard
        # 0's index speaks for all of them).
        self._stopwords = index.stopwords
        self._stem_fn = index.stem_fn
        self._cost = backend.clock.cost
        self.cache = (
            cache
            if cache is not None
            else (ResultCache(cache_size) if use_cache else None)
        )
        self.stats = ServiceStats()
        self._open = True

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop admitting requests; subsequent serving raises."""
        self._open = False

    def _check_open(self) -> None:
        if not self._open:
            raise ServiceUnavailableError("service has been shut down")

    def invalidate_cache(self, reason: str = "") -> int:
        """The index changed: bump the cache epoch, dropping all entries."""
        if self.cache is None:
            return 0
        return self.cache.invalidate(reason)

    # -- normalization -----------------------------------------------------

    def key_of(self, text: str) -> str:
        """The cache key: engine/top-k discriminator + canonical tree."""
        key, _overhead = self._normalize(text)
        return key

    def _normalize(self, text: str) -> Tuple[str, float]:
        tree = parse_query(text)
        overhead = (
            self._cost.cpu_ms_per_query_node * count_nodes(tree) + CACHE_PROBE_MS
        )
        canonical = render_canonical(
            normalize_tree(tree, self._stopwords, self._stem_fn)
        )
        return f"{self.engine}|k{self.top_k}|{canonical}", overhead

    # -- serving -----------------------------------------------------------

    def serve_one(self, text: str) -> QueryResult:
        """Serve one query right now (a wave of one)."""
        self._check_open()
        rows, _wave_end = self._serve_wave(
            [TimedRequest(text=text, arrival_ms=0.0)], 0.0
        )
        return rows[0].result

    def process(
        self, requests: Sequence[TimedRequest], name: str = ""
    ) -> ServiceReport:
        """Serve an open-loop request stream to completion."""
        self._check_open()
        pending = sorted(requests, key=lambda r: (r.arrival_ms,))
        served: List[ServedRequest] = []
        waves = 0
        now = 0.0
        cursor = 0
        while cursor < len(pending):
            now = max(now, pending[cursor].arrival_ms)
            wave: List[TimedRequest] = []
            while (
                cursor < len(pending)
                and pending[cursor].arrival_ms <= now
                and len(wave) < self.max_batch
            ):
                wave.append(pending[cursor])
                cursor += 1
            rows, wave_end = self._serve_wave(wave, now)
            served.extend(rows)
            waves += 1
            now = max(now, wave_end)
        return ServiceReport(
            name=name,
            served=served,
            workers=self.workers,
            max_batch=self.max_batch,
            cache_stats=self.cache.stats if self.cache is not None else None,
            waves=waves,
        )

    def process_closed(self, traffic: ClosedLoopTraffic) -> ServiceReport:
        """Drive a closed-loop stream: completions pace the users."""
        self._check_open()
        traffic.reset()
        ready: List[Tuple[float, int]] = [
            (traffic.first_arrival(user), user)
            for user in range(traffic.concurrency)
        ]
        heapq.heapify(ready)
        served: List[ServedRequest] = []
        waves = 0
        now = 0.0
        while ready:
            now = max(now, ready[0][0])
            wave: List[TimedRequest] = []
            users: List[int] = []
            while ready and ready[0][0] <= now and len(wave) < self.max_batch:
                arrival, user = heapq.heappop(ready)
                text = traffic.next_text()
                if text is None:
                    continue  # budget spent: retire this user
                wave.append(TimedRequest(text=text, arrival_ms=arrival))
                users.append(user)
            if not wave:
                continue
            rows, wave_end = self._serve_wave(wave, now)
            served.extend(rows)
            waves += 1
            for row, user in zip(rows, users):
                heapq.heappush(
                    ready, (row.completion_ms + traffic.think(user), user)
                )
            now = max(now, wave_end)
        return ServiceReport(
            name=traffic.profile.name,
            served=served,
            workers=self.workers,
            max_batch=self.max_batch,
            cache_stats=self.cache.stats if self.cache is not None else None,
            waves=waves,
        )

    # -- one wave ----------------------------------------------------------

    def _serve_wave(
        self, wave: List[TimedRequest], start_ms: float
    ) -> Tuple[List[ServedRequest], float]:
        self.stats.waves += 1
        self.stats.requests += len(wave)
        plans = [(request,) + self._normalize(request.text) for request in wave]
        rows: List[Optional[ServedRequest]] = [None] * len(wave)
        first_of_key: Dict[str, int] = {}
        owner_of: Dict[int, int] = {}   # wave index -> evaluation owner index
        miss_order: List[int] = []      # owner indexes, in wave order
        for idx, (request, key, overhead) in enumerate(plans):
            cached = (
                self.cache.get(key, query_text=request.text)
                if self.cache is not None
                else None
            )
            if cached is not None:
                self.stats.cache_hits += 1
                rows[idx] = ServedRequest(
                    text=request.text,
                    arrival_ms=request.arrival_ms,
                    start_ms=start_ms,
                    completion_ms=start_ms + overhead,
                    outcome="hit",
                    result=cached,
                )
            elif self.cache is not None and key in first_of_key:
                # In-wave duplicate: ride the first occurrence's
                # evaluation.  (Cache off: no sharing — every request
                # is its own evaluation, the honest baseline.)
                owner_of[idx] = first_of_key[key]
                self.stats.shared_in_wave += 1
            else:
                if self.cache is not None:
                    first_of_key[key] = idx
                owner_of[idx] = idx
                miss_order.append(idx)
        evaluated = self._evaluate([plans[idx][0].text for idx in miss_order])
        result_of: Dict[int, Tuple[QueryResult, float]] = dict(
            zip(miss_order, evaluated)
        )
        for idx, (result, _cost_ms) in result_of.items():
            if result.degraded or result.completeness < 1.0:
                self.stats.degraded_served += 1
            if self.cache is not None:
                self.cache.put(plans[idx][1], result)
        # Longest-processing-time assignment onto the simulated workers;
        # ties broken by wave order, so the schedule is deterministic.
        finish_of: Dict[int, float] = {}
        worker_free = [start_ms] * self.workers
        for position in sorted(
            range(len(miss_order)), key=lambda p: (-evaluated[p][1], p)
        ):
            worker = min(range(self.workers), key=lambda w: (worker_free[w], w))
            worker_free[worker] += evaluated[position][1]
            finish_of[miss_order[position]] = worker_free[worker]
        for idx, (request, _key, overhead) in enumerate(plans):
            if rows[idx] is not None:
                continue
            owner = owner_of[idx]
            result, _cost = result_of[owner]
            if idx == owner:
                outcome, served_result = "miss", result
            else:
                outcome = "shared"
                served_result = clone_result(result, query_text=request.text)
            rows[idx] = ServedRequest(
                text=request.text,
                arrival_ms=request.arrival_ms,
                start_ms=start_ms,
                completion_ms=finish_of[owner] + overhead,
                outcome=outcome,
                result=served_result,
            )
        wave_end = max(row.completion_ms for row in rows) if rows else start_ms
        return rows, wave_end  # type: ignore[return-value]

    def _evaluate(self, texts: List[str]) -> List[Tuple[QueryResult, float]]:
        """Run the backend; each result with its simulated cost in ms."""
        if not texts:
            return []
        self.stats.evaluated += len(texts)
        if self.sharded:
            try:
                outcome = self._scheduler.run_wave(texts)
            except ShardUnavailableError as error:
                raise ServiceUnavailableError(
                    f"no live shards behind the service ({error.reason or error})"
                ) from error
            self.stats.barriers += outcome.stats.barriers
            self.stats.busy_ms += sum(outcome.per_query_ms)
            return list(zip(outcome.results, outcome.per_query_ms))
        clock = self.backend.clock
        out: List[Tuple[QueryResult, float]] = []
        for text in texts:
            start = clock.snapshot()
            result = self._engine.run_query(text)
            delta = clock.since(start)
            self.stats.busy_ms += delta.wall_ms
            out.append((result, delta.wall_ms))
        return out
