"""Row builders for Tables 1-6 of the paper."""

from typing import List, Sequence, Tuple

from ..core import improvement, table2_buffer_sizes
from .runner import DISPLAY_NAMES, PROFILE_ORDER, SET_NUMBERS, BenchRunner

Rows = Tuple[Sequence[str], List[Sequence[object]]]

#: Approximate bytes of raw text per synthetic token (term + separator),
#: used to report a "collection size" comparable to Table 1's.
BYTES_PER_TOKEN = 6


def table1_collections(runner: BenchRunner) -> Rows:
    """Table 1: document collection statistics and index file sizes."""
    headers = (
        "Collection", "Documents", "Size (KB)",
        "Records", "B-Tree Size (KB)", "Mneme Size (KB)",
    )
    rows = []
    for profile in PROFILE_ORDER:
        prepared = runner.workload(profile).prepared
        systems = runner.systems(profile)
        rows.append((
            DISPLAY_NAMES[profile],
            len(prepared.collection),
            prepared.collection.total_tokens * BYTES_PER_TOKEN // 1024,
            prepared.record_count,
            systems["btree"].index.store.file_size // 1024,
            systems["mneme-cache"].index.store.file_size // 1024,
        ))
    return headers, rows


def table2_buffers(runner: BenchRunner) -> Rows:
    """Table 2: Mneme buffer sizes derived by the paper's heuristics."""
    headers = ("Collection", "Small (KB)", "Medium (KB)", "Large (KB)")
    rows = []
    for profile in PROFILE_ORDER:
        prepared = runner.workload(profile).prepared
        sizes = table2_buffer_sizes(prepared.largest_record)
        rows.append((
            DISPLAY_NAMES[profile],
            round(sizes.small / 1024, 1),
            round(sizes.medium / 1024, 1),
            round(sizes.large / 1024, 1),
        ))
    return headers, rows


def _time_rows(runner: BenchRunner, attribute: str) -> Rows:
    headers = (
        "Collection", "Query Set", "B-Tree",
        "Mneme, No Cache", "Mneme, Cache", "Improvement",
    )
    rows = []
    for profile in PROFILE_ORDER:
        grid = runner.grid(profile)
        for set_name, cells in grid.cells.items():
            btree = getattr(cells["btree"], attribute)
            nocache = getattr(cells["mneme-nocache"], attribute)
            cache = getattr(cells["mneme-cache"], attribute)
            rows.append((
                DISPLAY_NAMES[profile],
                SET_NUMBERS.get(set_name, set_name),
                round(btree, 2),
                round(nocache, 2),
                round(cache, 2),
                f"{improvement(btree, cache):.0%}",
            ))
    return headers, rows


def table3_wall_clock(runner: BenchRunner) -> Rows:
    """Table 3: wall-clock seconds per query set and configuration."""
    return _time_rows(runner, "wall_s")


def table4_system_io(runner: BenchRunner) -> Rows:
    """Table 4: system CPU plus I/O wait seconds."""
    return _time_rows(runner, "system_io_s")


def table5_io_stats(runner: BenchRunner) -> Rows:
    """Table 5: I = disk block inputs, A = accesses/lookup, B = KB read."""
    headers = (
        "Collection", "Set",
        "I b-tree", "A b-tree", "B b-tree",
        "I no-cache", "A no-cache", "B no-cache",
        "I cache", "A cache", "B cache",
    )
    rows = []
    for profile in PROFILE_ORDER:
        grid = runner.grid(profile)
        for set_name, cells in grid.cells.items():
            row = [DISPLAY_NAMES[profile], SET_NUMBERS.get(set_name, set_name)]
            for config in ("btree", "mneme-nocache", "mneme-cache"):
                metrics = cells[config]
                row.extend((
                    metrics.io_inputs,
                    round(metrics.accesses_per_lookup, 2),
                    round(metrics.kbytes_from_file),
                ))
            rows.append(tuple(row))
    return headers, rows


def table6_hit_rates(runner: BenchRunner) -> Rows:
    """Table 6: per-pool buffer references, hits, and hit rates."""
    headers = (
        "Collection", "Set",
        "Small refs", "Small hits", "Small rate",
        "Medium refs", "Medium hits", "Medium rate",
        "Large refs", "Large hits", "Large rate",
    )
    rows = []
    for profile in PROFILE_ORDER:
        grid = runner.grid(profile)
        for set_name, cells in grid.cells.items():
            stats = cells["mneme-cache"].buffer_stats
            row = [DISPLAY_NAMES[profile], SET_NUMBERS.get(set_name, set_name)]
            for pool in ("small", "medium", "large"):
                pool_stats = stats[pool]
                row.extend((
                    pool_stats.refs,
                    pool_stats.hits,
                    round(pool_stats.hit_rate, 2),
                ))
            rows.append(tuple(row))
    return headers, rows
