"""Series builders for Figures 1-3 of the paper."""

import math
from typing import Dict, List, Sequence, Tuple

from ..core import PreparedCollection, cold_start, table2_buffer_sizes
from ..inquery import BufferSizes, RetrievalEngine
from ..synth import QuerySet
from .runner import BenchRunner


def figure1_size_distribution(
    prepared: PreparedCollection, points: int = 40
) -> Tuple[List[float], Dict[str, List[float]]]:
    """Figure 1: cumulative distribution of inverted list record sizes.

    Returns log-spaced record sizes (x) with two cumulative-percentage
    series: fraction of records at or below each size, and fraction of
    total file bytes contributed by those records.
    """
    sizes = sorted(prepared.stats.record_sizes)
    total_records = len(sizes)
    total_bytes = sum(sizes)
    lo, hi = math.log10(max(sizes[0], 1)), math.log10(sizes[-1])
    xs = [10 ** (lo + (hi - lo) * i / (points - 1)) for i in range(points)]
    xs[-1] = float(sizes[-1])  # guard against float round-off at the top end
    pct_records: List[float] = []
    pct_bytes: List[float] = []
    cumulative_bytes = 0
    index = 0
    for x in xs:
        while index < total_records and sizes[index] <= x:
            cumulative_bytes += sizes[index]
            index += 1
        pct_records.append(100.0 * index / total_records)
        pct_bytes.append(100.0 * cumulative_bytes / total_bytes)
    return xs, {"% of Records": pct_records, "% of File Size": pct_bytes}


def figure2_term_use(
    prepared: PreparedCollection, query_set: QuerySet
) -> List[Tuple[int, int]]:
    """Figure 2: (record size, number of uses) per query-set term.

    Every appearance of a term in the query set counts as one use of its
    inverted list, exactly as the query processor would look it up.
    """
    uses: Dict[int, int] = {}
    for ranks in query_set.term_ranks:
        for rank in ranks:
            uses[rank] = uses.get(rank, 0) + 1
    points = [
        (prepared.record_size_of_rank(rank), count)
        for rank, count in uses.items()
        if prepared.record_size_of_rank(rank) > 0
    ]
    return sorted(points)


#: Large-buffer sizes for the Figure 3 sweep, as multiples of the
#: largest inverted list (the Table 2 heuristic sits at 3.0).  The top
#: of the range is large enough to reach the curve's plateau.
FIGURE3_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 18.0, 27.0)


def figure3_buffer_sweep(
    runner: BenchRunner,
    profile: str = "tipster-s",
    multipliers: Sequence[float] = FIGURE3_MULTIPLIERS,
) -> Tuple[List[float], List[float]]:
    """Figure 3: large-buffer hit rate as a function of buffer size.

    The small and medium buffers stay at their Table 2 sizes; only the
    large buffer varies.  Each point is a cold-started batch run of the
    collection's query set.
    """
    workload = runner.workload(profile)
    system = runner.systems(profile)["mneme-cache"]
    query_set = workload.query_sets[0]
    base = table2_buffer_sizes(workload.prepared.largest_record)
    sizes_bytes: List[float] = []
    hit_rates: List[float] = []
    store = system.index.store
    for multiplier in multipliers:
        large = int(multiplier * workload.prepared.largest_record)
        store.attach_buffers(
            BufferSizes(small=base.small, medium=base.medium, large=max(large, 1))
        )
        cold_start(system)
        before = store.buffer_stats()["large"].copy()
        engine = RetrievalEngine(system.index)
        engine.run_batch(query_set.queries)
        delta = store.buffer_stats()["large"] - before
        sizes_bytes.append(large)
        hit_rates.append(delta.hit_rate)
    # Restore the standard Table 2 buffers for later benchmark files.
    store.attach_buffers(base)
    return sizes_bytes, hit_rates
