"""Saturation gate: overload control measured past capacity.

Light-load averages say nothing about the regime the paper cares
about — sustained heavy traffic.  For each collection this gate offers
the serving layer an open-loop Poisson stream well above its capacity
and checks that overload is a *controlled*, deterministic state:

* **bounded p99** — admitted requests (the population the SLO is
  stated over) finish within an analytic bound: the worst class
  deadline budget (admitted requests start by their deadline — the
  expiry-at-dequeue invariant) plus one wave's worst-case service
  time;
* **deterministic shedding** — the shed fraction is nonzero at every
  worker count (the stream really is past capacity) and a second run
  with the same seed and knobs produces a byte-identical metrics dict,
  including the exact shed set;
* **bit-identity survives overload** — every *admitted* ranking still
  equals a cold single-disk evaluation of its own query text;
* **goodput monotone in workers** — admitted completions per second of
  makespan rises 1 → 2 → 4 workers (raw throughput is a property of
  the trace; goodput is the service's);
* **control beats no control** — with the same traffic and no
  admission control (unbounded queue, no deadlines), p99 explodes past
  the controlled p99, which is the whole argument for shedding.

All timing is simulated, so every number — and the shed set itself —
is a pure function of the seed and the knobs: the ``--check``
comparator gates shed-fraction *drift* exactly and p99 within a band.

Run it directly::

    PYTHONPATH=src python -m repro.bench.saturate             # write baseline
    PYTHONPATH=src python -m repro.bench.saturate --check     # gate a change

(or ``scripts/bench.sh saturate``).  Writes ``BENCH_saturate.json``;
exit status 0 on pass, 1 on violation or regression, 2 on operator
error (missing/unreadable baseline).
"""

import argparse
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import config_by_name
from ..core.metrics import cold_start
from ..core.prepared import materialize, prepare_collection
from ..inquery.engine import DEFAULT_TOP_K, RetrievalEngine
from ..serve import QueryService, ServiceMetrics
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from ..synth.traffic import TrafficProfile, open_loop_requests
from .runner import PROFILE_ORDER
from .wallclock import _query_profiles

DEFAULT_CONFIG = "mneme-cache"
DEFAULT_SHARDS = 2
DEFAULT_REQUESTS = 120
DEFAULT_WORKER_SWEEP = (1, 2, 4)
DEFAULT_MAX_BATCH = 8
#: Allowed fractional p99 increase over the baseline in ``--check``.
DEFAULT_P99_BAND = 0.10
TRAFFIC_SEED = 41
#: Offered load as a multiple of the estimated 4-worker *single-disk*
#: capacity.  The sharded backend roughly halves per-query cost and the
#: wave batching amortizes barriers, so the factor is set well past the
#: naive 1.0 to keep every sweep point saturated — shedding never zero.
OVERLOAD_FACTOR = 6.0


def _reference(
    prepared, config, pool: Sequence[str]
) -> Tuple[Dict[str, list], float, float]:
    """Cold single-disk rankings per distinct query; mean and max cost."""
    system = materialize(prepared, config)
    cold_start(system)
    runner = RetrievalEngine(
        system.index,
        top_k=DEFAULT_TOP_K,
        use_reservation=config.use_reservation,
        use_fastpath=config.use_fastpath,
    )
    rankings: Dict[str, list] = {}
    costs: List[float] = []
    for text in dict.fromkeys(pool):
        start = system.clock.snapshot()
        rankings[text] = runner.run_query(text).ranking
        costs.append(system.clock.since(start).wall_ms)
    return rankings, sum(costs) / len(costs), max(costs)


def _check_invariance(report, reference, label: str, violations: List[str]):
    """Every admitted ranking must equal the cold reference, bit for bit."""
    bad = 0
    for row in report.served:
        if row.result.ranking != reference[row.text]:
            bad += 1
            if bad <= 3:
                violations.append(
                    f"{label}: admitted ranking for {row.text!r} "
                    f"({row.outcome}) differs from the cold single-disk "
                    "evaluation"
                )
    if bad > 3:
        violations.append(f"{label}: {bad} admitted rankings diverged in total")
    return bad


def _saturation_traffic(
    profile_name: str, n_requests: int, mean_cost: float, max_batch: int
) -> TrafficProfile:
    """The overload stream: past 4-worker capacity, both classes deadlined."""
    capacity_4w = 4 * 1000.0 / mean_cost  # queries/second, roughly
    return TrafficProfile(
        name=f"{profile_name}-saturate",
        mode="open",
        n_requests=n_requests,
        rate_qps=OVERLOAD_FACTOR * capacity_4w,
        repeat_rate=0.0,  # no repeats: the cache cannot absorb the load
        deadline_ms=1.0 * max_batch * mean_cost,
        batch_fraction=0.3,
        batch_deadline_ms=2.0 * max_batch * mean_cost,
        seed=TRAFFIC_SEED,
    )


def _metrics_json(report) -> str:
    """The canonical byte string the determinism check compares."""
    metrics = ServiceMetrics.from_report(report)
    return json.dumps(
        metrics.as_dict(shed_trace=report.shed), sort_keys=True
    )


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    n_requests: int = DEFAULT_REQUESTS,
    shards: int = DEFAULT_SHARDS,
    worker_sweep=DEFAULT_WORKER_SWEEP,
    max_batch: int = DEFAULT_MAX_BATCH,
) -> dict:
    """The full overload contract for one collection profile."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    prepared = prepare_collection(collection)
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in _query_profiles(profile_name)
    ]
    pool = [query for query_set in query_sets for query in query_set.queries]
    config = config_by_name(config_name)
    reference, mean_cost, max_cost = _reference(prepared, config, pool)

    traffic = _saturation_traffic(profile_name, n_requests, mean_cost, max_batch)
    requests = open_loop_requests(pool, traffic)
    # Deep enough that the deadline-expiry path triggers alongside the
    # queue bound (a shallow queue would shed everything at admission).
    queue_limit = 4 * max_batch

    def controlled_run(workers: int):
        backend = materialize(prepared, config, shards=shards)
        service = QueryService(
            backend, engine="taat", workers=workers, max_batch=max_batch,
            use_cache=False, queue_limit=queue_limit,
        )
        return service, service.process(requests, name=f"w{workers}")

    # -- the worker sweep, every point past saturation --------------------
    runs: Dict[str, dict] = {}
    bounds: Dict[str, float] = {}
    goodput: List[Tuple[int, float]] = []
    shard_skew = 0.0
    for workers in worker_sweep:
        service, report = controlled_run(workers)
        _check_invariance(report, reference, f"w{workers}", violations)
        metrics = ServiceMetrics.from_report(report)
        if metrics.shed_fraction <= 0.0:
            violations.append(
                f"w{workers}: shed fraction is zero — the stream did not "
                "saturate the service, so the gate is not testing overload"
            )
        # Admitted queueing delay is capped by the worst class budget
        # (expiry at dequeue), and one wave's service time is capped by
        # ceil(max_batch / workers) evaluations of the costliest query
        # (LPT packing), plus parse/probe overhead headroom.
        bound = (
            max(traffic.deadline_ms, traffic.batch_deadline_ms)
            + math.ceil(max_batch / workers) * 2.0 * max_cost
            + mean_cost + 5.0
        )
        bounds[str(workers)] = round(bound, 4)
        p99 = metrics.latency.get("p99_ms", 0.0)
        if p99 > bound:
            violations.append(
                f"w{workers}: admitted p99 {p99:.3f}ms exceeds the "
                f"deadline-derived bound {bound:.3f}ms"
            )
        goodput.append((workers, metrics.goodput_qps))
        shard_skew = max(shard_skew, service.stats.shard_skew)
        runs[str(workers)] = metrics.as_dict()
    for (w_before, g_before), (w_after, g_after) in zip(goodput, goodput[1:]):
        if g_after < g_before:
            violations.append(
                f"goodput fell from {g_before:.2f} q/s at {w_before} workers "
                f"to {g_after:.2f} q/s at {w_after}"
            )

    # -- same seed, same knobs: byte-identical metrics and shed set ------
    _service_a, report_a = controlled_run(2)
    _service_b, report_b = controlled_run(2)
    deterministic = _metrics_json(report_a) == _metrics_json(report_b)
    if not deterministic:
        violations.append(
            "determinism: two identical w=2 runs produced different "
            "metrics/shed traces"
        )

    # -- no control: the same traffic with an unbounded FIFO queue -------
    uncontrolled_traffic = TrafficProfile(
        name=f"{profile_name}-uncontrolled",
        mode="open",
        n_requests=n_requests,
        rate_qps=traffic.rate_qps,
        repeat_rate=traffic.repeat_rate,
        deadline_ms=0.0,
        batch_fraction=traffic.batch_fraction,
        batch_deadline_ms=0.0,
        seed=traffic.seed,
    )
    backend = materialize(prepared, config, shards=shards)
    service = QueryService(
        backend, engine="taat", workers=2, max_batch=max_batch, use_cache=False
    )
    uncontrolled = service.process(
        open_loop_requests(pool, uncontrolled_traffic), name="uncontrolled"
    )
    uncontrolled_metrics = ServiceMetrics.from_report(uncontrolled)
    controlled_p99 = runs["2"]["latency"].get("p99_ms", 0.0)
    uncontrolled_p99 = uncontrolled_metrics.latency.get("p99_ms", 0.0)
    if uncontrolled_p99 <= controlled_p99:
        violations.append(
            f"control: uncontrolled p99 {uncontrolled_p99:.3f}ms does not "
            f"exceed controlled p99 {controlled_p99:.3f}ms — admission "
            "control bought nothing on this stream"
        )

    return {
        "config": config_name,
        "shards": shards,
        "max_batch": max_batch,
        "queue_limit": queue_limit,
        "mean_service_ms": round(mean_cost, 4),
        "max_service_ms": round(max_cost, 4),
        "traffic": {
            "n_requests": n_requests,
            "rate_qps": round(traffic.rate_qps, 2),
            "repeat_rate": traffic.repeat_rate,
            "deadline_ms": round(traffic.deadline_ms, 4),
            "batch_fraction": traffic.batch_fraction,
            "batch_deadline_ms": round(traffic.batch_deadline_ms, 4),
            "seed": traffic.seed,
        },
        "p99_bound_ms": bounds,
        "workers": runs,
        "deterministic": deterministic,
        "shard_skew": round(shard_skew, 4),
        "uncontrolled": {
            "p99_ms": uncontrolled_p99,
            "max_ms": uncontrolled_metrics.latency.get("max_ms", 0.0),
            "throughput_qps": round(uncontrolled_metrics.goodput_qps, 2),
        },
        "violations": violations,
        "ok": not violations,
    }


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    n_requests: int = DEFAULT_REQUESTS,
    shards: int = DEFAULT_SHARDS,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "saturate",
        "description": (
            "Overload control on simulated time: open-loop traffic past "
            "capacity with a bounded admission queue, per-class deadlines "
            "(interactive beats batch), and deterministic shedding — "
            "admitted p99 within the deadline-derived bound, shed set "
            "byte-identical across same-seed runs, every admitted ranking "
            "bit-identical to a cold single-disk evaluation, goodput "
            "monotone in worker count, and p99 worse without control."
        ),
        "config": config_name,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(profile_name, config_name, n_requests, shards)
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def compare_reports(
    current: dict, baseline: dict, p99_band: float = DEFAULT_P99_BAND
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Shedding is a pure function of the seeded trace, so any
    shed-fraction drift at all is a behavior change and fails exactly;
    p99 of admitted requests may grow by at most ``p99_band`` (fraction
    of the baseline).  Missing profiles or worker points, and any
    violation recorded in the current run, fail outright.
    """
    failures: List[str] = []
    for profile_name, base_cell in baseline.get("profiles", {}).items():
        cell = current.get("profiles", {}).get(profile_name)
        if cell is None:
            failures.append(f"{profile_name}: missing from the current run")
            continue
        if not cell.get("ok", False):
            for violation in cell.get("violations", ["violations recorded"]):
                failures.append(f"{profile_name}: {violation}")
        for workers, base_run in base_cell.get("workers", {}).items():
            run = cell.get("workers", {}).get(workers)
            if run is None:
                failures.append(
                    f"{profile_name}/w{workers}: worker point missing "
                    "from the current run"
                )
                continue
            base_shed = base_run.get("shed_fraction", 0.0)
            shed = run.get("shed_fraction", 0.0)
            if shed != base_shed:
                failures.append(
                    f"{profile_name}/w{workers}: shed fraction drifted "
                    f"from {base_shed} to {shed} (shedding is deterministic; "
                    "any drift is a behavior change)"
                )
            base_p99 = base_run.get("latency", {}).get("p99_ms", 0.0)
            p99 = run.get("latency", {}).get("p99_ms", 0.0)
            ceiling = base_p99 * (1.0 + p99_band)
            if base_p99 > 0 and p99 > ceiling:
                failures.append(
                    f"{profile_name}/w{workers}: admitted p99 {p99:.3f}ms "
                    f"exceeds {ceiling:.3f}ms "
                    f"(baseline {base_p99:.3f}ms, band {p99_band:.2f})"
                )
    return failures


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        print(
            f"{name} ({cell['config']}, {cell['shards']} shards, "
            f"mean query {cell['mean_service_ms']:.2f}ms, "
            f"offered {cell['traffic']['rate_qps']:.0f} q/s):"
        )
        for workers, run in cell["workers"].items():
            latency = run["latency"]
            print(
                f"  w={workers}  admitted {run['admitted']:4d}/"
                f"{run['offered']:4d}  shed {run['shed_fraction']:6.2%} "
                f"(queue {run['shed_queue_full']}, deadline "
                f"{run['shed_deadline']})  p99 {latency.get('p99_ms', 0.0):9.3f}ms  "
                f"goodput {run['goodput_qps']:7.1f} q/s"
            )
        uncontrolled = cell["uncontrolled"]
        print(
            f"  uncontrolled (w=2, no queue bound, no deadlines)  "
            f"p99 {uncontrolled['p99_ms']:9.3f}ms"
        )
        print(
            f"  deterministic: {cell['deterministic']}  "
            f"shard skew {cell['shard_skew']:.2f}"
        )
        for violation in cell["violations"]:
            print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="requests in each saturation stream (default 120)",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="shard count behind the service (default 2)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default ./BENCH_saturate.json; "
        "not written in --check mode unless given explicitly)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of writing it; "
        "exit non-zero on drift or regression",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("BENCH_saturate.json"),
        help="baseline JSON to gate against (with --check)",
    )
    parser.add_argument(
        "--p99-band", type=float, default=DEFAULT_P99_BAND,
        help="allowed fractional p99 increase over baseline (with --check)",
    )
    args = parser.parse_args(argv)

    if args.check:
        # Fail fast with a one-line diagnosis — a missing or mangled
        # baseline is an operator error, not a traceback-worthy crash.
        try:
            baseline = json.loads(args.baseline.read_text())
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; run without --check first")
            return 2
        except OSError as error:
            print(
                f"cannot read baseline {args.baseline}: "
                f"{error.strerror or error}"
            )
            return 2
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(
                f"baseline {args.baseline} is not valid JSON ({error}); "
                "regenerate it by running without --check"
            )
            return 2
        if not isinstance(baseline, dict) or "profiles" not in baseline:
            print(
                f"baseline {args.baseline} is not a saturate report "
                "(no 'profiles' key); regenerate it by running without --check"
            )
            return 2
        report = run_benchmark(
            args.profiles, args.config, args.requests, args.shards, args.out
        )
        _print_report(report)
        failures = compare_reports(report, baseline, p99_band=args.p99_band)
        if failures:
            print("\nSATURATION GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            "\nsaturation gate passed (shed set unchanged; p99 within band)"
        )
        return 0

    out_path = args.out if args.out is not None else Path("BENCH_saturate.json")
    report = run_benchmark(
        args.profiles, args.config, args.requests, args.shards, out_path
    )
    _print_report(report)
    if not report["ok"]:
        print("\nSATURATION GATE FAILED")
        return 1
    print(
        "\nsaturation gate passed (bounded admitted p99; deterministic "
        "nonzero shedding; goodput monotone in workers)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
