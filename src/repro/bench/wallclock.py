"""Real wall-clock benchmark: fast-path kernels vs. pure Python.

Everything else in :mod:`repro.bench` reports *simulated* time — the
paper's tables.  This module times the reproduction itself: how many
real seconds the index build and the query runs take with the
vectorized kernels (:mod:`repro.fastpath`) against the pure-Python
reference path, while asserting the two paths are observationally
identical — same rankings, same simulated wall/user/IO totals, same
``I``/``A``/``B`` counters, same buffer hit statistics.  The fast path
may only change how long the experiment takes to run, never what it
measures.

Run it directly::

    PYTHONPATH=src python -m repro.bench.wallclock

which writes ``BENCH_wallclock.json`` at the repository root.
"""

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core.config import config_by_name
from ..core.metrics import RunMetrics, measure_run
from ..core.prepared import materialize, prepare_collection
from ..fastpath import state as _fastpath
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from .runner import PROFILE_ORDER

#: Default workload: the paper's Legal collection, both query sets.
DEFAULT_PROFILES = ("legal-s",)
DEFAULT_CONFIG = "mneme-cache"


@dataclass
class PathTimings:
    """Real seconds spent by one evaluation path on one profile."""

    build_s: float = 0.0
    query_s: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, RunMetrics] = field(default_factory=dict)

    @property
    def total_query_s(self) -> float:
        return sum(self.query_s.values())

    @property
    def end_to_end_s(self) -> float:
        return self.build_s + self.total_query_s


def _run_path(
    collection: SyntheticCollection,
    query_sets,
    config_name: str,
    fast: bool,
) -> PathTimings:
    """Time index build + query evaluation for one path.

    The global fast-path toggle gates every kernel dispatch (codec,
    bulk encode, recount), and the system config routes the engine, so
    flipping both switches the entire stack at once.
    """
    timings = PathTimings()
    previous = _fastpath.set_enabled(fast)
    try:
        config = config_by_name(config_name, use_fastpath=fast)
        start = time.perf_counter()
        prepared = prepare_collection(collection)
        system = materialize(prepared, config)
        timings.build_s = time.perf_counter() - start
        for query_set in query_sets:
            start = time.perf_counter()
            metrics = measure_run(
                system, query_set.queries, query_set_name=query_set.name
            )
            timings.query_s[query_set.name] = time.perf_counter() - start
            timings.metrics[query_set.name] = metrics
    finally:
        _fastpath.set_enabled(previous)
    return timings


def _identical(ref: RunMetrics, fast: RunMetrics) -> Dict[str, bool]:
    """The invariance contract, checked term by term."""
    rankings = all(
        a.ranking == b.ranking and a.terms_looked_up == b.terms_looked_up
        for a, b in zip(ref.results, fast.results)
    ) and len(ref.results) == len(fast.results)
    clock = (
        ref.wall_s == fast.wall_s
        and ref.user_s == fast.user_s
        and ref.system_io_s == fast.system_io_s
    )
    io = (
        ref.io_inputs == fast.io_inputs
        and ref.file_accesses == fast.file_accesses
        and ref.record_lookups == fast.record_lookups
        and ref.bytes_from_file == fast.bytes_from_file
    )
    buffers = set(ref.buffer_stats) == set(fast.buffer_stats) and all(
        (s.refs, s.hits) == (fast.buffer_stats[k].refs, fast.buffer_stats[k].hits)
        for k, s in ref.buffer_stats.items()
    )
    return {
        "rankings": rankings,
        "simulated_clock": clock,
        "io_counters": io,
        "buffer_stats": buffers,
    }


def _speedup(reference_s: float, fast_s: float) -> float:
    return reference_s / fast_s if fast_s > 0 else 0.0


def bench_profile(profile_name: str, config_name: str = DEFAULT_CONFIG) -> dict:
    """Benchmark one collection profile, both paths, all query sets."""
    profile = PROFILES[profile_name]
    collection = SyntheticCollection(profile)
    collection.flat_postings()  # synthesize outside the timed region
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in _query_profiles(profile_name)
    ]

    reference = _run_path(collection, query_sets, config_name, fast=False)
    fast = _run_path(collection, query_sets, config_name, fast=True)

    sets = {}
    invariant = True
    for query_set in query_sets:
        name = query_set.name
        checks = _identical(reference.metrics[name], fast.metrics[name])
        invariant = invariant and all(checks.values())
        sets[name] = {
            "queries": len(query_set.queries),
            "reference_s": round(reference.query_s[name], 4),
            "fastpath_s": round(fast.query_s[name], 4),
            "speedup": round(_speedup(reference.query_s[name], fast.query_s[name]), 2),
            "identical": checks,
        }
    return {
        "config": config_name,
        "build": {
            "reference_s": round(reference.build_s, 4),
            "fastpath_s": round(fast.build_s, 4),
            "speedup": round(_speedup(reference.build_s, fast.build_s), 2),
        },
        "query_sets": sets,
        "end_to_end": {
            "reference_s": round(reference.end_to_end_s, 4),
            "fastpath_s": round(fast.end_to_end_s, 4),
            "speedup": round(_speedup(reference.end_to_end_s, fast.end_to_end_s), 2),
        },
        "invariant": invariant,
    }


def _query_profiles(profile_name: str):
    from ..core.experiment import QUERY_SET_PROFILES

    return QUERY_SET_PROFILES.get(profile_name, [])


def run_benchmark(
    profiles: List[str] = list(DEFAULT_PROFILES),
    config_name: str = DEFAULT_CONFIG,
    out_path: Optional[Path] = None,
) -> dict:
    """Benchmark every requested profile and write the JSON report."""
    report = {
        "benchmark": "wallclock",
        "description": (
            "Real seconds for index build and query evaluation, "
            "pure-Python reference vs. vectorized fast path.  The two "
            "paths are asserted observationally identical (rankings, "
            "simulated clock, I/A/B, buffer hits)."
        ),
        "numpy": _fastpath.HAVE_NUMPY,
        "profiles": {},
    }
    for profile_name in profiles:
        report["profiles"][profile_name] = bench_profile(profile_name, config_name)
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default legal-s)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_wallclock.json"),
        help="output JSON path (default ./BENCH_wallclock.json)",
    )
    args = parser.parse_args(argv)
    profiles = args.profiles or list(DEFAULT_PROFILES)
    report = run_benchmark(profiles, args.config, args.out)
    for name, cell in report["profiles"].items():
        build, total = cell["build"], cell["end_to_end"]
        print(f"{name} ({cell['config']}):")
        print(
            f"  build   {build['reference_s']:8.3f}s -> "
            f"{build['fastpath_s']:8.3f}s  ({build['speedup']:.2f}x)"
        )
        for set_name, row in cell["query_sets"].items():
            ok = "identical" if all(row["identical"].values()) else "MISMATCH"
            print(
                f"  {set_name:<8}{row['reference_s']:8.3f}s -> "
                f"{row['fastpath_s']:8.3f}s  ({row['speedup']:.2f}x, {ok})"
            )
        print(
            f"  total   {total['reference_s']:8.3f}s -> "
            f"{total['fastpath_s']:8.3f}s  ({total['speedup']:.2f}x)"
        )
        if not cell["invariant"]:
            print("  INVARIANCE VIOLATION — fast path diverged from reference")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
