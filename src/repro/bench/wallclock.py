"""Real wall-clock regression gate: fast-path kernels vs. pure Python.

Everything else in :mod:`repro.bench` reports *simulated* time — the
paper's tables.  This module times the reproduction itself: how many
real seconds the index build, the term-at-a-time query runs, and the
document-at-a-time runs take with the vectorized kernels
(:mod:`repro.fastpath`) against the pure-Python reference path, while
asserting the two paths are observationally identical — same rankings,
same simulated wall/user/IO totals, same ``I``/``A``/``B`` counters,
same buffer hit statistics.  The fast path may only change how long the
experiment takes to run, never what it measures.

It doubles as a per-PR regression gate: every phase is timed over
repeated runs across all four paper collections, the medians and a
run-to-run noise bound are written to ``BENCH_wallclock.json``, and
``--check`` compares a fresh run against that committed baseline —
failing on any invariance violation or on a fast-path *speedup* that
drops out of the noise band.  Speedups (reference seconds over
fast-path seconds) are compared rather than absolute seconds so the
gate is meaningful across machines of different speeds.

Run it directly::

    PYTHONPATH=src python -m repro.bench.wallclock            # write baseline
    PYTHONPATH=src python -m repro.bench.wallclock --check    # gate a change

(or ``scripts/bench.sh wallclock`` / ``scripts/bench.sh --check``).
"""

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.config import config_by_name
from ..core.metrics import RunMetrics, cold_start, measure_run
from ..core.prepared import materialize, prepare_collection
from ..core.stats import median_of, relative_spread
from ..errors import QueryError
from ..fastpath import state as _fastpath
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.daat import _flatten as _daat_flatten
from ..inquery.engine import DEFAULT_TOP_K, RetrievalEngine
from ..inquery.query import parse_query, query_terms
from ..serve.termcache import TermCache
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from .runner import PROFILE_ORDER

#: Default workload: all four paper collections, every query set.
DEFAULT_PROFILES = tuple(PROFILE_ORDER)
DEFAULT_CONFIG = "mneme-cache"
#: Timing repetitions per path (median reported).
DEFAULT_REPEATS = 3
#: Speedups may drop by this fraction before the gate fails, noise aside.
DEFAULT_MIN_BAND = 0.35
#: The noise band is this multiple of the recorded run-to-run spread.
DEFAULT_NOISE_FACTOR = 3.0


@dataclass
class PathRun:
    """Real seconds and observables of one pass over one profile."""

    phase_s: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, RunMetrics] = field(default_factory=dict)
    #: Per query set: (rankings, peak_resident, documents_scored, clock).
    daat_obs: Dict[str, Tuple] = field(default_factory=dict)
    #: Per query set: pruned-vs-exhaustive observables on the linked build.
    prune_obs: Dict[str, dict] = field(default_factory=dict)
    #: Per query set: term-cache-on observables on a repeat-heavy stream.
    termcache_obs: Dict[str, dict] = field(default_factory=dict)

    @property
    def end_to_end_s(self) -> float:
        return sum(self.phase_s.values())


def _daat_queries(queries: List[str]) -> List[str]:
    """The flat #sum/#wsum subset document-at-a-time evaluates.

    Query sets with only structured queries (CACM's boolean/phrase
    styles) are flattened to ``#sum`` over their terms so every
    collection still exercises the document-at-a-time engine.
    """
    flat = []
    for query in queries:
        try:
            _daat_flatten(parse_query(query))
        except QueryError:
            continue
        flat.append(query)
    if flat:
        return flat
    derived = []
    for query in queries:
        terms = query_terms(parse_query(query))
        if terms:
            derived.append("#sum( " + " ".join(terms) + " )")
    return derived


def _run_path(
    collection: SyntheticCollection,
    query_sets,
    config_name: str,
    fast: bool,
) -> PathRun:
    """Time index build + query evaluation for one path.

    The global fast-path toggle gates every kernel dispatch (codec,
    bulk encode, recount), and the system config routes the engine, so
    flipping both switches the entire stack at once.
    """
    run = PathRun()
    previous = _fastpath.set_enabled(fast)
    try:
        config = config_by_name(config_name, use_fastpath=fast)
        start = time.perf_counter()
        prepared = prepare_collection(collection)
        system = materialize(prepared, config)
        run.phase_s["build"] = time.perf_counter() - start
        for query_set in query_sets:
            start = time.perf_counter()
            metrics = measure_run(
                system, query_set.queries, query_set_name=query_set.name
            )
            run.phase_s[f"query:{query_set.name}"] = time.perf_counter() - start
            run.metrics[query_set.name] = metrics
        # Decoded-term cache on a repeat-heavy stream (two passes over
        # the query set): rankings must match the cache-off metrics run
        # on both passes, and the cache counters and simulated clock
        # must agree between the reference and fast paths.
        for query_set in query_sets:
            stream = list(query_set.queries) * 2
            cold_start(system)
            engine = RetrievalEngine(
                system.index, top_k=DEFAULT_TOP_K,
                use_reservation=config.use_reservation,
                use_fastpath=fast,
            )
            cache = TermCache(1 << 22)
            engine.term_cache = cache
            clock_start = system.clock.snapshot()
            start = time.perf_counter()
            results = engine.run_batch(stream)
            run.phase_s[f"termcache:{query_set.name}"] = (
                time.perf_counter() - start
            )
            elapsed = system.clock.since(clock_start)
            run.termcache_obs[query_set.name] = {
                "rankings": [r.ranking for r in results],
                "cache_off": [
                    r.ranking for r in run.metrics[query_set.name].results
                ] * 2,
                "counters": (
                    cache.stats.hits, cache.stats.misses,
                    cache.stats.evictions, cache.stats.bytes,
                ),
                "clock": (elapsed.wall_ms, elapsed.user_ms, elapsed.system_io_ms),
            }
        for query_set in query_sets:
            flat = _daat_queries(query_set.queries)
            if not flat:
                continue
            cold_start(system)
            engine = DocumentAtATimeEngine(
                system.index, top_k=50, use_fastpath=fast
            )
            clock_start = system.clock.snapshot()
            start = time.perf_counter()
            results = engine.run_batch(flat)
            run.phase_s[f"daat:{query_set.name}"] = time.perf_counter() - start
            elapsed = system.clock.since(clock_start)
            run.daat_obs[query_set.name] = (
                [r.ranking for r in results],
                [r.peak_resident_bytes for r in results],
                [r.documents_scored for r in results],
                (elapsed.wall_ms, elapsed.user_ms, elapsed.system_io_ms),
            )
        # Dynamic pruning runs on the linked-record backend, where the
        # per-chunk max-tf sidecars make block skipping real.  The
        # exhaustive run on the same build is the invariance reference
        # and the denominator of the pruning speedup.
        linked = materialize(
            prepared, config_by_name("mneme-linked", use_fastpath=fast)
        )
        for query_set in query_sets:
            flat = _daat_queries(query_set.queries)
            if not flat:
                continue
            cold_start(linked)
            exhaustive = DocumentAtATimeEngine(
                linked.index, use_fastpath=fast
            )
            start = time.perf_counter()
            base_results = exhaustive.run_batch(flat)
            exhaustive_s = time.perf_counter() - start
            cold_start(linked)
            pruner = DocumentAtATimeEngine(
                linked.index, use_fastpath=fast, prune="auto"
            )
            clock_start = linked.clock.snapshot()
            start = time.perf_counter()
            results = pruner.run_batch(flat)
            run.phase_s[f"prune:{query_set.name}"] = time.perf_counter() - start
            elapsed = linked.clock.since(clock_start)
            run.prune_obs[query_set.name] = {
                "rankings": [r.ranking for r in results],
                "exhaustive_rankings": [r.ranking for r in base_results],
                "pruned": all(r.pruned for r in results),
                "exhaustive_s": exhaustive_s,
                "scored_exhaustive": sum(
                    r.documents_scored for r in base_results
                ),
                "counters": (
                    sum(r.documents_scored for r in results),
                    sum(r.documents_skipped for r in results),
                    sum(r.blocks_skipped for r in results),
                    sum(r.prune_threshold_updates for r in results),
                ),
                "clock": (elapsed.wall_ms, elapsed.user_ms, elapsed.system_io_ms),
            }
    finally:
        _fastpath.set_enabled(previous)
    return run


def _identical(ref: RunMetrics, fast: RunMetrics) -> Dict[str, bool]:
    """The invariance contract, checked term by term."""
    rankings = all(
        a.ranking == b.ranking and a.terms_looked_up == b.terms_looked_up
        for a, b in zip(ref.results, fast.results)
    ) and len(ref.results) == len(fast.results)
    clock = (
        ref.wall_s == fast.wall_s
        and ref.user_s == fast.user_s
        and ref.system_io_s == fast.system_io_s
    )
    io = (
        ref.io_inputs == fast.io_inputs
        and ref.file_accesses == fast.file_accesses
        and ref.record_lookups == fast.record_lookups
        and ref.bytes_from_file == fast.bytes_from_file
    )
    buffers = set(ref.buffer_stats) == set(fast.buffer_stats) and all(
        (s.refs, s.hits) == (fast.buffer_stats[k].refs, fast.buffer_stats[k].hits)
        for k, s in ref.buffer_stats.items()
    )
    return {
        "rankings": rankings,
        "simulated_clock": clock,
        "io_counters": io,
        "buffer_stats": buffers,
    }


def _daat_identical(ref_obs: Tuple, fast_obs: Tuple) -> Dict[str, bool]:
    ref_rank, ref_peak, ref_scored, ref_clock = ref_obs
    fast_rank, fast_peak, fast_scored, fast_clock = fast_obs
    return {
        "rankings": ref_rank == fast_rank,
        "observables": ref_peak == fast_peak and ref_scored == fast_scored,
        "simulated_clock": ref_clock == fast_clock,
    }


def _speedup(reference_s: float, fast_s: float) -> float:
    return reference_s / fast_s if fast_s > 0 else 0.0


#: Relative run-to-run spread: (max - min) / median.
_spread = relative_spread


def _phase_row(ref_times: List[float], fast_times: List[float]) -> dict:
    ref_med = median_of(ref_times)
    fast_med = median_of(fast_times)
    return {
        "reference_s": round(ref_med, 4),
        "fastpath_s": round(fast_med, 4),
        "speedup": round(_speedup(ref_med, fast_med), 2),
        "noise": round(max(_spread(ref_times), _spread(fast_times)), 3),
    }


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Benchmark one collection profile, both paths, all query sets."""
    profile = PROFILES[profile_name]
    collection = SyntheticCollection(profile)
    collection.flat_postings()  # synthesize outside the timed region
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in _query_profiles(profile_name)
    ]

    reference = [
        _run_path(collection, query_sets, config_name, fast=False)
        for _ in range(repeats)
    ]
    fast = [
        _run_path(collection, query_sets, config_name, fast=True)
        for _ in range(repeats)
    ]

    phases: Dict[str, dict] = {}
    invariant = True
    for phase in reference[0].phase_s:
        row = _phase_row(
            [run.phase_s[phase] for run in reference],
            [run.phase_s[phase] for run in fast],
        )
        if phase.startswith("query:"):
            set_name = phase.split(":", 1)[1]
            checks = _identical(
                reference[0].metrics[set_name], fast[0].metrics[set_name]
            )
            row["queries"] = reference[0].metrics[set_name].queries
            row["identical"] = checks
            invariant = invariant and all(checks.values())
        elif phase.startswith("termcache:"):
            set_name = phase.split(":", 1)[1]
            ref_obs = reference[0].termcache_obs[set_name]
            fast_obs = fast[0].termcache_obs[set_name]
            checks = {
                # The cache contract: cache-on rankings equal cache-off
                # on both passes of the stream, on both paths.
                "rankings_vs_cache_off": (
                    ref_obs["rankings"] == ref_obs["cache_off"]
                    and fast_obs["rankings"] == fast_obs["cache_off"]
                ),
                "rankings": ref_obs["rankings"] == fast_obs["rankings"],
                "cache_counters": ref_obs["counters"] == fast_obs["counters"],
                "simulated_clock": ref_obs["clock"] == fast_obs["clock"],
            }
            row["queries"] = len(ref_obs["rankings"])
            row["identical"] = checks
            invariant = invariant and all(checks.values())
            hits, misses, evictions, resident = fast_obs["counters"]
            row["termcache"] = {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "resident_bytes": resident,
            }
        elif phase.startswith("daat:"):
            set_name = phase.split(":", 1)[1]
            checks = _daat_identical(
                reference[0].daat_obs[set_name], fast[0].daat_obs[set_name]
            )
            row["queries"] = len(reference[0].daat_obs[set_name][0])
            row["identical"] = checks
            invariant = invariant and all(checks.values())
        elif phase.startswith("prune:"):
            set_name = phase.split(":", 1)[1]
            ref_obs = reference[0].prune_obs[set_name]
            fast_obs = fast[0].prune_obs[set_name]
            checks = {
                # The pruning contract: pruned top-k equals exhaustive
                # top-k, beliefs and tie order included, on both paths.
                "rankings_vs_exhaustive": (
                    ref_obs["rankings"] == ref_obs["exhaustive_rankings"]
                    and fast_obs["rankings"] == fast_obs["exhaustive_rankings"]
                ),
                "rankings": ref_obs["rankings"] == fast_obs["rankings"],
                "prune_counters": ref_obs["counters"] == fast_obs["counters"],
                "simulated_clock": ref_obs["clock"] == fast_obs["clock"],
            }
            row["queries"] = len(ref_obs["rankings"])
            row["identical"] = checks
            invariant = invariant and all(checks.values())
            pruned_med = median_of(
                [run.phase_s[phase] for run in fast]
            )
            exhaustive_med = median_of(
                [run.prune_obs[set_name]["exhaustive_s"] for run in fast]
            )
            scored, skipped, blocks, updates = fast_obs["counters"]
            row["pruning"] = {
                "pruned": fast_obs["pruned"],
                "exhaustive_s": round(exhaustive_med, 4),
                # Real-seconds win of pruning over exhaustive DAAT on
                # the same linked build, both on the fast path.
                "speedup_vs_exhaustive": round(
                    _speedup(exhaustive_med, pruned_med), 2
                ),
                "documents_scored_exhaustive": fast_obs["scored_exhaustive"],
                "documents_scored": scored,
                "documents_skipped": skipped,
                "blocks_skipped": blocks,
                "prune_threshold_updates": updates,
            }
        phases[phase] = row

    ref_total = [run.end_to_end_s for run in reference]
    fast_total = [run.end_to_end_s for run in fast]
    return {
        "config": config_name,
        "phases": phases,
        "end_to_end": _phase_row(ref_total, fast_total),
        "invariant": invariant,
    }


def _query_profiles(profile_name: str):
    from ..core.experiment import QUERY_SET_PROFILES

    return QUERY_SET_PROFILES.get(profile_name, [])


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    out_path: Optional[Path] = None,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Benchmark every requested profile and write the JSON report."""
    report = {
        "benchmark": "wallclock",
        "description": (
            "Real seconds for index build, term-at-a-time and "
            "document-at-a-time query evaluation, pure-Python reference "
            "vs. vectorized fast path.  Medians over repeated runs with "
            "a run-to-run noise bound; the two paths are asserted "
            "observationally identical (rankings, simulated clock, "
            "I/A/B, buffer hits).  The prune: phases additionally time "
            "dynamic top-k pruning against exhaustive document-at-a-time "
            "evaluation on the linked-record backend, asserting the "
            "pruned rankings bit-identical to exhaustive."
        ),
        "numpy": _fastpath.HAVE_NUMPY,
        "repeats": repeats,
        "profiles": {},
    }
    for profile_name in profiles or list(DEFAULT_PROFILES):
        report["profiles"][profile_name] = bench_profile(
            profile_name, config_name, repeats=repeats
        )
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def compare_reports(
    current: dict,
    baseline: dict,
    min_band: float = DEFAULT_MIN_BAND,
    noise_factor: float = DEFAULT_NOISE_FACTOR,
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    A phase regresses when its fast-path speedup falls below the
    baseline speedup by more than the noise band — ``max(min_band,
    noise_factor * (baseline noise + current noise))``, as a fraction.
    Any invariance violation or missing profile/phase is a failure
    outright.
    """
    failures: List[str] = []
    for profile_name, base_cell in baseline.get("profiles", {}).items():
        cell = current.get("profiles", {}).get(profile_name)
        if cell is None:
            failures.append(f"{profile_name}: missing from the current run")
            continue
        if not cell.get("invariant", False):
            failures.append(
                f"{profile_name}: fast path diverged from the reference"
            )
        for phase_name, base_row in base_cell.get("phases", {}).items():
            row = cell.get("phases", {}).get(phase_name)
            if row is None:
                failures.append(f"{profile_name}/{phase_name}: phase missing")
                continue
            identical = row.get("identical")
            if identical is not None and not all(identical.values()):
                broken = [k for k, ok in identical.items() if not ok]
                failures.append(
                    f"{profile_name}/{phase_name}: not identical ({', '.join(broken)})"
                )
            band = max(
                min_band,
                noise_factor
                * (base_row.get("noise", 0.0) + row.get("noise", 0.0)),
            )
            floor = base_row["speedup"] / (1.0 + band)
            if base_row["speedup"] > 0 and row["speedup"] < floor:
                failures.append(
                    f"{profile_name}/{phase_name}: speedup {row['speedup']:.2f}x "
                    f"fell below {floor:.2f}x "
                    f"(baseline {base_row['speedup']:.2f}x, band {band:.2f})"
                )
    return failures


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        total = cell["end_to_end"]
        print(f"{name} ({cell['config']}):")
        for phase_name, row in cell["phases"].items():
            ok = ""
            if "identical" in row:
                ok = (
                    ", identical"
                    if all(row["identical"].values())
                    else ", MISMATCH"
                )
            print(
                f"  {phase_name:<16}{row['reference_s']:8.3f}s -> "
                f"{row['fastpath_s']:8.3f}s  ({row['speedup']:.2f}x"
                f"{ok}, noise {row['noise']:.3f})"
            )
            pruning = row.get("pruning")
            if pruning:
                print(
                    f"  {'':<16}pruned {pruning['speedup_vs_exhaustive']:.2f}x "
                    f"vs exhaustive {pruning['exhaustive_s']:.3f}s; scored "
                    f"{pruning['documents_scored']}/"
                    f"{pruning['documents_scored_exhaustive']} docs, skipped "
                    f"{pruning['documents_skipped']} docs / "
                    f"{pruning['blocks_skipped']} blocks"
                )
        print(
            f"  {'total':<16}{total['reference_s']:8.3f}s -> "
            f"{total['fastpath_s']:8.3f}s  ({total['speedup']:.2f}x)"
        )
        if not cell["invariant"]:
            print("  INVARIANCE VIOLATION — fast path diverged from reference")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timing repetitions per path (median reported)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default ./BENCH_wallclock.json; "
        "not written in --check mode unless given explicitly)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of writing it; "
        "exit non-zero on out-of-band regression",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("BENCH_wallclock.json"),
        help="baseline JSON to gate against (with --check)",
    )
    parser.add_argument(
        "--min-band", type=float, default=DEFAULT_MIN_BAND,
        help="minimum allowed fractional speedup drop (with --check)",
    )
    args = parser.parse_args(argv)
    profiles = args.profiles or list(DEFAULT_PROFILES)

    if args.check:
        # Fail fast with a one-line diagnosis — a missing or mangled
        # baseline is an operator error, not a traceback-worthy crash.
        try:
            baseline = json.loads(args.baseline.read_text())
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; run without --check first")
            return 2
        except OSError as error:
            print(f"cannot read baseline {args.baseline}: {error.strerror or error}")
            return 2
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(
                f"baseline {args.baseline} is not valid JSON ({error}); "
                "regenerate it by running without --check"
            )
            return 2
        if not isinstance(baseline, dict) or "profiles" not in baseline:
            print(
                f"baseline {args.baseline} is not a wallclock report "
                "(no 'profiles' key); regenerate it by running without --check"
            )
            return 2
        report = run_benchmark(profiles, args.config, args.out, args.repeats)
        _print_report(report)
        failures = compare_reports(report, baseline, min_band=args.min_band)
        if failures:
            print("\nREGRESSION GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nregression gate passed (all phases within the noise band)")
        return 0

    out_path = args.out if args.out is not None else Path("BENCH_wallclock.json")
    report = run_benchmark(profiles, args.config, out_path, args.repeats)
    _print_report(report)
    for cell in report["profiles"].values():
        if not cell["invariant"]:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
