"""Failover gate: replication must be observationally invisible.

The replication layer's whole contract is negative — with ``R`` mirrors
per shard, no single replica failure may change anything a client can
observe.  For each collection profile this gate checks, on simulated
time:

* **kill matrix** — at every ``N ∈ {2, 4} × R ∈ {1, 2}``, killing each
  ``(shard, replica)`` in turn with a dead-disk fault plan leaves every
  TAAT ranking bit-identical to the cold single-disk reference, with
  ``completeness == 1.0`` and zero degraded queries (the DAAT engine is
  spot-checked on its flat query subset);
* **R=0 control** — the same kill without replication degrades a
  deterministic, nonzero number of queries (PR 3/4 semantics), which is
  the baseline replication is measured against;
* **re-replication** — a lost mirror rebuilt live from its survivor is
  byte-identical platter-for-platter, the copy is charged to the
  source's simulated clock, and the healed group serves with no further
  failovers;
* **determinism** — two fresh builds through the same kill, failover,
  and re-replication produce byte-identical traces (served-by maps,
  failover events, replica busy ledgers);
* **mid-traffic split** — a live 2 -> 4 rebalance under the serving
  layer: every request before and after the cutover matches the
  single-disk reference, the child platters are byte-identical to a
  stop-the-world N=4 build, the result cache is invalidated exactly
  once, and a pre-split cached query is re-evaluated (a "miss") on its
  first post-split occurrence.

Everything is simulated and seeded, so the whole report is a pure
function of the code: ``--check`` gates every deterministic cell by
exact equality against the committed baseline.

Run it directly::

    PYTHONPATH=src python -m repro.bench.failover             # write baseline
    PYTHONPATH=src python -m repro.bench.failover --check     # gate a change

(or ``scripts/bench.sh failover``).  Writes ``BENCH_failover.json``;
exit status 0 on pass, 1 on violation or drift, 2 on operator error
(missing/unreadable baseline).
"""

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import config_by_name
from ..core.metrics import cold_start
from ..core.prepared import materialize, prepare_collection
from ..faults.plan import FaultPlan
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K, RetrievalEngine
from ..serve import QueryService
from ..shard import measure_sharded_run, split_shards
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from ..synth.traffic import TimedRequest
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-cache"
#: Queries per profile (keeps the 30-run kill matrix affordable).
DEFAULT_QUERIES = 8
SHARD_COUNTS = (2, 4)
REPLICA_COUNTS = (1, 2)


def _reference(prepared, config, pool: Sequence[str], engine: str = "taat"):
    """Cold single-disk rankings: the identity target for every cell."""
    system = materialize(prepared, config)
    cold_start(system)
    if engine == "daat":
        runner = DocumentAtATimeEngine(
            system.index, top_k=DEFAULT_TOP_K,
            use_reservation=config.use_reservation,
            use_fastpath=config.use_fastpath,
        )
    else:
        runner = RetrievalEngine(
            system.index, top_k=DEFAULT_TOP_K,
            use_reservation=config.use_reservation,
            use_fastpath=config.use_fastpath,
        )
    return {text: runner.run_query(text).ranking for text in dict.fromkeys(pool)}


def _reset_victim(sharded, shard_id: int, replica_id: int) -> None:
    """Detach the kill and revive the victim so the build can be reused."""
    sharded.fault_shard(shard_id, None, replica_id=replica_id)
    sharded.mark_up(shard_id, replica_id=replica_id)


def _trace(metrics) -> dict:
    """The deterministic failover trace of one run, JSON-comparable."""
    return {
        "failovers": metrics.failovers,
        "served_by": [
            {str(k): v for k, v in round.items()} for round in metrics.served_by
        ],
        "replica_busy_ms": {
            f"{s}/{r}": round_ms
            for (s, r), round_ms in sorted(metrics.replica_busy_ms.items())
        },
        "replicas_down": [list(pair) for pair in metrics.replicas_down],
        "rankings": [
            [[doc, round(belief, 12)] for doc, belief in r.ranking]
            for r in metrics.results
        ],
    }


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    n_queries: int = DEFAULT_QUERIES,
) -> dict:
    """The full replication contract for one collection profile."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    prepared = prepare_collection(collection)
    query_set = generate_query_set(
        collection, _query_profiles(profile_name)[0]
    )
    queries = query_set.queries[:n_queries]
    daat_pool = _daat_queries(query_set.queries)[: max(2, n_queries // 2)]
    config = config_by_name(config_name)
    reference = _reference(prepared, config, queries)
    daat_reference = _reference(prepared, config, daat_pool, engine="daat")

    def build(n_shards: int, replicas: int):
        return materialize(
            prepared, config, shards=n_shards, replicas=replicas
        )

    # -- R=0 control: the same kill without replication degrades ---------
    def degraded_run():
        sharded = build(2, 0)
        sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"))
        metrics = measure_sharded_run(sharded, queries)
        return metrics.degraded_queries, [r.ranking for r in metrics.results]

    r0_degraded, r0_rankings = degraded_run()
    r0_again = degraded_run()
    if r0_degraded == 0:
        violations.append(
            "control: the R=0 dead-disk run degraded nothing — the kill "
            "is not reaching the disk, so the matrix proves nothing"
        )
    if (r0_degraded, r0_rankings) != r0_again:
        violations.append("control: R=0 degradation is not deterministic")

    # -- the kill matrix -------------------------------------------------
    kill_matrix: Dict[str, dict] = {}
    for n_shards in SHARD_COUNTS:
        for replicas in REPLICA_COUNTS:
            sharded = build(n_shards, replicas)
            victims = clean = failovers = 0
            for shard_id in range(n_shards):
                for replica_id in range(replicas + 1):
                    victims += 1
                    sharded.fault_shard(
                        shard_id,
                        FaultPlan.dead_disk(label=f"s{shard_id}/r{replica_id}"),
                        replica_id=replica_id,
                    )
                    metrics = measure_sharded_run(sharded, queries)
                    failovers += len(metrics.failovers)
                    ok = (
                        metrics.degraded_queries == 0
                        and all(r.completeness == 1.0 for r in metrics.results)
                        and [r.ranking for r in metrics.results]
                        == [reference[text] for text in queries]
                    )
                    clean += ok
                    if not ok:
                        violations.append(
                            f"N={n_shards} R={replicas}: killing shard "
                            f"{shard_id} replica {replica_id} was observable "
                            f"({metrics.degraded_queries} degraded)"
                        )
                    _reset_victim(sharded, shard_id, replica_id)
            kill_matrix[f"N{n_shards}xR{replicas}"] = {
                "victims": victims,
                "clean": clean,
                "failovers": failovers,
            }

    # DAAT spot check: dead primary, flat queries, same contract.
    sharded = build(2, 1)
    sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"))
    daat_metrics = measure_sharded_run(sharded, daat_pool, engine="daat")
    daat_ok = (
        daat_metrics.degraded_queries == 0
        and [r.ranking for r in daat_metrics.results]
        == [daat_reference[text] for text in daat_pool]
    )
    if not daat_ok:
        violations.append("daat: failover changed a flat-query ranking")

    # -- re-replication ---------------------------------------------------
    def heal_run():
        sharded = build(2, 1)
        sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"))
        killed = measure_sharded_run(sharded, queries)
        healed = sharded.rereplicate(0, 0)
        identical = (
            sharded.replica(0, 0).fs.disk._blocks
            == sharded.replica(0, 1).fs.disk._blocks
        )
        after = measure_sharded_run(sharded, queries)
        return killed, healed, identical, after

    killed, healed, identical, after = heal_run()
    if not identical:
        violations.append("heal: rebuilt mirror is not byte-identical")
    if healed["source_scan_ms"] <= 0.0:
        violations.append("heal: the copy charged nothing to the source clock")
    if after.failovers or after.degraded_queries:
        violations.append("heal: the healed group still fails over")
    rereplication = {
        "blocks_scanned": healed["blocks_scanned"],
        "source_replica": healed["source_replica"],
        "byte_identical": identical,
        "post_heal_failovers": len(after.failovers),
    }

    # -- determinism: the full trace, twice, from fresh builds ------------
    killed_b, healed_b, identical_b, after_b = heal_run()
    trace_a = json.dumps(
        [_trace(killed), healed, identical, _trace(after)], sort_keys=True
    )
    trace_b = json.dumps(
        [_trace(killed_b), healed_b, identical_b, _trace(after_b)],
        sort_keys=True,
    )
    deterministic = trace_a == trace_b
    if not deterministic:
        violations.append(
            "determinism: two identical kill/failover/heal runs produced "
            "different traces"
        )

    # -- mid-traffic 2 -> 4 split under the serving layer -----------------
    service = QueryService(build(2, 1), engine="taat", workers=2)
    half = max(1, len(queries) // 2)
    pre = service.process(
        [TimedRequest(text=t, arrival_ms=0.0, seq=i)
         for i, t in enumerate(queries[:half])],
        name="pre-split",
    )
    report = service.rebalance(factor=2)
    # First post-split occurrence of an already-cached text must be a
    # genuine miss: the epoch bump forbids serving pre-split entries.
    replay = queries[0]
    post_texts = [replay] + queries[half:]
    post = service.process(
        [TimedRequest(text=t, arrival_ms=0.0, seq=i)
         for i, t in enumerate(post_texts)],
        name="post-split",
    )
    rows_ok = all(
        row.result.ranking == reference[row.text]
        for run in (pre, post) for row in run.served
    )
    if not rows_ok:
        violations.append("split: a served ranking diverged across the cutover")
    outcomes = {row.text: row.outcome for row in post.served}
    post_split_miss = outcomes.get(replay) == "miss"
    if not post_split_miss:
        violations.append(
            f"split: pre-split cache entry for {replay!r} leaked through "
            f"the cutover (outcome {outcomes.get(replay)!r})"
        )
    invalidations = service.cache.stats.invalidations
    if invalidations != 1:
        violations.append(
            f"split: expected exactly 1 cache invalidation, saw {invalidations}"
        )
    fresh = materialize(prepared, config, shards=4)
    platters_match = all(
        service.backend.replica(s, 0).fs.disk._blocks
        == fresh.shards[s].fs.disk._blocks
        for s in range(4)
    )
    if not platters_match:
        violations.append(
            "split: a child platter differs from the stop-the-world N=4 build"
        )
    split_cell = {
        "records_streamed": report.records_streamed,
        "postings_moved": report.postings_moved,
        "mirrors_verified": report.mirrors_verified,
        "epoch": report.epoch,
        "platters_match_fresh": platters_match,
        "cache_invalidations": invalidations,
        "post_split_miss": post_split_miss,
        "rows_identical": rows_ok,
    }

    return {
        "config": config_name,
        "queries": len(queries),
        "daat_queries": len(daat_pool),
        "r0_control": {
            "degraded_queries": r0_degraded,
            "deterministic": (r0_degraded, r0_rankings) == r0_again,
        },
        "kill_matrix": kill_matrix,
        "daat_failover_clean": daat_ok,
        "rereplication": rereplication,
        "deterministic": deterministic,
        "split": split_cell,
        "violations": violations,
        "ok": not violations,
    }


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    n_queries: int = DEFAULT_QUERIES,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "failover",
        "description": (
            "Replicated serving on simulated time: every single-replica "
            "kill across N ∈ {2,4} × R ∈ {1,2} leaves rankings "
            "bit-identical to the cold single-disk reference with zero "
            "degraded queries (while the R=0 control degrades "
            "deterministically), live re-replication rebuilds "
            "byte-identical platters on the source's clock, failover "
            "traces are byte-identical across same-seed runs, and a "
            "mid-traffic 2 -> 4 split is observationally invisible with "
            "exactly one cache-epoch invalidation."
        ),
        "config": config_name,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(profile_name, config_name, n_queries)
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: Per-profile report keys gated by exact equality in ``--check`` — all
#: pure functions of the seeded, simulated run.
DETERMINISTIC_KEYS = (
    "queries",
    "daat_queries",
    "r0_control",
    "kill_matrix",
    "daat_failover_clean",
    "rereplication",
    "deterministic",
    "split",
)


def compare_reports(current: dict, baseline: dict) -> List[str]:
    """Drift of ``current`` against ``baseline`` (empty = pass).

    Everything this gate measures is deterministic, so the comparison
    is exact equality per cell — any drift at all is a behavior change.
    """
    failures: List[str] = []
    for profile_name, base_cell in baseline.get("profiles", {}).items():
        cell = current.get("profiles", {}).get(profile_name)
        if cell is None:
            failures.append(f"{profile_name}: missing from the current run")
            continue
        if not cell.get("ok", False):
            for violation in cell.get("violations", ["violations recorded"]):
                failures.append(f"{profile_name}: {violation}")
        for key in DETERMINISTIC_KEYS:
            if cell.get(key) != base_cell.get(key):
                failures.append(
                    f"{profile_name}: {key} drifted from "
                    f"{base_cell.get(key)!r} to {cell.get(key)!r}"
                )
    return failures


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        print(f"{name} ({cell['config']}, {cell['queries']} queries):")
        for grid, row in cell["kill_matrix"].items():
            print(
                f"  {grid}: {row['clean']}/{row['victims']} kills invisible, "
                f"{row['failovers']} failovers absorbed"
            )
        control = cell["r0_control"]
        print(
            f"  R=0 control: {control['degraded_queries']} degraded "
            f"(deterministic: {control['deterministic']})"
        )
        heal = cell["rereplication"]
        print(
            f"  re-replication: {heal['blocks_scanned']} blocks from "
            f"replica {heal['source_replica']}, byte-identical: "
            f"{heal['byte_identical']}"
        )
        split = cell["split"]
        print(
            f"  split 2->4: {split['records_streamed']} records streamed, "
            f"platters match fresh build: {split['platters_match_fresh']}, "
            f"cache invalidations: {split['cache_invalidations']}"
        )
        print(f"  trace deterministic: {cell['deterministic']}")
        for violation in cell["violations"]:
            print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--queries", type=int, default=DEFAULT_QUERIES,
        help="queries per profile run (default 8)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default ./BENCH_failover.json; "
        "not written in --check mode unless given explicitly)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of writing it; "
        "exit non-zero on drift or violation",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("BENCH_failover.json"),
        help="baseline JSON to gate against (with --check)",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; run without --check first")
            return 2
        except OSError as error:
            print(
                f"cannot read baseline {args.baseline}: "
                f"{error.strerror or error}"
            )
            return 2
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(
                f"baseline {args.baseline} is not valid JSON ({error}); "
                "regenerate it by running without --check"
            )
            return 2
        if not isinstance(baseline, dict) or "profiles" not in baseline:
            print(
                f"baseline {args.baseline} is not a failover report "
                "(no 'profiles' key); regenerate it by running without --check"
            )
            return 2
        if args.profiles:
            # A restricted run gates only the profiles it executed; the
            # baseline must still know about every one of them.
            missing = [
                name for name in args.profiles
                if name not in baseline["profiles"]
            ]
            if missing:
                print(
                    f"baseline {args.baseline} lacks profile(s) "
                    f"{', '.join(missing)}; regenerate it by running "
                    "without --check"
                )
                return 2
            baseline = dict(
                baseline,
                profiles={
                    name: baseline["profiles"][name]
                    for name in args.profiles
                },
            )
        report = run_benchmark(
            args.profiles, args.config, args.queries, args.out
        )
        _print_report(report)
        failures = compare_reports(report, baseline)
        if failures:
            print("\nFAILOVER GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nfailover gate passed (every cell equal to the baseline)")
        return 0

    out_path = args.out if args.out is not None else Path("BENCH_failover.json")
    report = run_benchmark(args.profiles, args.config, args.queries, out_path)
    _print_report(report)
    if not report["ok"]:
        print("\nFAILOVER GATE FAILED")
        return 1
    print(
        "\nfailover gate passed (every single-replica kill invisible; "
        "re-replication byte-identical; mid-traffic split invisible)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
