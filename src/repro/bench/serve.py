"""Traffic benchmark and invariance gate for the serving layer.

For each paper collection this gate drives synthetic request streams
through :class:`~repro.serve.service.QueryService` and checks the whole
serving contract in one pass:

* **invariance** — every served ranking (cache hit, miss, or in-wave
  share; term-at-a-time over shards and flat document-at-a-time) must
  be *bit-identical* to a cold single-disk evaluation of that request's
  own query text;
* **cache payoff** — on a repeat-heavy open-loop Poisson stream, p50
  latency with the result cache must beat the cache-off baseline by at
  least ``--min-p50-speedup`` (default 5x), over identical traffic;
* **worker scaling** — on the TIPSTER profiles, burst (overload)
  throughput must increase monotonically from 1 to 4 simulated
  workers, cache off, over a 4-shard backend;
* **degradation hygiene** — with one shard's disk dead, traffic is
  served degraded without raising and *nothing* degraded enters the
  cache.

All timing is on the repo's simulated clocks (the same machine model as
every other gate), so the numbers — and the pass/fail verdict — are
deterministic across machines.

Run it directly::

    PYTHONPATH=src python -m repro.bench.serve                  # all four
    PYTHONPATH=src python -m repro.bench.serve --profile cacm-s

(or ``scripts/bench.sh serve``).  Writes ``BENCH_serve.json``; exit
status is non-zero on any violation.
"""

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.config import config_by_name
from ..core.metrics import cold_start
from ..core.prepared import materialize, prepare_collection
from ..faults.plan import FaultPlan
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K, RetrievalEngine
from ..serve import QueryService
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from ..synth.traffic import TrafficProfile, open_loop_requests
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-cache"
DEFAULT_SHARDS = 2
DEFAULT_REQUESTS = 160
DEFAULT_REPEAT_RATE = 0.75
DEFAULT_MIN_P50_SPEEDUP = 5.0
DEFAULT_WORKER_SWEEP = (1, 2, 4)
#: Profiles whose worker-scaling sweep is gated (the big collections).
SCALING_PROFILES = ("tipster1-s", "tipster-s")
TRAFFIC_SEED = 29


def _reference_rankings(prepared, config, pool: Sequence[str], engine: str):
    """Cold single-disk rankings per distinct query, plus mean cost."""
    system = materialize(prepared, config)
    cold_start(system)
    engine_cls = DocumentAtATimeEngine if engine == "daat" else RetrievalEngine
    runner = engine_cls(
        system.index,
        top_k=DEFAULT_TOP_K,
        use_reservation=config.use_reservation,
        use_fastpath=config.use_fastpath,
    )
    rankings: Dict[str, list] = {}
    costs: List[float] = []
    for text in dict.fromkeys(pool):
        start = system.clock.snapshot()
        rankings[text] = runner.run_query(text).ranking
        costs.append(system.clock.since(start).wall_ms)
    return rankings, sum(costs) / len(costs)


def _check_invariance(report, reference, label: str, violations: List[str]):
    """Every served ranking must equal the cold reference, bit for bit."""
    bad = 0
    for row in report.served:
        if row.result.ranking != reference[row.text]:
            bad += 1
            if bad <= 3:
                violations.append(
                    f"{label}: served ranking for {row.text!r} "
                    f"({row.outcome}) differs from the cold single-disk "
                    "evaluation"
                )
    if bad > 3:
        violations.append(f"{label}: {bad} served rankings diverged in total")
    return bad


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    n_requests: int = DEFAULT_REQUESTS,
    shards: int = DEFAULT_SHARDS,
    min_p50_speedup: float = DEFAULT_MIN_P50_SPEEDUP,
    worker_sweep=DEFAULT_WORKER_SWEEP,
) -> dict:
    """The full serving contract for one collection profile."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    prepared = prepare_collection(collection)
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in _query_profiles(profile_name)
    ]
    pool = [query for query_set in query_sets for query in query_set.queries]
    config = config_by_name(config_name)

    taat_ref, mean_cost = _reference_rankings(prepared, config, pool, "taat")

    # -- repeat-heavy traffic, cache on vs. off over identical requests --
    traffic = TrafficProfile(
        name=f"{profile_name}-repeat-heavy",
        mode="open",
        n_requests=n_requests,
        # Offered load ~60% of a 2-worker service's capacity, so queueing
        # is visible but the cache-off baseline still drains.
        rate_qps=1200.0 / mean_cost,
        repeat_rate=DEFAULT_REPEAT_RATE,
        seed=TRAFFIC_SEED,
    )
    requests = open_loop_requests(pool, traffic)
    runs: Dict[str, dict] = {}
    for label, use_cache in (("cache_on", True), ("cache_off", False)):
        backend = materialize(prepared, config, shards=shards)
        service = QueryService(
            backend, engine="taat", workers=2, max_batch=8, use_cache=use_cache
        )
        report = service.process(requests, name=label)
        _check_invariance(report, taat_ref, f"taat/{label}", violations)
        cell = report.summary()
        if service.cache is not None:
            cell["cache"] = service.cache.stats.as_dict()
        runs[label] = cell
    p50_on = runs["cache_on"]["p50_ms"]
    p50_off = runs["cache_off"]["p50_ms"]
    p50_speedup = p50_off / p50_on if p50_on > 0 else 0.0
    if p50_speedup < min_p50_speedup:
        violations.append(
            f"cache: p50 speedup {p50_speedup:.2f}x on repeat-heavy traffic "
            f"is below the {min_p50_speedup:.2f}x floor "
            f"({p50_off:.3f}ms off vs {p50_on:.3f}ms on)"
        )

    # -- document-at-a-time invariance on the flat subset ----------------
    daat_cell: Optional[dict] = None
    flat_pool = _daat_queries(pool)
    if flat_pool:
        daat_ref, _ = _reference_rankings(prepared, config, flat_pool, "daat")
        daat_traffic = TrafficProfile(
            name=f"{profile_name}-daat",
            mode="open",
            n_requests=min(n_requests, 2 * len(flat_pool)),
            rate_qps=0.0,
            repeat_rate=0.5,
            seed=TRAFFIC_SEED + 1,
        )
        daat_requests = open_loop_requests(flat_pool, daat_traffic)
        service = QueryService(
            materialize(prepared, config), engine="daat", workers=2, max_batch=8
        )
        report = service.process(daat_requests, name="daat")
        _check_invariance(report, daat_ref, "daat", violations)
        daat_cell = report.summary()

    # -- worker scaling under burst (overload) traffic -------------------
    scaling: Dict[str, float] = {}
    if profile_name in SCALING_PROFILES:
        burst = TrafficProfile(
            name=f"{profile_name}-burst",
            mode="open",
            n_requests=min(len(pool), 80),
            rate_qps=0.0,  # everything arrives at t=0: pure overload
            repeat_rate=0.0,
            seed=TRAFFIC_SEED + 2,
        )
        burst_requests = open_loop_requests(pool, burst)
        sharded = materialize(prepared, config, shards=4)
        for workers in worker_sweep:
            service = QueryService(
                sharded, engine="taat", workers=workers,
                max_batch=16, use_cache=False,
            )
            report = service.process(burst_requests, name=f"w{workers}")
            _check_invariance(
                report, taat_ref, f"burst/workers={workers}", violations
            )
            scaling[str(workers)] = round(report.throughput_qps, 2)
        ordered = [scaling[str(w)] for w in worker_sweep]
        for before, after, w_before, w_after in zip(
            ordered, ordered[1:], worker_sweep, worker_sweep[1:]
        ):
            if after < before:
                violations.append(
                    f"scaling: burst throughput fell from {before} q/s at "
                    f"{w_before} workers to {after} q/s at {w_after}"
                )

    # -- degraded traffic: dead shard, nothing degraded cached -----------
    dead = materialize(prepared, config, shards=shards)
    dead.fault_shard(0, FaultPlan.dead_disk())
    service = QueryService(dead, engine="taat", workers=2, max_batch=8)
    try:
        report = service.process(requests[: n_requests // 2], name="dead-shard")
    except Exception as error:  # noqa: BLE001 — the contract under test
        violations.append(
            f"dead-shard: raised {type(error).__name__}: {error}"
        )
        degraded_cell = {"raised": True}
    else:
        degraded = sum(
            1 for row in report.served if row.result.completeness < 1.0
        )
        cached = len(service.cache) if service.cache is not None else 0
        if degraded == 0:
            violations.append("dead-shard: no request was served degraded")
        if cached != 0:
            violations.append(
                f"dead-shard: {cached} degraded results were admitted "
                "to the cache"
            )
        degraded_cell = {
            "requests": len(report.served),
            "degraded_served": degraded,
            "cache_entries": cached,
            "rejected_degraded": (
                service.cache.stats.rejected_degraded
                if service.cache is not None
                else 0
            ),
        }

    cell: dict = {
        "config": config_name,
        "shards": shards,
        "mean_service_ms": round(mean_cost, 4),
        "traffic": {
            "n_requests": n_requests,
            "rate_qps": round(traffic.rate_qps, 2),
            "repeat_rate": traffic.repeat_rate,
            "seed": traffic.seed,
        },
        "cache_on": runs["cache_on"],
        "cache_off": runs["cache_off"],
        "p50_speedup": round(p50_speedup, 2),
        "dead_shard": degraded_cell,
        "violations": violations,
        "ok": not violations,
    }
    if daat_cell is not None:
        cell["daat"] = daat_cell
    if scaling:
        cell["burst_throughput_qps_by_workers"] = scaling
    return cell


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    n_requests: int = DEFAULT_REQUESTS,
    shards: int = DEFAULT_SHARDS,
    min_p50_speedup: float = DEFAULT_MIN_P50_SPEEDUP,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "serve",
        "description": (
            "Concurrent batch query service with a normalized-query "
            "result cache, on simulated time: every served ranking "
            "(cached, shared, or evaluated; sharded TAAT and flat DAAT) "
            "bit-identical to a cold single-disk evaluation; p50 latency "
            "on repeat-heavy Poisson traffic at least the floor times "
            "better with the cache than without on identical requests; "
            "burst throughput monotone in worker count on the TIPSTER "
            "profiles; degraded results served but never cached with a "
            "dead shard."
        ),
        "config": config_name,
        "min_p50_speedup": min_p50_speedup,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(
            profile_name, config_name, n_requests, shards, min_p50_speedup
        )
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        on, off = cell["cache_on"], cell["cache_off"]
        print(
            f"{name} ({cell['config']}, {cell['shards']} shards, "
            f"mean query {cell['mean_service_ms']:.2f}ms):"
        )
        print(
            f"  cache on   p50 {on['p50_ms']:8.3f}ms  p95 {on['p95_ms']:8.3f}ms  "
            f"p99 {on['p99_ms']:8.3f}ms  {on['throughput_qps']:7.1f} q/s  "
            f"hit rate {on['hit_rate']:.2f}"
        )
        print(
            f"  cache off  p50 {off['p50_ms']:8.3f}ms  p95 {off['p95_ms']:8.3f}ms  "
            f"p99 {off['p99_ms']:8.3f}ms  {off['throughput_qps']:7.1f} q/s"
        )
        print(f"  p50 speedup {cell['p50_speedup']:.2f}x")
        if "burst_throughput_qps_by_workers" in cell:
            sweep = ", ".join(
                f"{w}w: {qps} q/s"
                for w, qps in cell["burst_throughput_qps_by_workers"].items()
            )
            print(f"  burst scaling  {sweep}")
        dead = cell["dead_shard"]
        if not dead.get("raised"):
            print(
                f"  dead shard  {dead['degraded_served']}/{dead['requests']} "
                f"degraded, {dead['cache_entries']} cached, "
                f"{dead['rejected_degraded']} admissions refused"
            )
        for violation in cell["violations"]:
            print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="requests in the repeat-heavy traffic run (default 160)",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="shard count behind the cached service (default 2)",
    )
    parser.add_argument(
        "--min-p50-speedup", type=float, default=DEFAULT_MIN_P50_SPEEDUP,
        help="cache-on p50 latency improvement floor (default 5x)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_serve.json"),
        help="output JSON path (default ./BENCH_serve.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        args.profiles, args.config, args.requests, args.shards,
        args.min_p50_speedup, args.out,
    )
    _print_report(report)
    if not report["ok"]:
        print("\nSERVE GATE FAILED")
        return 1
    print(
        "\nserve gate passed (bit-identical serving; cache and scaling "
        "floors met)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
