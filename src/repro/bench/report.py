"""Plain-text rendering of tables and figures.

The benchmark suite prints each reproduced table in the paper's layout
and each figure as an ASCII plot, and writes the same text under
``benchmarks/results/`` so the artifacts survive the pytest run.
"""

import math
from pathlib import Path
from typing import Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Align a table as monospaced text."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells)) if cells
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.extend(["", note])
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def render_plot(
    title: str,
    xs: Sequence[float],
    series: "dict[str, Sequence[float]]",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
    width: int = 64,
    height: int = 18,
) -> str:
    """An ASCII scatter/line plot of one or more series."""
    if not xs:
        return f"{title}\n(no data)\n"
    xt = [math.log10(max(x, 1e-12)) for x in xs] if log_x else list(xs)
    lo_x, hi_x = min(xt), max(xt)
    all_y = [y for ys in series.values() for y in ys]
    lo_y, hi_y = min(all_y), max(all_y)
    if hi_x == lo_x:
        hi_x += 1.0
    if hi_y == lo_y:
        hi_y += 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "*+ox#@"
    for index, (name, ys) in enumerate(series.items()):
        mark = marks[index % len(marks)]
        for x, y in zip(xt, ys):
            col = round((x - lo_x) / (hi_x - lo_x) * (width - 1))
            row = round((y - lo_y) / (hi_y - lo_y) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = [title, "=" * len(title), ""]
    if y_label:
        lines.append(y_label)
    for r, row in enumerate(grid):
        y_value = hi_y - (hi_y - lo_y) * r / (height - 1)
        lines.append(f"{y_value:>10.2f} |" + "".join(row))
    x_lo = 10 ** lo_x if log_x else lo_x
    x_hi = 10 ** hi_x if log_x else hi_x
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{_fmt(x_lo)}{' ' * max(1, width - len(_fmt(x_lo)) - len(_fmt(x_hi)))}{_fmt(x_hi)}"
    )
    if x_label:
        lines.append(" " * 12 + x_label + ("  [log scale]" if log_x else ""))
    legend = "   ".join(
        f"{marks[i % len(marks)]} = {name}" for i, name in enumerate(series)
    )
    lines.extend(["", legend])
    return "\n".join(lines) + "\n"


def emit(text: str, artifact: Optional[str] = None, results_dir: Optional[Path] = None) -> str:
    """Print report text and optionally persist it under results/."""
    print()
    print(text)
    if artifact and results_dir is not None:
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / artifact).write_text(text)
    return text
