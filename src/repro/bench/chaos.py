"""Chaos harness: fault-tolerant query serving under injected failures.

Every other benchmark in :mod:`repro.bench` measures how fast the system
is; this one measures whether it *stays up*.  For each paper collection
the harness builds the WAL-backed linked-Mneme system four times on
identical prepared data and replays every query set through both
engines (term-at-a-time and document-at-a-time) under a seeded
:class:`~repro.faults.plan.FaultPlan`:

1. **baseline** — no faults; records the fault-free rankings and probes
   the eligible-operation horizon (reads of the main inverted file) the
   fault schedule is sampled from;
2. **faulted** — torn writes during the build, then transient reads,
   stuck sectors, silent bit flips, and latency spikes during the query
   replay.  The contract: *no query may raise*.  Unreadable terms
   degrade the result (``degraded=True`` with completeness accounting);
   checksum failures are repaired from the redo log;
3. **faulted again, same seed** — every ranking, degraded flag, fault
   counter, and resilience counter must be identical (the whole point
   of deterministic injection);
4. **after faults clear** — the pending schedule is dropped, caches go
   cold, and the replay must produce rankings *bit-identical to the
   fault-free baseline*: read-repair has healed every torn or flipped
   block that matters, and degraded mode leaves no residue.

A fifth, separate build schedules a mid-build ``disk-full`` allocation
fault and asserts the build dies with a clean
:class:`~repro.errors.DiskFullError` — not a corrupted half-index.

Run it directly::

    PYTHONPATH=src python -m repro.bench.chaos --seed 1337
    PYTHONPATH=src python -m repro.bench.chaos --sweep 5   # 5 seeds

(or ``scripts/chaos.sh``).  Exit status is non-zero if any contract is
violated; the per-run report (JSON with ``--out``) includes the fault
and resilience counters so a run that injected nothing is visible.
"""

import argparse
import json
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.config import config_by_name
from ..core.metrics import cold_start
from ..core.prepared import IRSystem, PreparedCollection, materialize, prepare_collection
from ..errors import DiskFullError
from ..faults import FaultEvent, FaultPlan
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K, RetrievalEngine
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-linked"
DEFAULT_SEED = 1337

#: Fault mix per profile run (scaled down automatically when a profile's
#: eligible-operation horizon is smaller than the event count).
DEFAULT_MIX = dict(
    transient_reads=3,
    stuck_reads=2,
    bit_flips=2,
    latency_spikes=2,
    torn_writes=3,
)


def _profile_seed(seed: int, profile_name: str) -> int:
    """Stable per-profile seed (``hash()`` is salted; crc32 is not)."""
    return seed ^ zlib.crc32(profile_name.encode("ascii"))


def _build(
    prepared: PreparedCollection,
    config_name: str,
    fault_plan: Optional[FaultPlan] = None,
) -> IRSystem:
    config = config_by_name(config_name, use_wal=True)
    if config.backend == "btree":
        raise ValueError("chaos serving requires a Mneme backend with a redo log")
    return materialize(prepared, config, fault_plan=fault_plan)


def _phases(system: IRSystem, query_sets) -> List[Tuple[str, List[str], object]]:
    """(phase name, queries, engine) for every TAAT and DAAT replay."""
    phases = []
    for query_set in query_sets:
        engine = RetrievalEngine(
            system.index,
            top_k=DEFAULT_TOP_K,
            use_reservation=system.config.use_reservation,
            use_fastpath=system.config.use_fastpath,
        )
        phases.append((f"taat:{query_set.name}", list(query_set.queries), engine))
    for query_set in query_sets:
        flat = _daat_queries(query_set.queries)
        if not flat:
            continue
        engine = DocumentAtATimeEngine(
            system.index, top_k=50, use_fastpath=system.config.use_fastpath
        )
        phases.append((f"daat:{query_set.name}", flat, engine))
    return phases


def _replay(system: IRSystem, query_sets, violations: List[str], label: str) -> dict:
    """Replay every query set cold; nothing may escape a query.

    Returns the observable outcome: per-phase rankings, degraded flags,
    and failed-term totals — the unit of comparison for the determinism
    and after-clear contracts.
    """
    outcome = {"phases": [], "queries": 0, "degraded_queries": 0, "terms_failed": 0}
    for phase_name, queries, engine in _phases(system, query_sets):
        cold_start(system)
        rankings, degraded = [], []
        terms_failed = 0
        for query in queries:
            outcome["queries"] += 1
            try:
                result = engine.run_query(query)
            except Exception as error:  # noqa: BLE001 — the contract under test
                violations.append(
                    f"{label}/{phase_name}: query {query!r} raised "
                    f"{type(error).__name__}: {error}"
                )
                rankings.append(None)
                degraded.append(None)
                continue
            rankings.append(result.ranking)
            degraded.append(result.degraded)
            terms_failed += result.terms_failed
            if result.degraded:
                outcome["degraded_queries"] += 1
        outcome["terms_failed"] += terms_failed
        outcome["phases"].append(
            {"phase": phase_name, "rankings": rankings, "degraded": degraded}
        )
    return outcome


def _observables(system: IRSystem, plans: List[FaultPlan]) -> dict:
    """Counters that must agree between two same-seed runs."""
    mfile = system.index.store.mfile
    merged: Dict[str, int] = {}
    for plan in plans:
        for kind, count in plan.stats.as_dict().items():
            merged[kind] = merged.get(kind, 0) + count
    return {
        "faults": merged,
        "resilience": mfile.resilience.as_dict(),
        "disk_failed_reads": system.fs.disk.stats.failed_reads,
    }


def chaos_profile(
    prepared: PreparedCollection,
    query_sets,
    seed: int,
    config_name: str = DEFAULT_CONFIG,
    mix: Optional[Dict[str, int]] = None,
) -> dict:
    """Run the full chaos contract for one prepared collection.

    Exposed below the CLI so the test suite can drive it on a tiny
    fixture collection; ``query_sets`` is any iterable of objects with
    ``name`` and ``queries``.
    """
    mix = dict(DEFAULT_MIX, **(mix or {}))
    violations: List[str] = []
    report: dict = {"seed": seed, "config": config_name}

    # -- 1. baseline: fault-free rankings + the fault schedule's horizon ---
    baseline = _build(prepared, config_name)
    build_allocs = baseline.fs.disk.blocks_allocated
    main_blocks = set(baseline.index.store.mfile.main._blocks)
    probe = FaultPlan(eligible_blocks=main_blocks)
    baseline.fs.disk.attach_fault_plan(probe)
    base_outcome = _replay(baseline, query_sets, violations, "baseline")
    baseline.fs.disk.attach_fault_plan(None)
    read_ops = probe.ops["read"]
    # Every main block is written at least once during the build, so the
    # block count is a safe lower bound on the eligible write horizon.
    write_ops = len(main_blocks)
    report["horizon"] = {"read_ops": read_ops, "write_ops": write_ops}
    if base_outcome["degraded_queries"]:
        violations.append("baseline: degraded queries in a fault-free run")

    # -- 2 + 3. two identically-seeded faulted runs ------------------------
    def faulted_run(label: str):
        plan_build = FaultPlan.seeded(
            _profile_seed(seed, prepared.name) * 2 + 1,
            write_ops=write_ops,
            torn_writes=mix["torn_writes"],
            eligible_blocks=main_blocks,
        )
        try:
            system = _build(prepared, config_name, fault_plan=plan_build)
        except Exception as error:  # noqa: BLE001 — torn writes must not kill a build
            violations.append(
                f"{label}/build: raised {type(error).__name__}: {error}"
            )
            return None, None, None, None
        plan_query = FaultPlan.seeded(
            _profile_seed(seed, prepared.name) * 2,
            read_ops=read_ops,
            transient_reads=mix["transient_reads"],
            stuck_reads=mix["stuck_reads"],
            bit_flips=mix["bit_flips"],
            latency_spikes=mix["latency_spikes"],
            eligible_blocks=main_blocks,
        )
        system.fs.disk.attach_fault_plan(plan_query)
        outcome = _replay(system, query_sets, violations, label)
        return system, plan_build, plan_query, outcome

    faulted, plan_build, plan_query, fault_outcome = faulted_run("faulted")
    _s2, _pb2, _pq2, rerun_outcome = faulted_run("faulted-rerun")

    if fault_outcome is not None and rerun_outcome is not None:
        if fault_outcome != rerun_outcome:
            violations.append(
                "determinism: same-seed rerun produced different results"
            )
        obs1 = _observables(faulted, [plan_build, plan_query])
        obs2 = _observables(_s2, [_pb2, _pq2])
        if obs1 != obs2:
            violations.append(
                "determinism: same-seed rerun produced different counters"
            )
        report["faulted"] = {
            "queries": fault_outcome["queries"],
            "degraded_queries": fault_outcome["degraded_queries"],
            "terms_failed": fault_outcome["terms_failed"],
            **obs1,
        }

    # -- 4. after faults clear: bit-identical to the baseline --------------
    if faulted is not None:
        cleared = plan_build.clear() + plan_query.clear()
        report["cleared_pending_faults"] = cleared
        clear_outcome = _replay(faulted, query_sets, violations, "after-clear")
        if clear_outcome["degraded_queries"]:
            violations.append(
                "after-clear: still degraded once the fault schedule is empty"
            )
        base_rankings = [p["rankings"] for p in base_outcome["phases"]]
        clear_rankings = [p["rankings"] for p in clear_outcome["phases"]]
        if base_rankings != clear_rankings:
            violations.append(
                "after-clear: rankings differ from the fault-free baseline "
                "(read-repair failed to heal the damage)"
            )
        report["after_clear"] = {
            "identical_to_baseline": base_rankings == clear_rankings,
            "resilience": faulted.index.store.mfile.resilience.as_dict(),
        }

    # -- 5. mid-build space exhaustion fails cleanly -----------------------
    plan_full = FaultPlan([FaultEvent("disk-full", at_op=max(1, build_allocs // 2))])
    try:
        _build(prepared, config_name, fault_plan=plan_full)
        violations.append("disk-full: build completed despite injected exhaustion")
        report["disk_full"] = "not raised"
    except DiskFullError:
        report["disk_full"] = "clean DiskFullError"
    except Exception as error:  # noqa: BLE001 — anything else is a dirty failure
        violations.append(
            f"disk-full: expected DiskFullError, got {type(error).__name__}: {error}"
        )
        report["disk_full"] = f"dirty: {type(error).__name__}"

    report["violations"] = violations
    report["ok"] = not violations
    return report


def run_chaos(
    profiles: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
    config_name: str = DEFAULT_CONFIG,
    sweep: int = 1,
    out_path: Optional[Path] = None,
) -> dict:
    """Chaos-test every requested profile over ``sweep`` seeds."""
    report = {
        "benchmark": "chaos",
        "description": (
            "Seeded deterministic fault injection: no uncaught exceptions, "
            "same-seed determinism, bit-identical rankings after faults "
            "clear, clean mid-build disk-full failure."
        ),
        "config": config_name,
        "seeds": list(range(seed, seed + max(1, sweep))),
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        collection = SyntheticCollection(PROFILES[profile_name])
        prepared = prepare_collection(collection)
        query_sets = [
            generate_query_set(collection, query_profile)
            for query_profile in _query_profiles(profile_name)
        ]
        cells = []
        for run_seed in report["seeds"]:
            cell = chaos_profile(prepared, query_sets, run_seed, config_name)
            cells.append(cell)
            report["ok"] = report["ok"] and cell["ok"]
        report["profiles"][profile_name] = cells
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_report(report: dict) -> None:
    for name, cells in report["profiles"].items():
        for cell in cells:
            status = "ok" if cell["ok"] else "FAILED"
            faulted = cell.get("faulted", {})
            res = faulted.get("resilience", {})
            print(
                f"{name} seed={cell['seed']}: {status}  "
                f"injected={sum(faulted.get('faults', {}).values())} "
                f"degraded={faulted.get('degraded_queries', '?')}/"
                f"{faulted.get('queries', '?')} "
                f"retries={res.get('retries', '?')} "
                f"repairs={res.get('read_repairs', '?')} "
                f"disk-full={cell.get('disk_full', '?')}"
            )
            for violation in cell["violations"]:
                print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to chaos-test (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--sweep", type=int, default=1,
        help="number of consecutive seeds to test per profile",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the JSON report here"
    )
    args = parser.parse_args(argv)
    report = run_chaos(
        args.profiles, args.seed, args.config, args.sweep, args.out
    )
    _print_report(report)
    if not report["ok"]:
        print("\nCHAOS GATE FAILED")
        return 1
    print("\nchaos gate passed (every contract held)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
