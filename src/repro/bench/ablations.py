"""Ablations of the integrated system's design choices, plus the
linked-object update extension experiment.

These go beyond the paper's tables: each isolates one design decision
DESIGN.md calls out (the reservation pass, the single large buffer, the
8 KB medium segment) or implements a measurement the paper proposes as
future work (update support through inter-object references).
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core import (
    config_by_name,
    materialize,
    measure_run,
    table2_buffer_sizes,
)

from ..mneme import (
    ChunkedLargeObjectPool,
    LargeObjectPool,
    MnemeStore,
    PartitionedBuffer,
    append_linked,
    read_linked,
    write_linked,
)
from ..simdisk import SimClock, SimDisk, SimFileSystem
from .runner import BenchRunner


def reservation_ablation(
    runner: BenchRunner, profile: str = "legal-s"
) -> List[Tuple[str, str, float, float, int]]:
    """Reservation pass on vs off: hit rate and time per query set.

    Returns (query set, variant, large hit rate, system+I/O s, file accesses).
    """
    workload = runner.workload(profile)
    rows = []
    for use_reservation in (True, False):
        system = materialize(
            workload.prepared,
            config_by_name("mneme-cache", use_reservation=use_reservation),
        )
        for query_set in workload.query_sets:
            metrics = measure_run(system, query_set.queries, query_set.name)
            rows.append((
                query_set.name,
                "reserve" if use_reservation else "no-reserve",
                metrics.buffer_stats["large"].hit_rate,
                metrics.system_io_s,
                metrics.file_accesses,
            ))
    return rows


def split_large_buffer_ablation(
    runner: BenchRunner,
    profile: str = "tipster-s",
    thresholds: Sequence[int] = (16384, 32768, 49152, 65536),
) -> List[Tuple[str, int, int, float]]:
    """One large buffer vs the same budget split into two partitions.

    The paper: "We experimented with further partitioning the large
    object buffer, but found the best hit rates were achieved with a
    single buffer of the same total size."  A partition is defined by a
    size threshold; since the right threshold is workload-dependent, the
    ablation sweeps several and reports each.  Returns
    (variant, refs, hits, rate) rows for the large pool, where variant
    is ``"single"`` or ``"split@<threshold>"``.
    """
    workload = runner.workload(profile)
    query_set = workload.query_sets[0]
    sizes = table2_buffer_sizes(workload.prepared.largest_record)
    system = materialize(workload.prepared, config_by_name("mneme-cache"))
    store = system.index.store
    rows = []
    variants = [("single", None)] + [(f"split@{t}", t) for t in thresholds]
    for variant, threshold in variants:
        if threshold is None:
            store.attach_buffers(sizes)
        else:
            store.attach_buffers(sizes)  # reset small/medium
            store.large.attach_buffer(PartitionedBuffer(
                low_capacity_bytes=sizes.large // 2,
                high_capacity_bytes=sizes.large - sizes.large // 2,
                threshold_bytes=threshold,
            ))
        metrics = measure_run(system, query_set.queries, query_set.name)
        stats = metrics.buffer_stats["large"]
        rows.append((variant, stats.refs, stats.hits, stats.hit_rate))
    store.attach_buffers(sizes)
    return rows


def segment_size_ablation(
    runner: BenchRunner,
    profile: str = "legal-s",
    segment_sizes: Sequence[int] = (4096, 8192, 16384, 32768),
) -> List[Tuple[int, float, int, float]]:
    """Medium pool physical segment size sweep.

    The paper chose 8 KB as "based on the disk I/O block size and a
    desire to keep the segments relatively small so as to reduce the
    number of unused objects retrieved with each segment."  Returns
    (segment bytes, system+I/O s, disk inputs, KB read) per size.
    """
    workload = runner.workload(profile)
    query_set = workload.query_sets[0]
    rows = []
    for segment_bytes in segment_sizes:
        medium_max = min(4096, segment_bytes - 64)
        system = materialize(
            workload.prepared,
            config_by_name(
                "mneme-cache",
                medium_segment_bytes=segment_bytes,
                medium_max_bytes=medium_max,
            ),
        )
        metrics = measure_run(system, query_set.queries, query_set.name)
        rows.append((
            segment_bytes,
            metrics.system_io_s,
            metrics.io_inputs,
            metrics.kbytes_from_file,
        ))
    return rows


@dataclass
class UpdateCosts:
    """Disk traffic of growing one large inverted list many times."""

    variant: str
    appends: int
    bytes_written: int
    blocks_written: int
    wall_ms: float


def update_extension_experiment(
    initial_bytes: int = 262144,
    append_bytes: int = 2048,
    appends: int = 24,
    chunk_bytes: int = 32768,
) -> List[UpdateCosts]:
    """Contiguous relocation vs linked-object append (the extension).

    A large inverted list grows by ``append_bytes`` per batch of new
    documents.  Stored contiguously, each growth relocates the whole
    object; stored as a linked object, each growth writes one new chunk
    and rewrites the small tail header.  Returns measured disk writes
    for both variants (the correctness of both paths is asserted by the
    caller through byte equality).
    """
    results = []
    for variant in ("contiguous", "linked"):
        clock = SimClock()
        fs = SimFileSystem(SimDisk(clock), cache_blocks=64)
        store = MnemeStore(fs)
        mfile = store.open_file("upd")
        payload = bytes(range(256)) * (initial_bytes // 256)
        if variant == "contiguous":
            pool = mfile.create_pool(3, LargeObjectPool)
            mfile.load()
            oid = pool.create(payload)
            mfile.flush()
        else:
            pool = mfile.create_pool(3, ChunkedLargeObjectPool)
            mfile.load()
            oid = write_linked(pool, payload, chunk_bytes=chunk_bytes)
            mfile.flush()
        start_blocks = fs.disk.stats.blocks_written
        start_bytes = sum(f.stats.bytes_written for f in mfile.files)
        start = clock.snapshot()
        grown = payload
        for i in range(appends):
            extra = bytes([i % 251]) * append_bytes
            grown = grown + extra
            if variant == "contiguous":
                pool.modify(oid, grown)
            else:
                append_linked(pool, oid, extra, chunk_bytes=chunk_bytes)
        mfile.flush()
        final = (
            pool.fetch(oid) if variant == "contiguous" else read_linked(pool, oid)
        )
        if final != grown:
            raise AssertionError(f"{variant} update lost data")
        elapsed = clock.since(start)
        results.append(UpdateCosts(
            variant=variant,
            appends=appends,
            bytes_written=sum(f.stats.bytes_written for f in mfile.files) - start_bytes,
            blocks_written=fs.disk.stats.blocks_written - start_blocks,
            wall_ms=elapsed.wall_ms,
        ))
    return results
