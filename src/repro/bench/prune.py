"""Dynamic-pruning invariance and effect gate.

The pruning engine's whole contract is "less work, same answer".  For
each collection profile this benchmark checks both halves on the
linked-record config:

* **invariance** — for every query set's flat document-at-a-time
  subset, the pruned engine's top-k (``prune="auto"``) must equal
  exhaustive DAAT tuple for tuple: same document ids, bit-identical
  beliefs, same tie-break order.  Any difference is a violation.
* **engagement** — ``auto`` may fall back to exhaustive when no safe
  bound exists, so a silent no-op would pass invariance trivially; the
  gate requires that pruning actually engaged and that
  ``documents_scored`` shrank on every profile.  The TIPSTER profiles
  additionally gate the reduction factor
  (``--min-speedup``, default 1.5x fewer documents scored).
* **serve composition** — a pruned :class:`~repro.serve.QueryService`
  (result cache on) serves every flat query twice: each served ranking
  must equal a fresh exhaustive evaluation, and the repeats must hit
  the cache — pruned and exhaustive results share cache entries
  because they are bit-identical.

The wall-clock side of the story (the ``prune:`` phase and its
reference-vs-fastpath speedup) lives in :mod:`repro.bench.wallclock`;
this gate is about correctness and the work counters, so its verdicts
are exact, not statistical.

Run it directly::

    PYTHONPATH=src python -m repro.bench.prune                  # all four
    PYTHONPATH=src python -m repro.bench.prune --profile tipster1-s

(or ``scripts/bench.sh prune``, or ``repro prune``).  Writes
``BENCH_prune.json``; exit status is non-zero on any violation.
"""

import argparse
import json
from pathlib import Path
from typing import List, Optional

from ..core.config import config_by_name
from ..core.metrics import cold_start
from ..core.prepared import materialize, prepare_collection
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K
from ..serve import QueryService
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from ..synth.traffic import TimedRequest
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-linked"
DEFAULT_MIN_REDUCTION = 1.5
#: Profiles the documents-scored reduction floor applies to (the small
#: collections keep the invariance checks; their candidate sets are too
#: small for a stable reduction ratio).
GATED_PROFILES = ("tipster1-s", "tipster-s")


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    top_k: int = DEFAULT_TOP_K,
    min_reduction: float = DEFAULT_MIN_REDUCTION,
) -> dict:
    """Invariance + effect + serve composition for one collection."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    prepared = prepare_collection(collection)
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in _query_profiles(profile_name)
    ]
    config = config_by_name(config_name)
    system = materialize(prepared, config)

    cell: dict = {"config": config_name, "top_k": top_k, "query_sets": {}}
    total_exhaustive = 0
    total_pruned = 0
    pruned_queries = 0
    flat_queries: List[str] = []
    for query_set in query_sets:
        flat = _daat_queries(query_set.queries)
        if not flat:
            continue
        flat_queries.extend(flat)
        cold_start(system)
        exhaustive = DocumentAtATimeEngine(
            system.index, top_k=top_k, use_fastpath=config.use_fastpath
        )
        base = exhaustive.run_batch(flat)
        cold_start(system)
        pruner = DocumentAtATimeEngine(
            system.index, top_k=top_k,
            use_fastpath=config.use_fastpath, prune="auto",
        )
        results = pruner.run_batch(flat)
        if [r.ranking for r in results] != [r.ranking for r in base]:
            violations.append(
                f"{query_set.name}: pruned top-{top_k} differs from "
                "exhaustive evaluation"
            )
        scored_exhaustive = sum(r.documents_scored for r in base)
        scored = sum(r.documents_scored for r in results)
        engaged = sum(1 for r in results if r.pruned)
        total_exhaustive += scored_exhaustive
        total_pruned += scored
        pruned_queries += engaged
        cell["query_sets"][query_set.name] = {
            "queries": len(flat),
            "pruned_queries": engaged,
            "documents_scored_exhaustive": scored_exhaustive,
            "documents_scored": scored,
            "documents_skipped": sum(r.documents_skipped for r in results),
            "blocks_skipped": sum(r.blocks_skipped for r in results),
            "prune_threshold_updates": sum(
                r.prune_threshold_updates for r in results
            ),
        }

    if pruned_queries == 0:
        violations.append("no query engaged pruning (auto always fell back)")
    if total_pruned >= total_exhaustive:
        violations.append(
            f"documents_scored not reduced: {total_pruned} pruned vs "
            f"{total_exhaustive} exhaustive"
        )
    reduction = (
        total_exhaustive / total_pruned if total_pruned else float("inf")
    )
    cell["documents_scored_exhaustive"] = total_exhaustive
    cell["documents_scored"] = total_pruned
    cell["documents_scored_reduction"] = round(reduction, 2)
    if profile_name in GATED_PROFILES and reduction < min_reduction:
        violations.append(
            f"documents-scored reduction {reduction:.2f}x is below the "
            f"{min_reduction:.2f}x floor"
        )

    # -- serve composition: pruned service, shared cache, doubled load ----
    if flat_queries:
        reference = DocumentAtATimeEngine(
            materialize(prepared, config).index,
            top_k=top_k, use_fastpath=config.use_fastpath,
        )
        expected = {
            text: result.ranking
            for text, result in zip(
                flat_queries, reference.run_batch(flat_queries)
            )
        }
        service = QueryService(
            materialize(prepared, config), engine="daat",
            top_k=top_k, prune="auto",
        )
        requests = [
            TimedRequest(text=text, arrival_ms=float(i))
            for i, text in enumerate(flat_queries * 2)
        ]
        report = service.process(requests, name=f"{profile_name}-prune")
        mismatched = sum(
            1 for row in report.served
            if row.result.ranking != expected[row.text]
        )
        if mismatched:
            violations.append(
                f"serve: {mismatched} served result(s) differ from fresh "
                "exhaustive evaluation"
            )
        if report.hit_rate <= 0.0:
            violations.append(
                "serve: repeated queries never hit the result cache"
            )
        cell["serve"] = {
            "requests": len(requests),
            "hit_rate": round(report.hit_rate, 3),
            "mismatched": mismatched,
        }
        service.close()

    cell["violations"] = violations
    cell["ok"] = not violations
    return cell


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    top_k: int = DEFAULT_TOP_K,
    min_reduction: float = DEFAULT_MIN_REDUCTION,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "prune",
        "description": (
            "Dynamic-pruning gate: pruned top-k bit-identical to "
            "exhaustive DAAT on every query set, pruning actually "
            "engaged with documents_scored reduced (floor gated on the "
            "TIPSTER profiles), and a pruned cached service serving "
            "results indistinguishable from fresh exhaustive evaluation."
        ),
        "config": config_name,
        "top_k": top_k,
        "min_reduction": min_reduction,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(profile_name, config_name, top_k, min_reduction)
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_report(report: dict) -> None:
    print(f"prune gate — config {report['config']}, top-k {report['top_k']}")
    for name, cell in report["profiles"].items():
        status = "ok" if cell["ok"] else "FAIL"
        print(
            f"  {name:<12} {status:<4} "
            f"scored {cell['documents_scored']} vs "
            f"{cell['documents_scored_exhaustive']} exhaustive "
            f"({cell['documents_scored_reduction']}x)"
            + (
                f", serve hit rate {cell['serve']['hit_rate']}"
                if "serve" in cell else ""
            )
        )
        for violation in cell["violations"]:
            print(f"    violation: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="dynamic-pruning invariance and effect gate"
    )
    parser.add_argument(
        "--profile", action="append", dest="profiles",
        help="collection profile (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument("--top-k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_REDUCTION,
        dest="min_reduction",
        help="documents-scored reduction floor on the TIPSTER profiles",
    )
    parser.add_argument("--out", default="BENCH_prune.json")
    args = parser.parse_args(argv)
    report = run_benchmark(
        profiles=args.profiles,
        config_name=args.config,
        top_k=args.top_k,
        min_reduction=args.min_reduction,
        out_path=Path(args.out),
    )
    _print_report(report)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
