"""Shared state for the benchmark suite.

Workloads, materialized systems, and measured grids are cached per
process so each ``benchmarks/bench_*.py`` file can ask for what it needs
without re-running the (deterministic) heavy work another file already
did.
"""

from typing import Dict, Sequence

from ..core import (
    CONFIG_NAMES,
    ExperimentGrid,
    IRSystem,
    Workload,
    build_systems,
    load_workload,
    measure_run,
)

#: The paper's collection order, with display names for table rows.
PROFILE_ORDER = ("cacm-s", "legal-s", "tipster1-s", "tipster-s")
DISPLAY_NAMES = {
    "cacm-s": "CACM",
    "legal-s": "Legal",
    "tipster1-s": "TIPSTER 1",
    "tipster-s": "TIPSTER",
}
#: Query set display numbers within their collection (as in the paper).
SET_NUMBERS = {
    "cacm-1": "1", "cacm-2": "2", "cacm-3": "3",
    "legal-1": "1", "legal-2": "2",
    "tipster-1": "1",
}


class BenchRunner:
    """Caches workloads, systems, and grids across benchmark files."""

    def __init__(self):
        self._systems: Dict[str, Dict[str, IRSystem]] = {}
        self._grids: Dict[str, ExperimentGrid] = {}

    def workload(self, profile: str) -> Workload:
        return load_workload(profile)

    def systems(self, profile: str) -> Dict[str, IRSystem]:
        if profile not in self._systems:
            self._systems[profile] = build_systems(self.workload(profile).prepared)
        return self._systems[profile]

    def grid(self, profile: str, config_names: Sequence[str] = CONFIG_NAMES) -> ExperimentGrid:
        """Measured runs for every (query set, configuration) pair."""
        if profile not in self._grids:
            workload = self.workload(profile)
            systems = self.systems(profile)
            grid = ExperimentGrid(collection=profile)
            for query_set in workload.query_sets:
                grid.cells[query_set.name] = {}
                for name in config_names:
                    grid.cells[query_set.name][name] = measure_run(
                        systems[name], query_set.queries, query_set.name
                    )
            self._grids[profile] = grid
        return self._grids[profile]

    def all_grids(self) -> Dict[str, ExperimentGrid]:
        return {profile: self.grid(profile) for profile in PROFILE_ORDER}
