"""Benchmark drivers: regenerate every table and figure of the paper.

``benchmarks/bench_*.py`` are thin pytest-benchmark wrappers over this
package; see DESIGN.md section 4 for the experiment index.
"""

from .ablations import (
    UpdateCosts,
    reservation_ablation,
    segment_size_ablation,
    split_large_buffer_ablation,
    update_extension_experiment,
)
from .figures import (
    FIGURE3_MULTIPLIERS,
    figure1_size_distribution,
    figure2_term_use,
    figure3_buffer_sweep,
)
from .paper import write_full_report
from .report import emit, render_plot, render_table
from .runner import DISPLAY_NAMES, PROFILE_ORDER, SET_NUMBERS, BenchRunner
from .tables import (
    table1_collections,
    table2_buffers,
    table3_wall_clock,
    table4_system_io,
    table5_io_stats,
    table6_hit_rates,
)

__all__ = [
    "BenchRunner",
    "DISPLAY_NAMES",
    "FIGURE3_MULTIPLIERS",
    "PROFILE_ORDER",
    "SET_NUMBERS",
    "UpdateCosts",
    "emit",
    "figure1_size_distribution",
    "figure2_term_use",
    "figure3_buffer_sweep",
    "render_plot",
    "render_table",
    "reservation_ablation",
    "segment_size_ablation",
    "split_large_buffer_ablation",
    "table1_collections",
    "table2_buffers",
    "table3_wall_clock",
    "table4_system_io",
    "table5_io_stats",
    "table6_hit_rates",
    "update_extension_experiment",
    "write_full_report",
]
