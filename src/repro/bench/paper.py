"""One-shot regeneration of the paper's whole evaluation section."""

from pathlib import Path
from typing import Optional

from .figures import (
    figure1_size_distribution,
    figure2_term_use,
    figure3_buffer_sweep,
)
from .report import render_plot, render_table
from .runner import BenchRunner
from .tables import (
    table1_collections,
    table2_buffers,
    table3_wall_clock,
    table4_system_io,
    table5_io_stats,
    table6_hit_rates,
)


def write_full_report(
    runner: Optional[BenchRunner] = None,
    path: Optional[Path] = None,
    include_figure3: bool = True,
) -> str:
    """Regenerate every table and figure into one text report.

    ``include_figure3`` gates the buffer-size sweep, the slowest piece
    (ten cold-started TIPSTER runs).  The report string is returned and,
    if ``path`` is given, also written there.
    """
    runner = runner or BenchRunner()
    sections = [
        "Reproduction report: Brown, Callan, Moss & Croft (EDBT 1994)",
        "=" * 62,
        "",
        "All quantities are simulated and scaled; compare shapes, not",
        "absolute values (see EXPERIMENTS.md).",
        "",
    ]

    for number, title, builder in (
        (1, "Table 1: Document collection statistics (KB)", table1_collections),
        (2, "Table 2: Mneme buffer sizes (KB)", table2_buffers),
        (3, "Table 3: Wall-clock times (simulated seconds)", table3_wall_clock),
        (4, "Table 4: System CPU plus I/O times (simulated seconds)", table4_system_io),
        (5, "Table 5: I/O statistics (I, A, B)", table5_io_stats),
        (6, "Table 6: Buffer hit rates", table6_hit_rates),
    ):
        headers, rows = builder(runner)
        sections.append(render_table(title, headers, rows))

    legal = runner.workload("legal-s")
    xs, series = figure1_size_distribution(legal.prepared)
    sections.append(render_plot(
        "Figure 1: Cumulative distribution of inverted list sizes (Legal)",
        xs, series, x_label="record size (bytes)", y_label="cumulative %",
        log_x=True,
    ))
    points = figure2_term_use(legal.prepared, legal.query_sets[1])
    sections.append(render_plot(
        "Figure 2: Frequency of use of inverted list sizes (Legal QS2)",
        [float(s) for s, _u in points],
        {"uses": [float(u) for _s, u in points]},
        x_label="record size (bytes)", y_label="uses", log_x=True,
    ))
    if include_figure3:
        sizes, rates = figure3_buffer_sweep(runner, "tipster-s")
        sections.append(render_plot(
            "Figure 3: Large buffer hit rate vs buffer size (TIPSTER QS1)",
            [s / 1e6 for s in sizes], {"hit rate": rates},
            x_label="buffer size (millions of bytes)", y_label="hit rate",
        ))

    report = "\n".join(sections)
    if path is not None:
        Path(path).write_text(report)
    return report
