"""Term-cache gate: decoded-postings caching must be invisible and pay.

The decoded-term cache (:class:`~repro.serve.termcache.TermCache`) sits
between the block LRU buffers and the result cache: a byte-budgeted,
epoch-aware cache of decoded inverted-list records, per replica.  Its
contract has two halves and this gate checks both, per collection
profile, on simulated time:

* **invisibility** — with the cache attached, every ranking (beliefs,
  tie order), ``documents_scored``, ``documents_skipped`` and
  ``blocks_skipped`` is bit-identical to the cache-off run: on a
  repeat-heavy flat term-at-a-time stream, on pruned document-at-a-time
  evaluation, on an N=2/R=1 sharded run, and under a byte budget small
  enough to force evictions;
* **payoff** — the repeat-heavy stream hits above 50%, elides record
  lookups, and on the two TIPSTER profiles cuts the simulated
  per-query p50 to at most 0.8x the cache-off run;
* **freshness** — a mixed ingest/query schedule (document adds +
  tombstone deletes between query waves) serves *zero* stale results:
  every post-batch ranking equals a stop-the-world rebuild of exactly
  that epoch's corpus, and a post-compaction probe through the folded
  cache still matches;
* **discipline** — resident bytes never exceed the configured budget
  (peak included), and two fresh runs produce byte-identical reports,
  the per-operation hit/miss/eviction trace included.

Everything is seeded and simulated, so the whole report is a pure
function of the code: ``--check`` gates every cell by exact equality
against the committed baseline.

Run it directly::

    PYTHONPATH=src python -m repro.bench.termcache             # write baseline
    PYTHONPATH=src python -m repro.bench.termcache --check     # gate a change

(or ``scripts/bench.sh termcache``).  Writes ``BENCH_termcache.json``;
exit status 0 on pass, 1 on violation or drift, 2 on operator error
(missing/unreadable baseline).
"""

import argparse
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from ..core.config import config_by_name
from ..core.metrics import cold_start
from ..core.prepared import materialize, prepare_collection
from ..core.stats import latency_summary
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K, RetrievalEngine
from ..live import LiveCorpus, reference_rankings
from ..serve import QueryService
from ..serve.termcache import TermCache
from ..shard.metrics import measure_sharded_run
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from .ingest import _schedule
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-linked"
#: Distinct queries in the pool; the stream repeats the pool.
DEFAULT_QUERIES = 6
#: Passes over the pool — the repeat-heavy profile the paper's
#: record-caching experiment models (Figure 2's skewed term reuse).
DEFAULT_PASSES = 3
#: Byte budget for the main phases: generous, so the hit rate is the
#: stream's repeat structure rather than an eviction artifact.
DEFAULT_BUDGET = 1 << 22
#: Floor for the eviction-phase budget (the phase sizes itself to half
#: the main run's peak so the working set provably cannot fit).
SMALL_BUDGET_FLOOR = 512
#: Profiles whose records are large enough that eliding the decode must
#: show up as a p50 win; the small profiles only assert invisibility.
P50_PROFILES = ("tipster1-s", "tipster-s")
P50_BAND = 0.8
MIN_HIT_RATE = 0.5
#: Mixed-schedule shape (adds per batch; a third deleted), as in the
#: ingest gate but with the term cache attached.
BATCH_ADDS = 9
DEFAULT_EPOCHS = 2


def _round_ranking(ranking) -> list:
    return [[doc, round(belief, 12)] for doc, belief in ranking]


def _trace_digest(cache: TermCache) -> dict:
    """The full hit/miss/eviction trace, digested for the report."""
    trace = list(cache.trace or [])
    payload = json.dumps(trace, sort_keys=True).encode()
    return {
        "operations": len(trace),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "head": [list(op) for op in trace[:8]],
    }


def _flat_run(
    prepared, config, stream: List[str], budget: int,
    max_entry_fraction: float = 0.25,
) -> dict:
    """One pass of the repeat-heavy stream through flat term-at-a-time."""
    system = materialize(prepared, config)
    cold_start(system)
    engine = RetrievalEngine(
        system.index, top_k=DEFAULT_TOP_K,
        use_reservation=config.use_reservation,
        use_fastpath=config.use_fastpath,
    )
    cache = (
        TermCache(budget, max_entry_fraction=max_entry_fraction,
                  record_trace=True)
        if budget > 0 else None
    )
    engine.term_cache = cache
    disk_before = system.fs.disk.stats.copy()
    lookups_before = system.index.store.record_lookups
    walls: List[float] = []
    rankings: List[list] = []
    for text in stream:
        clock_start = system.clock.snapshot()
        result = engine.run_query(text)
        walls.append(system.clock.since(clock_start).wall_ms)
        rankings.append(_round_ranking(result.ranking))
    return {
        "rankings": rankings,
        "walls_ms": walls,
        "p50_ms": latency_summary(walls)["p50_ms"],
        "io_inputs": (system.fs.disk.stats - disk_before).blocks_read,
        "record_lookups": system.index.store.record_lookups - lookups_before,
        "cache": cache,
    }


def _daat_run(
    prepared, config, stream: List[str], budget: int, prune: str
) -> dict:
    """The same stream through document-at-a-time (optionally pruned)."""
    system = materialize(prepared, config)
    cold_start(system)
    engine = DocumentAtATimeEngine(
        system.index, top_k=DEFAULT_TOP_K,
        use_fastpath=config.use_fastpath, prune=prune,
    )
    cache = TermCache(budget) if budget > 0 else None
    engine.term_cache = cache
    rankings, scored, skipped, blocks = [], [], [], []
    for text in stream:
        result = engine.run_query(text)
        rankings.append(_round_ranking(result.ranking))
        scored.append(result.documents_scored)
        skipped.append(result.documents_skipped)
        blocks.append(result.blocks_skipped)
    return {
        "rankings": rankings,
        "documents_scored": scored,
        "documents_skipped": skipped,
        "blocks_skipped": blocks,
        "cache": cache,
    }


def _check_budget(label: str, cache, budget: int, violations: List[str]):
    if cache is not None and cache.stats.peak_bytes > budget:
        violations.append(
            f"{label}: peak resident {cache.stats.peak_bytes} bytes "
            f"exceeded the {budget}-byte budget"
        )


def _mixed_run(
    prepared, corpus: LiveCorpus, config, pool: List[str],
    budget: int, epochs: int,
) -> dict:
    """Ingest batches interleaved with cached query waves, vs rebuilds."""
    violations: List[str] = []
    backend = materialize(prepared, config)
    service = QueryService(backend, engine="taat", term_cache_bytes=budget)
    plan = _schedule(corpus, epochs, BATCH_ADDS)
    stale = 0
    epoch_rankings: List[dict] = []
    reference: Dict[str, list] = {}
    for add_ids, delete_ids, live_ids in plan:
        adds = [corpus.document(doc_id) for doc_id in add_ids]
        deletes = corpus.documents_for(delete_ids)
        report = service.ingest(adds=adds, deletes=deletes)
        reference = reference_rankings(
            config, corpus.documents_for(live_ids), pool
        )
        served = {}
        for text in pool:
            ranking = service.serve_one(text).ranking
            if ranking != reference[text]:
                stale += 1
            served[text] = _round_ranking(ranking)
        epoch_rankings.append({"epoch": report.epoch, "rankings": served})
    summary = service.compact()
    # Probe the *term cache itself* after compaction: the result cache
    # would answer the pool from its still-valid entries, so a fresh
    # engine sharing the service's term cache is the only way to prove
    # the folded entries still rank identically.
    post_ok = True
    caches = service.term_caches()
    engine = RetrievalEngine(
        backend.index, top_k=DEFAULT_TOP_K,
        use_reservation=config.use_reservation,
        use_fastpath=config.use_fastpath,
    )
    if caches:
        engine.term_cache = caches[0]
    for text in pool:
        if engine.run_query(text).ranking != reference[text]:
            post_ok = False
    stats = service.term_cache_stats()
    if stale:
        violations.append(
            f"mixed: {stale} served rankings differed from the epoch's "
            "stop-the-world rebuild (stale cache entries)"
        )
    if not post_ok:
        violations.append(
            "mixed: post-compaction probe through the folded term cache "
            "differed from the rebuild"
        )
    if stats.lookups == 0:
        violations.append("mixed: the term cache was never probed")
    for cache in caches:
        _check_budget("mixed", cache, budget, violations)
    return {
        "cell": {
            "epochs": len(plan),
            "stale_rankings": stale,
            "post_compaction_identical": post_ok,
            "tombstones_folded": summary.tombstones_folded,
            "invalidated_terms": stats.invalidated_terms,
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "peak_bytes": stats.peak_bytes,
            "epoch_rankings": epoch_rankings,
        },
        "violations": violations,
    }


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    n_queries: int = DEFAULT_QUERIES,
    passes: int = DEFAULT_PASSES,
    budget: int = DEFAULT_BUDGET,
) -> dict:
    """The full term-cache contract for one collection profile."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    corpus = LiveCorpus(collection)
    prepared = prepare_collection(collection)
    query_set = generate_query_set(collection, _query_profiles(profile_name)[0])
    pool = query_set.queries[:n_queries]
    stream = pool * passes
    daat_pool = _daat_queries(query_set.queries)[: max(2, n_queries // 2)]
    daat_stream = daat_pool * passes
    config = config_by_name(config_name)

    # -- flat term-at-a-time: invisibility + payoff -----------------------
    off = _flat_run(prepared, config, stream, 0)
    on = _flat_run(prepared, config, stream, budget)
    cache = on["cache"]
    if on["rankings"] != off["rankings"]:
        violations.append("flat: cache-on rankings differ from cache-off")
    if cache.stats.hit_rate <= MIN_HIT_RATE:
        violations.append(
            f"flat: hit rate {cache.stats.hit_rate:.3f} on the repeat-heavy "
            f"stream (needs > {MIN_HIT_RATE})"
        )
    if on["record_lookups"] >= off["record_lookups"]:
        violations.append(
            f"flat: cache elided no record lookups "
            f"({off['record_lookups']} -> {on['record_lookups']})"
        )
    _check_budget("flat", cache, budget, violations)
    p50_ratio = (
        on["p50_ms"] / off["p50_ms"] if off["p50_ms"] > 0 else 1.0
    )
    if profile_name in P50_PROFILES and p50_ratio > P50_BAND:
        violations.append(
            f"flat: cache-on p50 is {p50_ratio:.3f}x cache-off "
            f"(needs <= {P50_BAND}) on {profile_name}"
        )
    flat_cell = {
        "p50_off_ms": round(off["p50_ms"], 6),
        "p50_on_ms": round(on["p50_ms"], 6),
        "p50_ratio": round(p50_ratio, 4),
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "hit_rate": round(cache.stats.hit_rate, 4),
        "io_inputs_off": off["io_inputs"],
        "io_inputs_on": on["io_inputs"],
        "record_lookups_off": off["record_lookups"],
        "record_lookups_on": on["record_lookups"],
        "peak_bytes": cache.stats.peak_bytes,
        "identical": on["rankings"] == off["rankings"],
        "trace": _trace_digest(cache),
    }

    # -- pruned document-at-a-time ----------------------------------------
    pruned_off = _daat_run(prepared, config, daat_stream, 0, "auto")
    pruned_on = _daat_run(prepared, config, daat_stream, budget, "auto")
    pruned_identical = all(
        pruned_on[key] == pruned_off[key]
        for key in ("rankings", "documents_scored", "documents_skipped",
                    "blocks_skipped")
    )
    if not pruned_identical:
        violations.append(
            "pruned: cache-on observables differ from cache-off"
        )
    if pruned_on["cache"].stats.hits == 0:
        violations.append("pruned: the block-tape cache never hit")
    _check_budget("pruned", pruned_on["cache"], budget, violations)
    pruned_cell = {
        "identical": pruned_identical,
        "hits": pruned_on["cache"].stats.hits,
        "misses": pruned_on["cache"].stats.misses,
        "documents_skipped": sum(pruned_on["documents_skipped"]),
        "blocks_skipped": sum(pruned_on["blocks_skipped"]),
        "peak_bytes": pruned_on["cache"].stats.peak_bytes,
    }

    # -- sharded N=2 / R=1 -------------------------------------------------
    shard_off = measure_sharded_run(
        materialize(prepared, config, shards=2, replicas=1),
        stream, engine="taat",
    )
    shard_on = measure_sharded_run(
        materialize(prepared, config, shards=2, replicas=1),
        stream, engine="taat", term_cache_bytes=budget,
    )
    shard_identical = (
        [_round_ranking(r.ranking) for r in shard_off.results]
        == [_round_ranking(r.ranking) for r in shard_on.results]
    )
    if not shard_identical:
        violations.append("sharded: cache-on rankings differ from cache-off")
    if shard_on.term_cache_hits == 0:
        violations.append("sharded: the per-replica caches never hit")
    if shard_on.term_cache_bytes > budget:
        violations.append(
            f"sharded: resident {shard_on.term_cache_bytes} bytes "
            f"exceeded the {budget}-byte budget"
        )
    shard_cell = {
        "identical": shard_identical,
        "hits": shard_on.term_cache_hits,
        "misses": shard_on.term_cache_misses,
        "record_lookups_off": shard_off.record_lookups,
        "record_lookups_on": shard_on.record_lookups,
        "resident_bytes": shard_on.term_cache_bytes,
    }

    # -- eviction pressure: a budget the working set cannot fit -----------
    # Half the main run's peak (itself deterministic), with oversize
    # rejection disabled so the pressure shows up as evictions.
    small_budget = max(SMALL_BUDGET_FLOOR, cache.stats.peak_bytes // 2)
    small = _flat_run(
        prepared, config, stream, small_budget, max_entry_fraction=1.0
    )
    if small["rankings"] != off["rankings"]:
        violations.append("small-budget: rankings differ from cache-off")
    if small["cache"].stats.evictions == 0:
        violations.append(
            f"small-budget: the {small_budget}-byte budget forced no "
            "evictions — the pressure phase is vacuous"
        )
    _check_budget("small-budget", small["cache"], small_budget, violations)
    small_cell = {
        "budget_bytes": small_budget,
        "identical": small["rankings"] == off["rankings"],
        "evictions": small["cache"].stats.evictions,
        "rejected_oversize": small["cache"].stats.rejected_oversize,
        "hits": small["cache"].stats.hits,
        "peak_bytes": small["cache"].stats.peak_bytes,
    }

    # -- mixed ingest/query schedule: zero stale hits ----------------------
    mixed = _mixed_run(
        prepared, corpus, config_by_name(config_name, use_wal=True),
        pool, budget, DEFAULT_EPOCHS,
    )
    violations.extend(mixed["violations"])

    # -- determinism: the cache-on flat phase again, fresh build ----------
    again = _flat_run(prepared, config, stream, budget)
    deterministic = (
        json.dumps(
            [on["rankings"], on["walls_ms"], list(on["cache"].trace or [])],
            sort_keys=True,
        )
        == json.dumps(
            [again["rankings"], again["walls_ms"],
             list(again["cache"].trace or [])],
            sort_keys=True,
        )
    )
    if not deterministic:
        violations.append(
            "determinism: two identical cache-on runs produced different "
            "traces"
        )

    return {
        "config": config_name,
        "budget_bytes": budget,
        "queries": len(pool),
        "stream_len": len(stream),
        "flat": flat_cell,
        "pruned": pruned_cell,
        "sharded": shard_cell,
        "small_budget": small_cell,
        "mixed": mixed["cell"],
        "deterministic": deterministic,
        "violations": violations,
        "ok": not violations,
    }


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    n_queries: int = DEFAULT_QUERIES,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "termcache",
        "description": (
            "Decoded-postings term cache across the serving stack: on a "
            "repeat-heavy stream the cache-on run is bit-identical to "
            "cache-off (flat term-at-a-time, pruned document-at-a-time, "
            "N=2/R=1 sharded, and under eviction pressure), hits above "
            "50% and elides record lookups, cuts simulated p50 on the "
            "TIPSTER profiles, never exceeds its byte budget, serves "
            "zero stale rankings through a mixed ingest/query schedule "
            "(every post-batch wave equal to a stop-the-world rebuild, "
            "post-compaction probe included), and produces byte-identical "
            "traces across fresh runs."
        ),
        "config": config_name,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(profile_name, config_name, n_queries)
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: Per-profile report keys gated by exact equality in ``--check`` — all
#: pure functions of the seeded, simulated run.
DETERMINISTIC_KEYS = (
    "budget_bytes",
    "queries",
    "stream_len",
    "flat",
    "pruned",
    "sharded",
    "small_budget",
    "mixed",
    "deterministic",
)


def compare_reports(current: dict, baseline: dict) -> List[str]:
    """Drift of ``current`` against ``baseline`` (empty = pass).

    Everything this gate measures is deterministic, so the comparison
    is exact equality per cell — any drift at all is a behavior change.
    """
    failures: List[str] = []
    for profile_name, base_cell in baseline.get("profiles", {}).items():
        cell = current.get("profiles", {}).get(profile_name)
        if cell is None:
            failures.append(f"{profile_name}: missing from the current run")
            continue
        if not cell.get("ok", False):
            for violation in cell.get("violations", ["violations recorded"]):
                failures.append(f"{profile_name}: {violation}")
        for key in DETERMINISTIC_KEYS:
            if cell.get(key) != base_cell.get(key):
                failures.append(
                    f"{profile_name}: {key} drifted from "
                    f"{base_cell.get(key)!r} to {cell.get(key)!r}"
                )
    return failures


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        flat = cell["flat"]
        print(f"{name} ({cell['config']}, {cell['stream_len']}-query stream):")
        print(
            f"  flat: p50 {flat['p50_off_ms']} -> {flat['p50_on_ms']} ms "
            f"({flat['p50_ratio']}x), hit rate {flat['hit_rate']}, "
            f"lookups {flat['record_lookups_off']} -> "
            f"{flat['record_lookups_on']}"
        )
        print(
            f"  pruned: identical={cell['pruned']['identical']} "
            f"hits={cell['pruned']['hits']}; "
            f"sharded: identical={cell['sharded']['identical']} "
            f"hits={cell['sharded']['hits']}; "
            f"evictions under pressure: {cell['small_budget']['evictions']}"
        )
        mixed = cell["mixed"]
        print(
            f"  mixed: {mixed['epochs']} epochs, "
            f"{mixed['stale_rankings']} stale, "
            f"{mixed['invalidated_terms']} terms invalidated, "
            f"post-compaction identical: "
            f"{mixed['post_compaction_identical']}"
        )
        print(f"  trace deterministic: {cell['deterministic']}")
        for violation in cell["violations"]:
            print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--queries", type=int, default=DEFAULT_QUERIES,
        help="distinct queries in the repeated pool (default 6)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default ./BENCH_termcache.json; "
        "not written in --check mode unless given explicitly)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of writing it; "
        "exit non-zero on drift or violation",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("BENCH_termcache.json"),
        help="baseline JSON to gate against (with --check)",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; run without --check first")
            return 2
        except OSError as error:
            print(
                f"cannot read baseline {args.baseline}: "
                f"{error.strerror or error}"
            )
            return 2
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(
                f"baseline {args.baseline} is not valid JSON ({error}); "
                "regenerate it by running without --check"
            )
            return 2
        if not isinstance(baseline, dict) or "profiles" not in baseline:
            print(
                f"baseline {args.baseline} is not a termcache report "
                "(no 'profiles' key); regenerate it by running without --check"
            )
            return 2
        if args.profiles:
            missing = [
                name for name in args.profiles
                if name not in baseline["profiles"]
            ]
            if missing:
                print(
                    f"baseline {args.baseline} lacks profile(s) "
                    f"{', '.join(missing)}; regenerate it by running "
                    "without --check"
                )
                return 2
            baseline = dict(
                baseline,
                profiles={
                    name: baseline["profiles"][name]
                    for name in args.profiles
                },
            )
        report = run_benchmark(args.profiles, args.config, args.queries, args.out)
        _print_report(report)
        failures = compare_reports(report, baseline)
        if failures:
            print("\nTERM-CACHE GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nterm-cache gate passed (every cell equal to the baseline)")
        return 0

    out_path = args.out if args.out is not None else Path("BENCH_termcache.json")
    report = run_benchmark(args.profiles, args.config, args.queries, out_path)
    _print_report(report)
    if not report["ok"]:
        print("\nTERM-CACHE GATE FAILED")
        return 1
    print(
        "\nterm-cache gate passed (bit-identical with the cache on, "
        "budget respected, zero stale rankings)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
