"""Ingest gate: continuous mutation must be observationally exact.

The live-ingest subsystem's contract is the paper's incremental-update
claim made checkable: document adds and tombstone deletes interleave
with query traffic, and nothing a client observes may differ from a
stop-the-world rebuild.  For each collection profile this gate runs a
deterministic mixed read/write schedule — alternating ingest batches
and query waves through the serving layer — and checks, on simulated
time:

* **per-epoch bit-identity** — after every published epoch, every
  served TAAT ranking (and a pruned document-at-a-time spot check on
  the flat query subset) is bit-identical to a from-scratch
  :class:`~repro.inquery.IndexBuilder` rebuild of exactly that epoch's
  live corpus;
* **tombstone absence** — no deleted document ever appears in any
  ranking after the epoch that deleted it;
* **atomic cache epochs** — each ingest batch invalidates the result
  cache exactly once, and every batch seals its WAL epoch-commit
  marker;
* **concurrent compaction** — a mid-traffic compaction folds the
  tombstones out and reclaims bytes with *zero* observable drift: the
  post-compaction wave is answered entirely from the still-valid cache
  and its rankings equal the rebuild reference;
* **sharded routing** — the same schedule against an N=2, R=1 sharded
  system: mutations route to the owning shard's replica group, mirrors
  are verified byte-identical after every epoch, and rankings match
  the same *flat* rebuild (composing with the sharded-equals-flat
  invariant);
* **determinism** — two fresh builds through the same schedule produce
  byte-identical traces (rankings, epoch reports, latencies).

Everything is simulated and seeded, so the whole report is a pure
function of the code: ``--check`` gates every cell by exact equality
against the committed baseline.

Run it directly::

    PYTHONPATH=src python -m repro.bench.ingest             # write baseline
    PYTHONPATH=src python -m repro.bench.ingest --check     # gate a change

(or ``scripts/bench.sh ingest``).  Writes ``BENCH_ingest.json``; exit
status 0 on pass, 1 on violation or drift, 2 on operator error
(missing/unreadable baseline).
"""

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.config import config_by_name
from ..core.prepared import materialize, prepare_collection
from ..core.stats import latency_summary
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K
from ..live import LiveCorpus, reference_rankings
from ..serve import QueryService
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from ..synth.traffic import TimedRequest
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-linked"
#: Queries per wave (every wave re-serves the same pool, so cache
#: behavior across epochs is part of the contract).
DEFAULT_QUERIES = 6
#: Ingest batches (= published epochs) per scenario.
DEFAULT_EPOCHS = 2
#: Documents added per batch; a third of the batch is deleted.
BATCH_ADDS = 12


def _schedule(
    corpus: LiveCorpus, epochs: int, batch: int
) -> List[Tuple[List[int], List[int], List[int]]]:
    """The mutation plan: per epoch, (add ids, delete ids, live ids).

    A pure function of the base corpus size, shared by every scenario
    in the profile — flat, sharded, and the determinism re-run — so
    the expensive per-epoch rebuild references are computed once.
    """
    live = set(corpus.base_ids)
    next_id = corpus.base_count
    plan = []
    for _ in range(epochs):
        add_ids = list(range(next_id + 1, next_id + batch + 1))
        next_id += batch
        delete_ids = sorted(live)[: batch // 3]
        live.update(add_ids)
        live.difference_update(delete_ids)
        plan.append((add_ids, delete_ids, sorted(live)))
    return plan


def _round_rankings(rankings: Dict[str, list]) -> dict:
    return {
        text: [[doc, round(belief, 12)] for doc, belief in ranking]
        for text, ranking in rankings.items()
    }


def _mixed_run(
    backend,
    corpus: LiveCorpus,
    plan,
    refs,
    queries: List[str],
    daat_pool: List[str],
) -> Tuple[dict, List[str], dict]:
    """One mixed read/write scenario; returns (cell, violations, trace)."""
    violations: List[str] = []
    service = QueryService(backend, engine="taat", workers=2)
    pipeline = service.ingest_pipeline
    sharded = pipeline.sharded
    label = "sharded" if sharded else "flat"
    latencies: List[float] = []
    trace: dict = {"epochs": []}
    ingest_wall_ms = 0.0
    docs_added = docs_deleted = 0
    wal_marked = True
    deleted_ever: set = set()
    nonempty_rankings = 0

    for step, (add_ids, delete_ids, _live_ids) in enumerate(plan):
        adds = [corpus.document(doc_id) for doc_id in add_ids]
        deletes = corpus.documents_for(delete_ids)
        invalidations_before = service.cache.stats.invalidations
        report = service.ingest(adds=adds, deletes=deletes)
        ingest_wall_ms += report.wall_ms
        docs_added += report.docs_added
        docs_deleted += report.docs_deleted
        wal_marked = wal_marked and report.wal_marked
        deleted_ever.update(delete_ids)
        if service.cache.stats.invalidations - invalidations_before != 1:
            violations.append(
                f"{label}: epoch {report.epoch} did not invalidate the "
                "cache exactly once"
            )
        if sharded and report.groups_verified != backend.n_shards:
            violations.append(
                f"{label}: epoch {report.epoch} verified "
                f"{report.groups_verified} replica groups, "
                f"expected {backend.n_shards}"
            )

        run = service.process(
            [TimedRequest(text=text, arrival_ms=0.0, seq=i)
             for i, text in enumerate(queries)],
            name=f"{label}-epoch-{report.epoch}",
        )
        latencies.extend(run.latencies_ms())
        reference = refs[step]["taat"]
        for row in run.served:
            nonempty_rankings += bool(row.result.ranking)
            if row.result.ranking != reference[row.text]:
                violations.append(
                    f"{label}: epoch {report.epoch} ranking for "
                    f"{row.text!r} differs from the rebuild"
                )
            if any(doc in deleted_ever for doc, _ in row.result.ranking):
                violations.append(
                    f"{label}: epoch {report.epoch} ranked a deleted "
                    f"document for {row.text!r}"
                )
        # Pruned document-at-a-time spot check against the *exhaustive*
        # rebuild: live pruning over tombstoned records must stay
        # admissible.
        if sharded:
            outcome = backend.scheduler(
                top_k=DEFAULT_TOP_K, engine="daat", prune="auto"
            ).run_wave(daat_pool)
            live_daat = {
                text: result.ranking
                for text, result in zip(daat_pool, outcome.results)
            }
        else:
            engine = DocumentAtATimeEngine(
                backend.index, top_k=DEFAULT_TOP_K, prune="auto",
                use_fastpath=backend.config.use_fastpath,
            )
            live_daat = {
                text: engine.run_query(text).ranking for text in daat_pool
            }
        for text in daat_pool:
            if live_daat[text] != refs[step]["daat"][text]:
                violations.append(
                    f"{label}: epoch {report.epoch} pruned daat ranking "
                    f"for {text!r} differs from the exhaustive rebuild"
                )
        trace["epochs"].append({
            "epoch": report.epoch,
            "added": report.docs_added,
            "deleted": report.docs_deleted,
            "shards_touched": list(report.shards_touched),
            "wall_ms": round(report.wall_ms, 6),
            "rankings": _round_rankings(
                {row.text: row.result.ranking for row in run.served}
            ),
            "latencies_ms": [round(v, 6) for v in latencies[-len(queries):]],
        })

    # -- mid-traffic compaction: zero observable drift --------------------
    summary = service.compact()
    post = service.process(
        [TimedRequest(text=text, arrival_ms=0.0, seq=i)
         for i, text in enumerate(queries)],
        name=f"{label}-post-compaction",
    )
    reference = refs[len(plan) - 1]["taat"]
    if any(row.result.ranking != reference[row.text] for row in post.served):
        violations.append(f"{label}: compaction changed a served ranking")
    if post.hit_rate != 1.0:
        violations.append(
            f"{label}: compaction invalidated the cache (post-compaction "
            f"hit rate {post.hit_rate}, expected 1.0)"
        )
    if summary.tombstones_folded == 0:
        violations.append(f"{label}: compaction found no tombstones to fold")
    if summary.bytes_reclaimed <= 0:
        violations.append(f"{label}: compaction reclaimed nothing")
    if not wal_marked:
        violations.append(f"{label}: an epoch published without a WAL marker")
    if nonempty_rankings == 0:
        violations.append(
            f"{label}: every served ranking was empty — the identity "
            "checks are vacuous"
        )

    digest = latency_summary(latencies)
    cell = {
        "epochs": len(plan),
        "docs_added": docs_added,
        "docs_deleted": docs_deleted,
        "ingest_wall_ms": round(ingest_wall_ms, 4),
        "ingest_docs_per_s": round(
            (docs_added + docs_deleted) / ingest_wall_ms * 1000.0, 4
        ) if ingest_wall_ms > 0 else 0.0,
        "query_p50_ms": round(digest["p50_ms"], 4),
        "query_mean_ms": round(digest["mean_ms"], 4),
        "cache_invalidations": service.cache.stats.invalidations,
        "wal_marked": wal_marked,
        "compaction": {
            "tombstones_folded": summary.tombstones_folded,
            "records_rewritten": summary.records_rewritten,
            "bytes_reclaimed": summary.bytes_reclaimed,
            "segments_copied": summary.segments_copied,
            "post_compaction_hit_rate": round(post.hit_rate, 4),
        },
    }
    if sharded:
        cell["groups_verified_per_epoch"] = backend.n_shards
    trace["compaction"] = dict(cell["compaction"])
    return cell, violations, trace


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    n_queries: int = DEFAULT_QUERIES,
    epochs: int = DEFAULT_EPOCHS,
) -> dict:
    """The full live-ingest contract for one collection profile."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    corpus = LiveCorpus(collection)
    prepared = prepare_collection(collection)
    query_set = generate_query_set(collection, _query_profiles(profile_name)[0])
    queries = query_set.queries[:n_queries]
    daat_pool = _daat_queries(query_set.queries)[: max(2, n_queries // 2)]
    # WAL on: ingest batches must seal epoch-commit markers.
    config = config_by_name(config_name, use_wal=True)

    plan = _schedule(corpus, epochs, BATCH_ADDS)
    # One rebuild reference per epoch, shared by every scenario (the
    # mutation schedule, hence the live corpus, is identical in all).
    refs = []
    for _add_ids, _delete_ids, live_ids in plan:
        documents = corpus.documents_for(live_ids)
        refs.append({
            "taat": reference_rankings(config, documents, queries),
            "daat": reference_rankings(
                config, documents, daat_pool, engine="daat"
            ),
        })

    flat_cell, flat_violations, flat_trace = _mixed_run(
        materialize(prepared, config), corpus, plan, refs, queries, daat_pool
    )
    violations.extend(flat_violations)

    sharded_cell, sharded_violations, _sharded_trace = _mixed_run(
        materialize(prepared, config, shards=2, replicas=1),
        corpus, plan, refs, queries, daat_pool,
    )
    violations.extend(sharded_violations)

    # -- determinism: the flat scenario again, from a fresh build ---------
    cell_b, violations_b, trace_b = _mixed_run(
        materialize(prepared, config), corpus, plan, refs, queries, daat_pool
    )
    violations.extend(violations_b)
    deterministic = (
        json.dumps([flat_cell, flat_trace], sort_keys=True)
        == json.dumps([cell_b, trace_b], sort_keys=True)
    )
    if not deterministic:
        violations.append(
            "determinism: two identical mixed read/write runs produced "
            "different traces"
        )

    return {
        "config": config_name,
        "queries": len(queries),
        "daat_queries": len(daat_pool),
        "flat": flat_cell,
        "sharded": sharded_cell,
        "deterministic": deterministic,
        "violations": violations,
        "ok": not violations,
    }


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    n_queries: int = DEFAULT_QUERIES,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "ingest",
        "description": (
            "Mixed read/write serving on simulated time: deterministic "
            "ingest batches (adds + tombstone deletes) interleave with "
            "query waves, every served ranking per epoch is bit-identical "
            "to a stop-the-world rebuild of that epoch's corpus (flat and "
            "N=2/R=1 sharded, TAAT and pruned DAAT), each batch "
            "invalidates the result cache exactly once and seals a WAL "
            "epoch-commit marker, replica mirrors verify byte-identical "
            "after every epoch, and a mid-traffic compaction folds "
            "tombstones out with zero observable drift."
        ),
        "config": config_name,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(profile_name, config_name, n_queries)
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: Per-profile report keys gated by exact equality in ``--check`` — all
#: pure functions of the seeded, simulated run.
DETERMINISTIC_KEYS = (
    "queries",
    "daat_queries",
    "flat",
    "sharded",
    "deterministic",
)


def compare_reports(current: dict, baseline: dict) -> List[str]:
    """Drift of ``current`` against ``baseline`` (empty = pass).

    Everything this gate measures is deterministic, so the comparison
    is exact equality per cell — any drift at all is a behavior change.
    """
    failures: List[str] = []
    for profile_name, base_cell in baseline.get("profiles", {}).items():
        cell = current.get("profiles", {}).get(profile_name)
        if cell is None:
            failures.append(f"{profile_name}: missing from the current run")
            continue
        if not cell.get("ok", False):
            for violation in cell.get("violations", ["violations recorded"]):
                failures.append(f"{profile_name}: {violation}")
        for key in DETERMINISTIC_KEYS:
            if cell.get(key) != base_cell.get(key):
                failures.append(
                    f"{profile_name}: {key} drifted from "
                    f"{base_cell.get(key)!r} to {cell.get(key)!r}"
                )
    return failures


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        print(f"{name} ({cell['config']}, {cell['queries']} queries):")
        for label in ("flat", "sharded"):
            row = cell[label]
            print(
                f"  {label}: {row['epochs']} epochs, "
                f"+{row['docs_added']}/-{row['docs_deleted']} docs, "
                f"{row['ingest_docs_per_s']} docs/s ingest, "
                f"query p50 {row['query_p50_ms']} ms"
            )
            compaction = row["compaction"]
            print(
                f"    compaction: {compaction['tombstones_folded']} "
                f"tombstones folded, {compaction['bytes_reclaimed']} bytes "
                f"reclaimed, post-compaction hit rate "
                f"{compaction['post_compaction_hit_rate']}"
            )
        print(f"  trace deterministic: {cell['deterministic']}")
        for violation in cell["violations"]:
            print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--queries", type=int, default=DEFAULT_QUERIES,
        help="queries per wave (default 6)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default ./BENCH_ingest.json; "
        "not written in --check mode unless given explicitly)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of writing it; "
        "exit non-zero on drift or violation",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("BENCH_ingest.json"),
        help="baseline JSON to gate against (with --check)",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; run without --check first")
            return 2
        except OSError as error:
            print(
                f"cannot read baseline {args.baseline}: "
                f"{error.strerror or error}"
            )
            return 2
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(
                f"baseline {args.baseline} is not valid JSON ({error}); "
                "regenerate it by running without --check"
            )
            return 2
        if not isinstance(baseline, dict) or "profiles" not in baseline:
            print(
                f"baseline {args.baseline} is not an ingest report "
                "(no 'profiles' key); regenerate it by running without --check"
            )
            return 2
        if args.profiles:
            # A restricted run gates only the profiles it executed; the
            # baseline must still know about every one of them.
            missing = [
                name for name in args.profiles
                if name not in baseline["profiles"]
            ]
            if missing:
                print(
                    f"baseline {args.baseline} lacks profile(s) "
                    f"{', '.join(missing)}; regenerate it by running "
                    "without --check"
                )
                return 2
            baseline = dict(
                baseline,
                profiles={
                    name: baseline["profiles"][name]
                    for name in args.profiles
                },
            )
        report = run_benchmark(args.profiles, args.config, args.queries, args.out)
        _print_report(report)
        failures = compare_reports(report, baseline)
        if failures:
            print("\nINGEST GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\ningest gate passed (every cell equal to the baseline)")
        return 0

    out_path = args.out if args.out is not None else Path("BENCH_ingest.json")
    report = run_benchmark(args.profiles, args.config, args.queries, out_path)
    _print_report(report)
    if not report["ok"]:
        print("\nINGEST GATE FAILED")
        return 1
    print(
        "\ningest gate passed (every epoch bit-identical to its rebuild; "
        "compaction invisible; mirrors byte-identical)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
