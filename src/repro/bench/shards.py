"""Shard scaling benchmark and invariance gate.

For each paper collection this benchmark builds the document-partitioned
system at several shard counts and checks the whole sharding contract in
one pass:

* **invariance** — for every query set (term-at-a-time, all query
  shapes) and its flat document-at-a-time subset, the sharded rankings
  must be *bit-identical* to the single-disk engine's, at every shard
  count and for both partitioners; the flat subset is additionally run
  with dynamic pruning (``prune="auto"``) on every shard, which must
  reproduce the same single-disk rankings while actually skipping
  documents;
* **degenerate build** — at N=1 the shard's platter must be
  byte-for-byte the unsharded build's platter (same blocks, same bytes):
  partitioning composes with the storage layer without perturbing it;
* **scaling** — the critical-path simulated wall clock (slowest shard
  per query phase + coordinator exchange/merge) should shrink as shards
  are added; the report records per-N critical and summed clocks, the
  speedup over one disk, parallel efficiency, scheduler queue depth, and
  partition skew.  ``--min-speedup`` gates the largest shard count;
* **fault composition** — with shard 0's disk dead
  (:meth:`~repro.faults.plan.FaultPlan.dead_disk`), every query must
  complete degraded (``completeness < 1``) without raising, and a
  same-plan rerun must be bit-identical.

Run it directly::

    PYTHONPATH=src python -m repro.bench.shards                 # all four
    PYTHONPATH=src python -m repro.bench.shards --profile cacm-s --shards 1 2 4

(or ``scripts/bench.sh shards``).  Writes ``BENCH_shards.json``; exit
status is non-zero on any invariance violation, chaos violation, or
missed speedup floor.
"""

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional

from ..core.config import config_by_name
from ..core.metrics import cold_start, measure_run
from ..core.prepared import materialize, prepare_collection
from ..faults.plan import FaultPlan
from ..inquery.daat import DocumentAtATimeEngine
from ..inquery.engine import DEFAULT_TOP_K
from ..shard import measure_sharded_run
from ..synth import PROFILES, SyntheticCollection, generate_query_set
from .runner import PROFILE_ORDER
from .wallclock import _daat_queries, _query_profiles

DEFAULT_CONFIG = "mneme-cache"
DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_MIN_SPEEDUP = 1.5
PARTITIONERS = ("hash", "range")


def _rankings(results) -> List[list]:
    return [r.ranking for r in results]


def bench_profile(
    profile_name: str,
    config_name: str = DEFAULT_CONFIG,
    shard_counts=DEFAULT_SHARDS,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> dict:
    """The full sharding contract for one collection profile."""
    violations: List[str] = []
    collection = SyntheticCollection(PROFILES[profile_name])
    prepared = prepare_collection(collection)
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in _query_profiles(profile_name)
    ]
    config = config_by_name(config_name)

    # -- single-disk baseline: the rankings every shard count must hit ----
    baseline = materialize(prepared, config)
    taat_ref: Dict[str, List[list]] = {}
    daat_ref: Dict[str, List[list]] = {}
    baseline_wall = 0.0
    for query_set in query_sets:
        metrics = measure_run(
            baseline, query_set.queries, query_set_name=query_set.name
        )
        taat_ref[query_set.name] = _rankings(metrics.results)
        baseline_wall += metrics.wall_s
    for query_set in query_sets:
        flat = _daat_queries(query_set.queries)
        if not flat:
            continue
        cold_start(baseline)
        engine = DocumentAtATimeEngine(
            baseline.index, top_k=DEFAULT_TOP_K, use_fastpath=config.use_fastpath
        )
        daat_ref[query_set.name] = _rankings(engine.run_batch(flat))

    cell: dict = {
        "config": config_name,
        "partitioners": list(PARTITIONERS),
        "baseline_wall_s": round(baseline_wall, 4),
        "shards": {},
    }

    # -- every shard count, both partitioners ------------------------------
    wall_by_n: Dict[int, float] = {}
    for n_shards in shard_counts:
        row: dict = {"partitioner": {}}
        for scheme in PARTITIONERS:
            sharded = materialize(
                prepared, config, shards=n_shards, partitioner=scheme
            )
            if n_shards == 1:
                identical_platter = (
                    sharded.shards[0].fs.disk._blocks
                    == baseline.fs.disk._blocks
                )
                row.setdefault("n1_platter_identical", identical_platter)
                if not identical_platter:
                    violations.append(
                        f"{scheme}/N=1: shard platter differs from the "
                        "unsharded build byte-for-byte check"
                    )
            taat_wall = 0.0
            taat_wall_sum = 0.0
            skews: List[float] = []
            depth = 0
            for query_set in query_sets:
                metrics = measure_sharded_run(
                    sharded, query_set.queries,
                    query_set_name=query_set.name, engine="taat",
                )
                if _rankings(metrics.results) != taat_ref[query_set.name]:
                    violations.append(
                        f"{scheme}/N={n_shards}/taat:{query_set.name}: "
                        "rankings differ from the single-disk engine"
                    )
                taat_wall += metrics.wall_s
                taat_wall_sum += metrics.wall_s_sum
                skews.append(metrics.shard_skew)
                depth = max(depth, metrics.max_queue_depth)
            pruned_docs_skipped = 0
            for query_set in query_sets:
                flat = _daat_queries(query_set.queries)
                if not flat:
                    continue
                metrics = measure_sharded_run(
                    sharded, flat, query_set_name=query_set.name, engine="daat"
                )
                if _rankings(metrics.results) != daat_ref[query_set.name]:
                    violations.append(
                        f"{scheme}/N={n_shards}/daat:{query_set.name}: "
                        "rankings differ from the single-disk engine"
                    )
                pruned = measure_sharded_run(
                    sharded, flat, query_set_name=query_set.name,
                    engine="daat", prune="auto",
                )
                if _rankings(pruned.results) != daat_ref[query_set.name]:
                    violations.append(
                        f"{scheme}/N={n_shards}/daat+prune:{query_set.name}: "
                        "pruned rankings differ from the single-disk engine"
                    )
                pruned_docs_skipped += pruned.documents_skipped
            if pruned_docs_skipped == 0 and daat_ref:
                violations.append(
                    f"{scheme}/N={n_shards}: pruning never skipped a "
                    "document on any shard"
                )
            docs = [len(sp.doc_ids) for sp in sharded.shard_prepared]
            row["partitioner"][scheme] = {
                "taat_wall_s": round(taat_wall, 4),
                "taat_wall_sum_s": round(taat_wall_sum, 4),
                "speedup_vs_1disk": round(
                    baseline_wall / taat_wall if taat_wall > 0 else 0.0, 2
                ),
                "shard_skew": round(max(skews), 3) if skews else 1.0,
                "max_queue_depth": depth,
                "docs_per_shard": docs,
                "pruned_documents_skipped": pruned_docs_skipped,
            }
            if scheme == "hash":
                wall_by_n[n_shards] = taat_wall
        cell["shards"][str(n_shards)] = row

    # -- scaling gate at the largest shard count ---------------------------
    top_n = max(shard_counts)
    if top_n > 1 and wall_by_n.get(top_n, 0.0) > 0:
        one_disk = wall_by_n.get(1, baseline_wall)
        speedup = one_disk / wall_by_n[top_n]
        cell["speedup_at_max_shards"] = round(speedup, 2)
        if speedup < min_speedup:
            violations.append(
                f"scaling: critical-path speedup {speedup:.2f}x at "
                f"N={top_n} is below the {min_speedup:.2f}x floor"
            )

    # -- chaos composition: one dead shard ---------------------------------
    if top_n > 1:
        def dead_run():
            sharded = materialize(prepared, config, shards=top_n)
            sharded.fault_shard(0, FaultPlan.dead_disk())
            outcomes = []
            for query_set in query_sets:
                try:
                    metrics = measure_sharded_run(
                        sharded, query_set.queries,
                        query_set_name=query_set.name,
                    )
                except Exception as error:  # noqa: BLE001 — the contract under test
                    violations.append(
                        f"dead-shard/{query_set.name}: raised "
                        f"{type(error).__name__}: {error}"
                    )
                    continue
                outcomes.append((
                    query_set.name,
                    _rankings(metrics.results),
                    [r.terms_failed for r in metrics.results],
                    metrics.degraded_queries,
                    min(r.completeness for r in metrics.results),
                ))
            return outcomes

        first, rerun = dead_run(), dead_run()
        degraded = sum(row[3] for row in first)
        min_completeness = min((row[4] for row in first), default=1.0)
        if degraded == 0:
            violations.append("dead-shard: no query was marked degraded")
        if min_completeness >= 1.0:
            violations.append("dead-shard: completeness never dropped below 1")
        if first != rerun:
            violations.append("dead-shard: same-plan rerun was not identical")
        cell["dead_shard"] = {
            "shards": top_n,
            "degraded_queries": degraded,
            "min_completeness": round(min_completeness, 4),
            "deterministic": first == rerun,
        }

    cell["violations"] = violations
    cell["ok"] = not violations
    return cell


def run_benchmark(
    profiles: Optional[List[str]] = None,
    config_name: str = DEFAULT_CONFIG,
    shard_counts=DEFAULT_SHARDS,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    out_path: Optional[Path] = None,
) -> dict:
    report = {
        "benchmark": "shards",
        "description": (
            "Document-partitioned scaling: sharded rankings bit-identical "
            "to the single-disk engine for every query set (TAAT all "
            "shapes, DAAT flat subset exhaustive and with dynamic "
            "pruning, hash and range partitioners), N=1 "
            "platter byte-identical to the unsharded build, critical-path "
            "wall-clock speedup over one disk, and degraded-not-failed "
            "serving with one shard's disk dead."
        ),
        "config": config_name,
        "shard_counts": list(shard_counts),
        "min_speedup": min_speedup,
        "profiles": {},
        "ok": True,
    }
    for profile_name in profiles or list(PROFILE_ORDER):
        cell = bench_profile(
            profile_name, config_name, shard_counts, min_speedup
        )
        report["profiles"][profile_name] = cell
        report["ok"] = report["ok"] and cell["ok"]
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_report(report: dict) -> None:
    for name, cell in report["profiles"].items():
        print(f"{name} ({cell['config']}, baseline {cell['baseline_wall_s']:.3f}s):")
        for n_shards, row in cell["shards"].items():
            for scheme, stats in row["partitioner"].items():
                print(
                    f"  N={n_shards} {scheme:<6} wall {stats['taat_wall_s']:8.3f}s "
                    f"(sum {stats['taat_wall_sum_s']:8.3f}s, "
                    f"{stats['speedup_vs_1disk']:.2f}x vs 1 disk, "
                    f"skew {stats['shard_skew']:.3f}, "
                    f"queue {stats['max_queue_depth']})"
                )
        if "dead_shard" in cell:
            dead = cell["dead_shard"]
            print(
                f"  dead shard 0/{dead['shards']}: "
                f"degraded {dead['degraded_queries']} queries, "
                f"min completeness {dead['min_completeness']:.3f}, "
                f"deterministic {dead['deterministic']}"
            )
        for violation in cell["violations"]:
            print(f"  VIOLATION: {violation}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", action="append", dest="profiles", choices=PROFILE_ORDER,
        help="collection profile to benchmark (repeatable; default: all four)",
    )
    parser.add_argument("--config", default=DEFAULT_CONFIG)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(DEFAULT_SHARDS),
        help="shard counts to build and compare (default: 1 2 4)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help="critical-path speedup floor at the largest shard count",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_shards.json"),
        help="output JSON path (default ./BENCH_shards.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        args.profiles, args.config, args.shards, args.min_speedup, args.out
    )
    _print_report(report)
    if not report["ok"]:
        print("\nSHARD GATE FAILED")
        return 1
    print("\nshard gate passed (bit-identical at every N; scaling floor met)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
