"""repro — reproduction of Brown, Callan, Moss & Croft (EDBT 1994):
*Supporting Full-Text Information Retrieval with a Persistent Object
Store*.

Subpackages
-----------
``repro.simdisk``
    Simulated disk, OS buffer cache, files, and the cost-model clock.
``repro.btree``
    The custom B-tree keyed file (the paper's baseline).
``repro.mneme``
    The Mneme persistent object store: pools, segments, buffers,
    linked objects, recovery.
``repro.inquery``
    The INQUERY-style retrieval engine: dictionary, compressed inverted
    lists, indexer, query language, inference network, IR metrics.
``repro.synth``
    Synthetic Zipf collections and biased query sets.
``repro.core``
    The integrated system: configurations, Table 2 buffer sizing,
    materialization, and cold-start measurement.
``repro.bench``
    Table and figure regeneration (used by ``benchmarks/``).

Quickstart
----------
>>> from repro import quick_system
>>> system, engine = quick_system("cacm-s", "mneme-cache")
>>> engine.run_query("#sum( wb wc wd )").ranking  # doctest: +SKIP
"""

from .core import (
    CONFIG_NAMES,
    RunMetrics,
    build_systems,
    config_by_name,
    load_workload,
    materialize,
    measure_run,
    prepare_collection,
    run_grid,
    table2_buffer_sizes,
)
from .errors import ReproError
from .inquery import IndexBuilder, RetrievalEngine

__version__ = "1.0.0"


def quick_system(profile_name: str = "cacm-s", config_name: str = "mneme-cache"):
    """Build a ready-to-query system in one call.

    Returns
    -------
    (system, engine):
        The materialized :class:`~repro.core.IRSystem` and a
        :class:`~repro.inquery.RetrievalEngine` bound to it.
    """
    workload = load_workload(profile_name)
    system = materialize(workload.prepared, config_by_name(config_name))
    return system, RetrievalEngine(system.index)


__all__ = [
    "CONFIG_NAMES",
    "IndexBuilder",
    "ReproError",
    "RetrievalEngine",
    "RunMetrics",
    "build_systems",
    "config_by_name",
    "load_workload",
    "materialize",
    "measure_run",
    "prepare_collection",
    "quick_system",
    "run_grid",
    "table2_buffer_sizes",
    "__version__",
]
