"""Synthetic document collections.

The paper's collections (CACM, the private Legal collection, TIPSTER
parts 1 and 2) are not available, and at their original sizes a pure
Python build would take hours.  Each profile below is a scaled stand-in
that preserves the properties every result in the paper depends on:

* Zipf-Mandelbrot term frequencies — half the vocabulary occurs once or
  twice (tiny inverted lists), a handful of terms dominate the token
  mass (multi-hundred-KB lists): the Figure 1 shape;
* document lengths matching the flavour of the original (short CACM
  abstracts vs long legal case descriptions);
* deterministic generation from a seed, so every benchmark run sees the
  same collection.

Scale factors are recorded in each profile so EXPERIMENTS.md can relate
measured sizes back to Table 1.
"""

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from ..errors import ConfigError
from ..inquery import Document
from .vocab import term_string
from .zipf import ZipfSampler


@dataclass(frozen=True)
class CollectionProfile:
    """Shape parameters of one synthetic collection."""

    name: str
    models: str             #: which paper collection this stands in for
    documents: int
    mean_doc_length: int    #: tokens per document (lognormal mean)
    doc_length_sigma: float  #: lognormal shape (0 = fixed length)
    vocab_size: int         #: size of the underlying term universe
    zipf_s: float = 1.05
    zipf_q: float = 2.0
    seed: int = 93


#: Scaled stand-ins for the paper's four collections (Table 1).
PROFILES: Dict[str, CollectionProfile] = {
    "cacm-s": CollectionProfile(
        name="cacm-s", models="CACM (3204 abstracts)",
        documents=1200, mean_doc_length=50, doc_length_sigma=0.5,
        vocab_size=12000, seed=101,
    ),
    "legal-s": CollectionProfile(
        name="legal-s", models="Legal (11953 case descriptions)",
        documents=2500, mean_doc_length=240, doc_length_sigma=0.6,
        vocab_size=60000, seed=102,
    ),
    "tipster1-s": CollectionProfile(
        name="tipster1-s", models="TIPSTER part 1 (510887 articles)",
        documents=6000, mean_doc_length=160, doc_length_sigma=0.55,
        vocab_size=120000, seed=103,
    ),
    "tipster-s": CollectionProfile(
        name="tipster-s", models="TIPSTER parts 1+2 (742358 articles)",
        documents=10000, mean_doc_length=170, doc_length_sigma=0.55,
        vocab_size=160000, seed=104,
    ),
}


class SyntheticCollection:
    """A generated collection: per-document token-rank arrays.

    Tokens are 0-based term ranks (rank 0 = most frequent term); the
    string form is :func:`~repro.synth.vocab.term_string` of the rank.
    """

    def __init__(self, profile: CollectionProfile):
        self.profile = profile
        rng = np.random.default_rng(profile.seed)
        self.doc_lengths = self._draw_lengths(rng, profile)
        sampler = ZipfSampler(
            profile.vocab_size, profile.zipf_s, profile.zipf_q,
            seed=profile.seed + 1,
        )
        all_tokens = sampler.sample(int(self.doc_lengths.sum()))
        boundaries = np.cumsum(self.doc_lengths)[:-1]
        self.doc_tokens: List[np.ndarray] = np.split(all_tokens, boundaries)

    @staticmethod
    def _draw_lengths(rng: np.random.Generator, profile: CollectionProfile) -> np.ndarray:
        if profile.documents < 1:
            raise ConfigError("collection needs at least one document")
        if profile.doc_length_sigma <= 0:
            return np.full(profile.documents, profile.mean_doc_length, dtype=np.int64)
        sigma = profile.doc_length_sigma
        mu = np.log(profile.mean_doc_length) - sigma * sigma / 2.0
        lengths = rng.lognormal(mean=mu, sigma=sigma, size=profile.documents)
        return np.maximum(lengths.astype(np.int64), 5)

    @property
    def total_tokens(self) -> int:
        return int(self.doc_lengths.sum())

    def __len__(self) -> int:
        return self.profile.documents

    def term_counts(self) -> np.ndarray:
        """Observed occurrences per term rank (length = vocab size)."""
        counts = np.zeros(self.profile.vocab_size, dtype=np.int64)
        for tokens in self.doc_tokens:
            np.add.at(counts, tokens, 1)
        return counts

    def flat_postings(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """(term rank, doc id, position) arrays over the whole collection.

        Document ids are 1-based.  This is the raw material of the
        indexing sort.
        """
        total = self.total_tokens
        ranks = np.concatenate(self.doc_tokens) if total else np.empty(0, dtype=np.int64)
        doc_ids = np.repeat(
            np.arange(1, len(self) + 1, dtype=np.int64), self.doc_lengths
        )
        positions = np.concatenate(
            [np.arange(n, dtype=np.int64) for n in self.doc_lengths]
        ) if total else np.empty(0, dtype=np.int64)
        return ranks, doc_ids, positions

    def iter_documents(self) -> Iterator[Document]:
        """Documents with string tokens, for the regular indexing path.

        The benchmark harness uses the faster rank-level path
        (:meth:`flat_postings`); this iterator exists so examples can
        exercise the ordinary :class:`~repro.inquery.IndexBuilder` API.
        """
        for doc_index, tokens in enumerate(self.doc_tokens):
            yield Document(
                doc_id=doc_index + 1,
                name=f"{self.profile.name}-{doc_index + 1}",
                tokens=[term_string(rank) for rank in tokens],
            )
