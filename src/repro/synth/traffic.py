"""Synthetic serving traffic: request streams over a query pool.

:mod:`repro.synth.queries` models *term* repetition within a query set
("there is significant repetition of the terms used from query to
query") — the fact that makes the paper's record cache pay off.  This
module layers the serving-time analogue on top: *query* repetition
within a request stream, the fact that makes a whole-result cache pay
off.  With probability ``repeat_rate`` a request re-issues a query the
stream already served (drawn uniformly from its own history, so popular
queries compound); otherwise it takes the next query from the pool.

Two standard load shapes are provided:

* **open loop** (:func:`open_loop_requests`): arrivals are a Poisson
  process at ``rate_qps`` *simulated* queries per second — requests
  arrive whether or not the service keeps up, so queueing delay shows
  up in the latency distribution.  ``rate_qps = 0`` degenerates to a
  burst: every request arrives at t=0 (the overload shape the worker
  scaling gate uses).
* **closed loop** (:class:`ClosedLoopTraffic`): ``concurrency``
  simulated users each issue a request, wait for its completion, think
  for an exponential ``think_ms``, and repeat — the service's own
  completion times pace the stream, so the generator is driven by
  :meth:`~repro.serve.service.QueryService.process_closed`.

Overload knobs
--------------
Requests optionally carry a **priority class** and a **deadline** for
the admission-control machinery in :mod:`repro.serve`:

* ``batch_fraction`` makes each request ``"batch"`` with that
  probability (``"interactive"`` otherwise) — interactive beats batch
  at wave formation;
* ``deadline_ms`` / ``batch_deadline_ms`` are per-class *relative*
  deadline budgets; a request's absolute deadline is its arrival plus
  its class's budget (0 means that class carries no deadline and may
  wait forever).

Both draws come from the stream's single seeded generator, so the
arrival/class/deadline triple is one deterministic stream: the same
profile over the same pool yields the same requests, the same classes,
and the same deadlines, which the saturation gate relies on to call
its shed set deterministic.  With ``batch_fraction = 0`` no class draw
is made at all, so pre-overload profiles reproduce their historical
streams bit for bit.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError

#: Priority classes, best first; rank order is wave-formation order.
PRIORITIES = ("interactive", "batch")
PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


@dataclass(frozen=True)
class TrafficProfile:
    """Shape parameters of one request stream."""

    name: str
    mode: str = "open"          #: "open" (Poisson) | "closed" (think-time)
    n_requests: int = 200
    #: Open loop: mean arrival rate in simulated queries/second;
    #: 0 means a burst (all requests arrive at t=0).
    rate_qps: float = 50.0
    concurrency: int = 4        #: closed loop: simulated users
    think_ms: float = 20.0      #: closed loop: mean think time
    #: Probability a request repeats an earlier query verbatim.
    repeat_rate: float = 0.5
    #: Relative deadline budget for interactive requests, in simulated
    #: milliseconds past arrival; 0 means interactive requests carry
    #: no deadline.
    deadline_ms: float = 0.0
    #: Probability a request belongs to the ``"batch"`` class.
    batch_fraction: float = 0.0
    #: Relative deadline budget for batch requests; 0 means batch
    #: requests carry no deadline (they tolerate arbitrary queueing).
    batch_deadline_ms: float = 0.0
    seed: int = 17


@dataclass(frozen=True)
class TimedRequest:
    """One request: query text, arrival, class, and admission deadline.

    ``deadline_ms`` is *absolute* on the service clock (arrival plus
    the class's budget), or ``None`` for a request that may wait
    forever.  ``seq`` is the request's position in its stream — the
    deterministic tie-breaker the service's (priority, arrival, seq)
    wave order needs when arrivals coincide (bursts).
    """

    text: str
    arrival_ms: float
    priority: str = "interactive"
    deadline_ms: Optional[float] = None
    seq: int = 0


def _validate(profile: TrafficProfile, pool: Sequence[str], mode: str) -> None:
    if profile.mode != mode:
        raise ConfigError(
            f"profile {profile.name!r} is {profile.mode!r} traffic, not {mode!r}"
        )
    if profile.n_requests < 1:
        raise ConfigError("traffic needs at least one request")
    if not 0.0 <= profile.repeat_rate < 1.0:
        raise ConfigError("repeat_rate must be in [0, 1)")
    if profile.rate_qps < 0.0:
        raise ConfigError("rate_qps must be non-negative")
    if not 0.0 <= profile.batch_fraction <= 1.0:
        raise ConfigError("batch_fraction must be in [0, 1]")
    if profile.deadline_ms < 0.0:
        raise ConfigError("deadline_ms must be non-negative")
    if profile.batch_deadline_ms < 0.0:
        raise ConfigError("batch_deadline_ms must be non-negative")
    if not pool:
        raise ConfigError("traffic needs a non-empty query pool")


class _QueryChooser:
    """The repetition knob: history re-issue vs. next pool query."""

    def __init__(
        self, pool: Sequence[str], repeat_rate: float, rng: np.random.Generator
    ):
        self._pool = list(pool)
        self._repeat_rate = repeat_rate
        self._rng = rng
        self._history: List[str] = []
        self._cursor = 0

    def next(self) -> str:
        if self._history and self._rng.random() < self._repeat_rate:
            text = self._history[int(self._rng.integers(len(self._history)))]
        else:
            text = self._pool[self._cursor % len(self._pool)]
            self._cursor += 1
        self._history.append(text)
        return text


class _ClassStamper:
    """Draws a request's priority class and computes its deadline.

    The class draw shares the stream's generator (one seed, one
    stream), but is skipped entirely when ``batch_fraction`` is 0 so
    profiles without the overload knobs reproduce their historical
    random streams exactly.
    """

    def __init__(self, profile: TrafficProfile, rng: np.random.Generator):
        self._profile = profile
        self._rng = rng

    def stamp(self, arrival_ms: float):
        profile = self._profile
        if profile.batch_fraction > 0 and (
            self._rng.random() < profile.batch_fraction
        ):
            priority = "batch"
            budget = profile.batch_deadline_ms
        else:
            priority = "interactive"
            budget = profile.deadline_ms
        deadline = arrival_ms + budget if budget > 0 else None
        return priority, deadline


def open_loop_requests(
    pool: Sequence[str], profile: TrafficProfile
) -> List[TimedRequest]:
    """A Poisson request stream: texts with arrival times, ready to serve."""
    _validate(profile, pool, "open")
    rng = np.random.default_rng(profile.seed)
    chooser = _QueryChooser(pool, profile.repeat_rate, rng)
    stamper = _ClassStamper(profile, rng)
    if profile.rate_qps > 0:
        gaps = rng.exponential(1000.0 / profile.rate_qps, size=profile.n_requests)
        arrivals = np.cumsum(gaps)
    else:
        arrivals = np.zeros(profile.n_requests)
    requests: List[TimedRequest] = []
    for seq, arrival in enumerate(arrivals):
        text = chooser.next()
        priority, deadline = stamper.stamp(float(arrival))
        requests.append(TimedRequest(
            text=text,
            arrival_ms=float(arrival),
            priority=priority,
            deadline_ms=deadline,
            seq=seq,
        ))
    return requests


class ClosedLoopTraffic:
    """A think-time stream paced by the service's completions.

    The service pulls from this object: :meth:`next_request` hands out
    the next request stamped with its class and deadline (``None`` once
    the budget is spent, retiring that user), and :meth:`think` draws
    the exponential pause before a user re-issues.  :meth:`reset`
    rewinds to the same deterministic stream.
    """

    def __init__(self, pool: Sequence[str], profile: TrafficProfile):
        _validate(profile, pool, "closed")
        if profile.concurrency < 1:
            raise ConfigError("closed-loop traffic needs at least one user")
        if profile.think_ms < 0:
            raise ConfigError("think_ms must be non-negative")
        self.profile = profile
        self._pool = list(pool)
        self.reset()

    @property
    def concurrency(self) -> int:
        return self.profile.concurrency

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.profile.seed)
        self._chooser = _QueryChooser(
            self._pool, self.profile.repeat_rate, self._rng
        )
        self._stamper = _ClassStamper(self.profile, self._rng)
        self._issued = 0

    def first_arrival(self, user: int) -> float:
        """Stagger user start-up so waves are not artificially lockstep."""
        return self.think(user)

    def think(self, user: int) -> float:
        if self.profile.think_ms <= 0:
            return 0.0
        return float(self._rng.exponential(self.profile.think_ms))

    def next_request(self, arrival_ms: float) -> Optional[TimedRequest]:
        """The next request, arriving at ``arrival_ms`` on the service clock.

        Stamps the class draw and the class's absolute deadline; returns
        ``None`` once the stream's budget is spent (retiring the user).
        """
        if self._issued >= self.profile.n_requests:
            return None
        seq = self._issued
        self._issued += 1
        text = self._chooser.next()
        priority, deadline = self._stamper.stamp(arrival_ms)
        return TimedRequest(
            text=text,
            arrival_ms=arrival_ms,
            priority=priority,
            deadline_ms=deadline,
            seq=seq,
        )

    def next_text(self) -> Optional[str]:
        """The next query text alone (legacy callers; same stream)."""
        request = self.next_request(0.0)
        return request.text if request is not None else None
