"""Synthetic serving traffic: request streams over a query pool.

:mod:`repro.synth.queries` models *term* repetition within a query set
("there is significant repetition of the terms used from query to
query") — the fact that makes the paper's record cache pay off.  This
module layers the serving-time analogue on top: *query* repetition
within a request stream, the fact that makes a whole-result cache pay
off.  With probability ``repeat_rate`` a request re-issues a query the
stream already served (drawn uniformly from its own history, so popular
queries compound); otherwise it takes the next query from the pool.

Two standard load shapes are provided:

* **open loop** (:func:`open_loop_requests`): arrivals are a Poisson
  process at ``rate_qps`` *simulated* queries per second — requests
  arrive whether or not the service keeps up, so queueing delay shows
  up in the latency distribution.  ``rate_qps = 0`` degenerates to a
  burst: every request arrives at t=0 (the overload shape the worker
  scaling gate uses).
* **closed loop** (:class:`ClosedLoopTraffic`): ``concurrency``
  simulated users each issue a request, wait for its completion, think
  for an exponential ``think_ms``, and repeat — the service's own
  completion times pace the stream, so the generator is driven by
  :meth:`~repro.serve.service.QueryService.process_closed`.

Everything is seeded and deterministic: the same profile over the same
pool yields the same request stream, which the serving gate relies on
to compare cache-on and cache-off runs on identical traffic.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class TrafficProfile:
    """Shape parameters of one request stream."""

    name: str
    mode: str = "open"          #: "open" (Poisson) | "closed" (think-time)
    n_requests: int = 200
    #: Open loop: mean arrival rate in simulated queries/second;
    #: 0 means a burst (all requests arrive at t=0).
    rate_qps: float = 50.0
    concurrency: int = 4        #: closed loop: simulated users
    think_ms: float = 20.0      #: closed loop: mean think time
    #: Probability a request repeats an earlier query verbatim.
    repeat_rate: float = 0.5
    seed: int = 17


@dataclass(frozen=True)
class TimedRequest:
    """One request: the query text and its arrival on the service clock."""

    text: str
    arrival_ms: float


def _validate(profile: TrafficProfile, pool: Sequence[str], mode: str) -> None:
    if profile.mode != mode:
        raise ConfigError(
            f"profile {profile.name!r} is {profile.mode!r} traffic, not {mode!r}"
        )
    if profile.n_requests < 1:
        raise ConfigError("traffic needs at least one request")
    if not 0.0 <= profile.repeat_rate < 1.0:
        raise ConfigError("repeat_rate must be in [0, 1)")
    if profile.rate_qps < 0.0:
        raise ConfigError("rate_qps must be non-negative")
    if not pool:
        raise ConfigError("traffic needs a non-empty query pool")


class _QueryChooser:
    """The repetition knob: history re-issue vs. next pool query."""

    def __init__(
        self, pool: Sequence[str], repeat_rate: float, rng: np.random.Generator
    ):
        self._pool = list(pool)
        self._repeat_rate = repeat_rate
        self._rng = rng
        self._history: List[str] = []
        self._cursor = 0

    def next(self) -> str:
        if self._history and self._rng.random() < self._repeat_rate:
            text = self._history[int(self._rng.integers(len(self._history)))]
        else:
            text = self._pool[self._cursor % len(self._pool)]
            self._cursor += 1
        self._history.append(text)
        return text


def open_loop_requests(
    pool: Sequence[str], profile: TrafficProfile
) -> List[TimedRequest]:
    """A Poisson request stream: texts with arrival times, ready to serve."""
    _validate(profile, pool, "open")
    rng = np.random.default_rng(profile.seed)
    chooser = _QueryChooser(pool, profile.repeat_rate, rng)
    if profile.rate_qps > 0:
        gaps = rng.exponential(1000.0 / profile.rate_qps, size=profile.n_requests)
        arrivals = np.cumsum(gaps)
    else:
        arrivals = np.zeros(profile.n_requests)
    return [
        TimedRequest(text=chooser.next(), arrival_ms=float(arrival))
        for arrival in arrivals
    ]


class ClosedLoopTraffic:
    """A think-time stream paced by the service's completions.

    The service pulls from this object: :meth:`next_text` hands out the
    next request (``None`` once the budget is spent, retiring that
    user), and :meth:`think` draws the exponential pause before a user
    re-issues.  :meth:`reset` rewinds to the same deterministic stream.
    """

    def __init__(self, pool: Sequence[str], profile: TrafficProfile):
        _validate(profile, pool, "closed")
        if profile.concurrency < 1:
            raise ConfigError("closed-loop traffic needs at least one user")
        if profile.think_ms < 0:
            raise ConfigError("think_ms must be non-negative")
        self.profile = profile
        self._pool = list(pool)
        self.reset()

    @property
    def concurrency(self) -> int:
        return self.profile.concurrency

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.profile.seed)
        self._chooser = _QueryChooser(
            self._pool, self.profile.repeat_rate, self._rng
        )
        self._issued = 0

    def first_arrival(self, user: int) -> float:
        """Stagger user start-up so waves are not artificially lockstep."""
        return self.think(user)

    def think(self, user: int) -> float:
        if self.profile.think_ms <= 0:
            return 0.0
        return float(self._rng.exponential(self.profile.think_ms))

    def next_text(self) -> Optional[str]:
        if self._issued >= self.profile.n_requests:
            return None
        self._issued += 1
        return self._chooser.next()
