"""Synthetic query sets.

Two facts about real query streams drive the paper's results, and both
are modelled explicitly:

* **Term selection is biased toward longer inverted lists** (Figure 2:
  "the small inverted lists are accessed rarely").  Terms are drawn with
  probability proportional to ``ctf ** bias_alpha`` over terms above a
  frequency floor.
* **Terms repeat from query to query** ("there is significant repetition
  of the terms used from query to query", from iterative refinement and
  specialized collections).  With probability ``reuse_rate`` a term is
  redrawn from the pool of terms used by earlier queries.  This is what
  makes record caching pay off — and why the paper calls out studies
  that assume a uniform term distribution.

Query styles mirror the paper's seven sets: boolean operator trees
(CACM sets 1-2), natural-language ``#sum`` with phrases (CACM set 3),
plain and weight-supplemented sets (Legal 1-2), and long TREC-topic-like
queries (TIPSTER).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set

import numpy as np

from ..errors import ConfigError
from .collection import SyntheticCollection
from .vocab import term_string


@dataclass(frozen=True)
class QueryProfile:
    """Shape parameters of one query set."""

    name: str
    style: str              #: "natural" | "boolean" | "phrase" | "weighted"
    n_queries: int = 50
    mean_terms: int = 6
    reuse_rate: float = 0.35
    bias_alpha: float = 0.9  #: term draw weight ∝ ctf ** alpha
    min_ctf: int = 3         #: frequency floor for query terms
    seed: int = 7


@dataclass
class QuerySet:
    """Generated queries plus the term ranks each uses."""

    name: str
    queries: List[str]
    term_ranks: List[List[int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def distinct_terms(self) -> Set[int]:
        return {rank for ranks in self.term_ranks for rank in ranks}


_STYLES = ("natural", "boolean", "phrase", "weighted")


def generate_query_set(collection: SyntheticCollection, profile: QueryProfile) -> QuerySet:
    """Draw a query set against a collection's observed term statistics."""
    if profile.style not in _STYLES:
        raise ConfigError(f"unknown query style {profile.style!r}")
    if profile.n_queries < 1:
        raise ConfigError("query set needs at least one query")
    if not 0.0 <= profile.reuse_rate < 1.0:
        raise ConfigError("reuse_rate must be in [0, 1)")
    counts = collection.term_counts()
    eligible = np.nonzero(counts >= profile.min_ctf)[0]
    if len(eligible) == 0:
        raise ConfigError("no terms pass the query-term frequency floor")
    weights = counts[eligible].astype(np.float64) ** profile.bias_alpha
    weights /= weights.sum()
    rng = np.random.default_rng(profile.seed)

    used_pool: List[int] = []
    queries: List[str] = []
    ranks_per_query: List[List[int]] = []
    for _ in range(profile.n_queries):
        n_terms = max(2, int(rng.poisson(profile.mean_terms)))
        ranks = _draw_terms(rng, eligible, weights, used_pool, profile.reuse_rate, n_terms)
        used_pool.extend(ranks)
        queries.append(_render(rng, profile.style, ranks, collection))
        ranks_per_query.append(ranks)
    return QuerySet(name=profile.name, queries=queries, term_ranks=ranks_per_query)


def _draw_terms(
    rng: np.random.Generator,
    eligible: np.ndarray,
    weights: np.ndarray,
    used_pool: Sequence[int],
    reuse_rate: float,
    n_terms: int,
) -> List[int]:
    ranks: List[int] = []
    for _ in range(n_terms):
        if used_pool and rng.random() < reuse_rate:
            ranks.append(int(used_pool[rng.integers(len(used_pool))]))
        else:
            ranks.append(int(eligible[_weighted_choice(rng, weights)]))
    return ranks


def _weighted_choice(rng: np.random.Generator, weights: np.ndarray) -> int:
    return int(np.searchsorted(np.cumsum(weights), rng.random(), side="left"))


def _render(
    rng: np.random.Generator,
    style: str,
    ranks: List[int],
    collection: SyntheticCollection,
) -> str:
    terms = [term_string(rank) for rank in ranks]
    if style == "natural":
        return "#sum( " + " ".join(terms) + " )"
    if style == "weighted":
        weights = rng.integers(1, 4, size=len(terms))
        inner = " ".join(f"{w} {t}" for w, t in zip(weights, terms))
        return f"#wsum( {inner} )"
    if style == "boolean":
        half = max(1, len(terms) // 2)
        left = "#and( " + " ".join(terms[:half]) + " )"
        right = "#or( " + " ".join(terms[half:]) + " )" if terms[half:] else ""
        return f"#sum( {left} {right} )".replace("  ", " ")
    # phrase: a #sum over terms plus one real bigram from the collection,
    # so the phrase operator actually matches documents.
    bigram = _sample_bigram(rng, collection)
    parts = terms[:-1] if len(terms) > 2 else terms
    return "#sum( " + " ".join(parts) + f" #phrase( {bigram[0]} {bigram[1]} ) )"


def _sample_bigram(rng: np.random.Generator, collection: SyntheticCollection) -> "tuple[str, str]":
    for _ in range(32):
        doc = collection.doc_tokens[rng.integers(len(collection.doc_tokens))]
        if len(doc) >= 2:
            start = rng.integers(len(doc) - 1)
            return term_string(int(doc[start])), term_string(int(doc[start + 1]))
    raise ConfigError("collection has no document with two tokens")


def relevance_from_postings(
    term_ranks: Sequence[Sequence[int]],
    docs_of_rank: Callable[[int], Sequence[int]],
    max_relevant: int = 50,
) -> Dict[int, Set[int]]:
    """Synthesize a relevance file: documents matching most query terms.

    "A relevance file lists the documents that should have been
    retrieved for each query."  With no human judgments for synthetic
    text, the documents containing at least half of a query's distinct
    terms stand in (capped, favouring higher overlap).
    """
    relevance: Dict[int, Set[int]] = {}
    for query_index, ranks in enumerate(term_ranks):
        distinct = list(dict.fromkeys(ranks))
        overlap: Dict[int, int] = {}
        for rank in distinct:
            for doc in docs_of_rank(rank):
                overlap[doc] = overlap.get(doc, 0) + 1
        threshold = max(1, (len(distinct) + 1) // 2)
        candidates = sorted(
            (doc for doc, hits in overlap.items() if hits >= threshold),
            key=lambda doc: (-overlap[doc], doc),
        )
        if candidates:
            relevance[query_index] = set(candidates[:max_relevant])
    return relevance
