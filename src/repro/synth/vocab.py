"""Synthetic vocabulary: deterministic term strings for term ranks."""

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def term_string(rank: int) -> str:
    """A stable, unique word for a 0-based term rank.

    Rank is rendered in base 26 with a ``w`` prefix so the strings are
    valid tokenizer output, never collide with query-language syntax,
    and never stem into each other (digits-free but prefix-stable).
    """
    if rank < 0:
        raise ValueError("rank must be non-negative")
    digits = []
    value = rank
    while True:
        value, remainder = divmod(value, 26)
        digits.append(_ALPHABET[remainder])
        if value == 0:
            break
    return "w" + "".join(reversed(digits))


def term_rank(term: str) -> int:
    """Inverse of :func:`term_string`."""
    if not term.startswith("w") or len(term) < 2:
        raise ValueError(f"not a synthetic term: {term!r}")
    value = 0
    for char in term[1:]:
        value = value * 26 + _ALPHABET.index(char)
    return value
