"""Zipf / Zipf-Mandelbrot term distributions.

"Zipf observed that if the terms in a document collection are ranked by
decreasing number of occurrences ... there is a constant for the
collection that is approximately equal to the product of any given
term's size and rank order number.  The implication of this is that
nearly half of the terms have only one or two occurrences, while some
terms occur very many times."

The synthetic collections draw tokens from a Zipf-Mandelbrot law
``p(rank) ∝ 1 / (rank + q)^s``; the ``q`` shift flattens the head so the
most frequent terms do not swamp the token stream, matching real text
better than pure Zipf.
"""

from typing import Tuple

import numpy as np

from ..errors import ConfigError


def zipf_mandelbrot_weights(vocab_size: int, s: float = 1.05, q: float = 2.0) -> np.ndarray:
    """Normalized rank probabilities for a vocabulary of ``vocab_size``."""
    if vocab_size < 1:
        raise ConfigError("vocabulary must have at least one term")
    if s <= 0:
        raise ConfigError("Zipf exponent must be positive")
    if q < 0:
        raise ConfigError("Mandelbrot shift must be non-negative")
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks + q, s)
    return weights / weights.sum()


class ZipfSampler:
    """Draws term ranks (0-based) from a fixed Zipf-Mandelbrot law.

    Sampling uses inverse-CDF lookup over a precomputed cumulative
    table, so drawing millions of tokens is a single vectorized call.
    """

    def __init__(self, vocab_size: int, s: float = 1.05, q: float = 2.0, seed: int = 0):
        self.vocab_size = vocab_size
        self.s = s
        self.q = q
        self._weights = zipf_mandelbrot_weights(vocab_size, s, q)
        self._cumulative = np.cumsum(self._weights)
        self._cumulative[-1] = 1.0  # guard against float round-off
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` term ranks."""
        if count < 0:
            raise ConfigError("cannot draw a negative number of tokens")
        uniform = self._rng.random(count)
        return np.searchsorted(self._cumulative, uniform, side="left")

    def probability(self, rank: int) -> float:
        """The sampling probability of a 0-based rank."""
        return float(self._weights[rank])


def rank_frequency_constant(frequencies: np.ndarray) -> Tuple[float, float]:
    """Zipf's constant check: mean and spread of rank * frequency.

    ``frequencies`` are observed term counts (any order).  Returns the
    mean and coefficient of variation of ``rank * frequency`` over the
    middle of the distribution (head and singleton tail excluded, where
    Zipf's law is known to bend).
    """
    ordered = np.sort(np.asarray(frequencies))[::-1]
    ranks = np.arange(1, len(ordered) + 1, dtype=np.float64)
    products = ranks * ordered
    lo, hi = len(ordered) // 20, len(ordered) // 2
    if hi <= lo:
        lo, hi = 0, len(ordered)
    window = products[lo:hi]
    mean = float(window.mean())
    cv = float(window.std() / mean) if mean else 0.0
    return mean, cv
