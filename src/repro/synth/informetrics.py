"""Informetric analysis of collections — measuring what file design needs.

The paper closes its related-work section citing Wolfram: "the
informetric characteristics of document databases should be taken into
consideration when designing the files used by an IR system.  We have
tried to take this advice to heart by developing appropriate file
organization and buffer management policies based on the characteristics
of the data and the data access patterns."

This module computes those characteristics from a collection — the
rank-frequency (Zipf) fit, vocabulary growth (Heaps), singleton mass —
and turns them into the file-design advice the integrated system
encodes: where to cut the small/medium/large object partition so the
small pool really does capture "approximately 50%" of the records.
"""

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from .collection import SyntheticCollection


@dataclass(frozen=True)
class InformetricProfile:
    """Measured distributional characteristics of one collection."""

    tokens: int
    vocabulary: int
    singleton_fraction: float    #: share of terms occurring exactly once
    doubleton_fraction: float    #: share occurring once or twice
    top_percent_mass: float      #: token mass held by the top 1% of terms
    zipf_s: float                #: fitted Zipf-Mandelbrot exponent
    zipf_q: float                #: fitted Mandelbrot shift
    heaps_k: float               #: Heaps' law V = k * N^beta
    heaps_beta: float


def fit_zipf(counts: np.ndarray) -> Tuple[float, float]:
    """Fit ``p(rank) ∝ 1/(rank+q)^s`` to observed term counts.

    Grid search over (s, q) minimizing mean squared log error on the
    rank-frequency curve (log-sampled ranks, singleton tail excluded —
    the region where Zipf's law is known to bend).
    """
    observed = np.sort(counts[counts > 0])[::-1].astype(np.float64)
    if len(observed) < 10:
        raise ConfigError("too few distinct terms to fit a Zipf law")
    limit = int(np.searchsorted(-observed, -1.5))  # drop the singleton tail
    limit = max(limit, 10)
    sample_ranks = np.unique(
        np.logspace(0, math.log10(limit), num=60).astype(np.int64)
    )
    sample_ranks = sample_ranks[sample_ranks <= limit]
    freqs = observed[sample_ranks - 1]
    total = observed.sum()

    best = (1.0, 0.0, float("inf"))
    for s in np.arange(0.7, 1.61, 0.05):
        for q in (0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0):
            weights = 1.0 / np.power(np.arange(1, len(observed) + 1) + q, s)
            expected = total * weights / weights.sum()
            err = float(np.mean(
                (np.log(freqs) - np.log(expected[sample_ranks - 1])) ** 2
            ))
            if err < best[2]:
                best = (float(s), float(q), err)
    return best[0], best[1]


def fit_heaps(prefix_tokens: Sequence[int], prefix_vocab: Sequence[int]) -> Tuple[float, float]:
    """Fit Heaps' law ``V = k * N^beta`` by least squares in log space."""
    if len(prefix_tokens) < 2:
        raise ConfigError("Heaps fit needs at least two prefix samples")
    xs = np.log(np.asarray(prefix_tokens, dtype=np.float64))
    ys = np.log(np.asarray(prefix_vocab, dtype=np.float64))
    beta, log_k = np.polyfit(xs, ys, 1)
    return float(math.exp(log_k)), float(beta)


def vocabulary_growth(
    collection: SyntheticCollection, points: int = 12
) -> Tuple[List[int], List[int]]:
    """(tokens seen, distinct terms seen) after growing document prefixes."""
    if points < 2:
        raise ConfigError("need at least two growth points")
    seen = np.zeros(collection.profile.vocab_size, dtype=bool)
    tokens_seen = 0
    boundaries = np.linspace(1, len(collection), num=points).astype(int)
    out_tokens: List[int] = []
    out_vocab: List[int] = []
    next_boundary = 0
    for doc_index, tokens in enumerate(collection.doc_tokens, start=1):
        seen[tokens] = True
        tokens_seen += len(tokens)
        if next_boundary < len(boundaries) and doc_index >= boundaries[next_boundary]:
            out_tokens.append(tokens_seen)
            out_vocab.append(int(seen.sum()))
            next_boundary += 1
    return out_tokens, out_vocab


def profile_collection(collection: SyntheticCollection) -> InformetricProfile:
    """Measure a collection's informetric characteristics."""
    counts = collection.term_counts()
    observed = counts[counts > 0]
    if len(observed) == 0:
        raise ConfigError("empty collection")
    vocabulary = len(observed)
    ordered = np.sort(observed)[::-1]
    top = max(1, vocabulary // 100)
    zipf_s, zipf_q = fit_zipf(counts)
    growth_tokens, growth_vocab = vocabulary_growth(collection)
    heaps_k, heaps_beta = fit_heaps(growth_tokens, growth_vocab)
    return InformetricProfile(
        tokens=int(observed.sum()),
        vocabulary=vocabulary,
        singleton_fraction=float((observed == 1).sum() / vocabulary),
        doubleton_fraction=float((observed <= 2).sum() / vocabulary),
        top_percent_mass=float(ordered[:top].sum() / ordered.sum()),
        zipf_s=zipf_s,
        zipf_q=zipf_q,
        heaps_k=heaps_k,
        heaps_beta=heaps_beta,
    )


def suggest_small_threshold(
    record_sizes: Sequence[int], target_fraction: float = 0.5
) -> int:
    """The record size below which ``target_fraction`` of records fall.

    This is Wolfram's advice operationalized: the integrated system's
    12-byte small object boundary is exactly the ~50th percentile of the
    record-size distribution for the paper's collections.
    """
    if not record_sizes:
        raise ConfigError("no record sizes to analyse")
    if not 0.0 < target_fraction < 1.0:
        raise ConfigError("target fraction must be in (0, 1)")
    ordered = sorted(record_sizes)
    index = min(len(ordered) - 1, int(target_fraction * len(ordered)))
    return ordered[index]


def partition_report(record_sizes: Sequence[int], small_max: int, medium_max: int) -> dict:
    """How a small/medium/large cut divides records and bytes."""
    if small_max >= medium_max:
        raise ConfigError("small threshold must be below the medium threshold")
    total_records = len(record_sizes)
    total_bytes = sum(record_sizes)
    if not total_records:
        raise ConfigError("no record sizes to analyse")
    rows = {}
    for name, low, high in (
        ("small", 0, small_max),
        ("medium", small_max + 1, medium_max),
        ("large", medium_max + 1, float("inf")),
    ):
        sizes = [s for s in record_sizes if low <= s <= high]
        rows[name] = {
            "records": len(sizes),
            "record_share": len(sizes) / total_records,
            "bytes": sum(sizes),
            "byte_share": sum(sizes) / total_bytes if total_bytes else 0.0,
        }
    return rows
