"""Synthetic workloads: Zipf collections and biased query streams.

Stand-ins for the paper's CACM / Legal / TIPSTER collections and their
seven query sets; see DESIGN.md section 2 for the substitution argument.
"""

from .collection import PROFILES, CollectionProfile, SyntheticCollection
from .informetrics import (
    InformetricProfile,
    fit_heaps,
    fit_zipf,
    partition_report,
    profile_collection,
    suggest_small_threshold,
    vocabulary_growth,
)
from .queries import (
    QueryProfile,
    QuerySet,
    generate_query_set,
    relevance_from_postings,
)
from .traffic import (
    ClosedLoopTraffic,
    TimedRequest,
    TrafficProfile,
    open_loop_requests,
)
from .vocab import term_rank, term_string
from .zipf import ZipfSampler, rank_frequency_constant, zipf_mandelbrot_weights

__all__ = [
    "ClosedLoopTraffic",
    "CollectionProfile",
    "InformetricProfile",
    "PROFILES",
    "QueryProfile",
    "QuerySet",
    "SyntheticCollection",
    "TimedRequest",
    "TrafficProfile",
    "ZipfSampler",
    "fit_heaps",
    "fit_zipf",
    "generate_query_set",
    "open_loop_requests",
    "partition_report",
    "profile_collection",
    "suggest_small_threshold",
    "vocabulary_growth",
    "rank_frequency_constant",
    "relevance_from_postings",
    "term_rank",
    "term_string",
    "zipf_mandelbrot_weights",
]
