"""Top-k ranking kernels.

Document ranking orders by ``(-belief, doc_id)`` and keeps the best
``k``.  The reference engine sorted the entire score table; these
kernels select the top ``k`` in O(n log k) (heap) or O(n + k log k)
(partition) while producing the *identical* ranked list, boundary ties
included.
"""

import heapq
from typing import Dict, List, Tuple

import numpy as np

from .beliefs import ArrayBeliefs

Ranking = List[Tuple[int, float]]


def rank_dict(scores: Dict[int, float], k: int) -> Ranking:
    """Heap-select the top ``k`` of a reference score dict."""
    if k <= 0:
        return []
    return heapq.nsmallest(k, scores.items(), key=lambda item: (-item[1], item[0]))


def rank_arrays(scores: ArrayBeliefs, k: int) -> Ranking:
    """Partition-select the top ``k`` of an array score table."""
    doc_ids, beliefs = scores.doc_ids, scores.beliefs
    n = int(doc_ids.size)
    if k <= 0 or n == 0:
        return []
    if n > k:
        # Partition on belief alone, then widen to every document tied
        # with the k-th belief so the doc-id tiebreak stays exact.
        cutoff_idx = np.argpartition(beliefs, n - k)[n - k]
        cutoff = beliefs[cutoff_idx]
        keep = np.nonzero(beliefs >= cutoff)[0]
        doc_ids, beliefs = doc_ids[keep], beliefs[keep]
    order = np.lexsort((doc_ids, -beliefs))[:k]
    return list(zip(doc_ids[order].tolist(), beliefs[order].tolist()))
