"""MaxScore dynamic pruning: top-k evaluation that skips documents.

Exhaustive document-at-a-time evaluation scores every document any
query term mentions.  For a top-k request almost all of that work is
provably wasted: once k documents are on the heap, a candidate whose
*score ceiling* cannot beat the current threshold can be discarded
without computing its score — and a record chunk none of whose
documents can beat the threshold need never be fetched from the store.

This module implements the MaxScore strategy of Turtle & Flood
("Query evaluation: strategies and optimizations", 1995 — the same
INQUERY lineage as the paper's engine) over the bound metadata that
:mod:`repro.inquery.bounds` persists in Mneme records:

* terms are ordered by how much belief they can add over the default
  (``weight * (bound - default)``); the maximal prefix whose combined
  ceiling still loses to the heap threshold is the *non-essential* set;
* only essential streams drive iteration — a document with evidence
  solely in non-essential terms can never enter the heap, so it is
  never even visited;
* each candidate gets a refined ceiling from its exact essential
  beliefs plus per-chunk bounds for the non-essential terms (located by
  binary search over the sidecar's last-doc fence, without fetching the
  chunk); only survivors are exact-scored;
* the threshold only rises, so the non-essential prefix only grows.

Windows and strides
-------------------
Evaluation proceeds in *windows* — the documents covered by the
essential cursors' currently resident chunks — and, within a window,
in *strides* of :data:`PRUNE_STRIDE` candidates.  The heap threshold
and the essential/non-essential partition are frozen at each stride
boundary.  Freezing costs a little pruning power (the threshold a
candidate is tested against may be up to a stride stale, which is still
admissible because the threshold only rises) and buys the fast path its
speed: with the threshold fixed, a whole stride's ceilings and skip
decisions become array expressions.

Two drivers implement the identical algorithm: a pure-Python reference
loop and a vectorized loop used when the fast path is enabled.  As with
every fast-path kernel, the two are *observationally identical* — same
rankings, same skip/score counters, same block fetches in the same
order, same simulated-clock charge sequence, same resident-byte
trajectory — because stride boundaries, threshold snapshots, fetch
decisions, and per-candidate charges are defined by the algorithm, not
by the implementation.

Bit-identity contract
---------------------
The ranking (document order, belief values, and tie-breaks) is
bit-identical to the exhaustive engines'.  Two properties guarantee it:

1. every skip is justified by an *admissible* ceiling — the bound
   arithmetic replaces operands of correctly-rounded monotone
   operations with values no smaller (see :mod:`repro.inquery.bounds`),
   so a computed bound can never fall below the computed belief, and
   the fold below mirrors the reference fold's operation order;
2. ties are skipped only when they would lose the tie-break: a
   candidate whose ceiling *equals* the threshold is still scored when
   its document id is smaller than the heap root's (ascending-id wins).

What is *not* identical: the simulated I/O and CPU observables.
Pruning exists to do less work, so record lookups, buffer traffic, and
charge totals legitimately differ from exhaustive evaluation — that is
the measured effect, while the ranking invariance above is the safety
property the test suite locks down.
"""

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import BadBlockError, PruningUnsupportedError
from ..inquery.bounds import PrunableSource, belief_bound
from ..inquery.network import DEFAULT_BELIEF, inquery_idf
from ..inquery.postings import decode_record

#: Candidates evaluated between threshold refreshes.  Both drivers
#: honour the same boundaries, so their skip decisions are identical.
#: Larger strides amortize the fast driver's array setup but test
#: candidates against a staler (still admissible) threshold; 512 is
#: the empirical balance point on the TIPSTER profiles.
PRUNE_STRIDE = 512


def _entry_bytes(entry) -> int:
    """Rough record size for the term-cache byte charge (df-proportional,
    the same estimate the exhaustive engines use for the decode charge).
    The tape is admitted at full-record size up front even though blocks
    fill in lazily — conservative, so the budget can never be breached
    by late fills."""
    return 2 + entry.df * 4 + entry.ctf * 2


@dataclass
class PruneOutcome:
    """Ranking plus the pruning-effect counters for one query."""

    ranking: List[Tuple[int, float]]
    documents_scored: int = 0
    documents_skipped: int = 0
    blocks_skipped: int = 0
    prune_threshold_updates: int = 0
    peak_resident_bytes: int = 0
    lookups: int = 0
    attempted: int = 0
    failed: int = 0


def _block_decoder(use_fastpath: bool) -> Callable[[bytes], tuple]:
    """Raw block -> (doc ids, tfs), both ascending by document, unfiltered.

    The fast decoder returns the vectorized kernel's numpy columns (the
    fast driver slices them wholesale); the reference decoder returns
    pure-Python lists.  Both carry the same integers, so everything
    downstream — candidate order, bounds, scores, skip counters — is
    decoder-independent.  Tombstone filtering is a *separate* step
    (:func:`_dead_filter`, applied per cursor after decode or after a
    term-cache hit) so cached payloads stay epoch-raw and reusable.
    """
    if use_fastpath:
        from .codec import decode_record_arrays

        def decode_fast(raw: bytes):
            arrays = decode_record_arrays(raw)
            return arrays.doc_ids, arrays.tf

        return decode_fast

    def decode_ref(raw: bytes):
        postings = decode_record(raw)
        return [d for d, _p in postings], [len(p) for _d, p in postings]

    return decode_ref


def _dead_filter(use_fastpath: bool, dead) -> Optional[Callable]:
    """(docs, tfs) -> (docs, tfs) with ``dead`` documents dropped.

    Returns ``None`` when there is nothing to filter (the common case:
    the decoded columns pass through untouched).  This is the single
    tombstone choke point of the pruned path; the per-block bound
    sidecars stay keyed to the physical blocks and remain admissible (a
    dead document can only make a bound stale-*high*).
    """
    if not dead:
        return None
    if use_fastpath:
        import numpy as np

        dead_arr = np.fromiter(sorted(dead), dtype=np.int64)

        def filter_fast(docs, tfs):
            keep = ~np.isin(docs, dead_arr)
            if keep.all():
                return docs, tfs
            return docs[keep], tfs[keep]

        return filter_fast

    dead_set = dead

    def filter_ref(docs, tfs):
        kept = [(d, t) for d, t in zip(docs, tfs) if d not in dead_set]
        return [d for d, _t in kept], [t for _d, t in kept]

    return filter_ref


class _TermCursor:
    """One live query term's iteration state over its block source."""

    __slots__ = (
        "position", "source", "idf", "ub", "block", "offset",
        "docs", "tfs", "block_bytes", "cache_block", "cache_docs",
        "cache_tfs", "cache_bytes", "dead", "ub_table", "last_arr",
        "tape", "dead_filter",
    )

    def __init__(self, position: int, source: PrunableSource, idf: float, ub: float):
        self.position = position
        self.source = source
        self.idf = idf
        self.ub = ub                 #: term-level belief ceiling
        self.block = 0               #: essential-iteration cursor
        self.offset = 0
        self.docs = None
        self.tfs = None
        self.block_bytes = 0         #: raw bytes of the cursor block
        self.cache_block = -1        #: last block fetched for NE lookups
        self.cache_docs = None
        self.cache_tfs = None
        self.cache_bytes = 0
        self.dead = False
        self.ub_table = None         #: fast driver: per-block bound column
        self.last_arr = None         #: fast driver: last-doc fence column
        self.tape = None             #: term-cache block dict, or None
        self.dead_filter = None      #: post-decode tombstone filter


class _Evaluator:
    """Shared machinery: block fetch/decode, bounds, and the fold."""

    def __init__(self, decode, clock, weights, total_weight, weighted, on_failure):
        self._decode = decode
        self._clock = clock
        self.weights = weights
        self.total_weight = total_weight
        self.weighted = weighted
        self._on_failure = on_failure
        self.resident = 0
        self.peak_resident = 0

    def fail(self) -> None:
        self._on_failure()

    def fetch_decoded(self, cursor: _TermCursor, block: int):
        """Fetch + decode one block, charging decode CPU for the bytes
        actually transferred (exhaustive evaluation charges for whole
        records; pruned evaluation pays only for what it reads).

        With a term-cache tape attached the block may already be
        resident decoded: the store read and the decode charge are
        elided, but the block still counts as fetched (it was not
        pruned) and still reports its recorded raw size so the
        resident-byte trajectory matches a cache-off run exactly.
        Tombstone filtering happens *after* the tape, so cached columns
        stay epoch-raw.
        """
        tape = cursor.tape
        if tape is not None and block in tape:
            docs, tfs, nbytes = tape[block]
            cursor.source.mark_fetched(block)
            if cursor.dead_filter is not None:
                docs, tfs = cursor.dead_filter(docs, tfs)
            return (docs, tfs), nbytes
        raw = cursor.source.fetch_block(block)
        self._clock.charge_user(
            self._clock.cost.cpu_ms_per_kb_decode * (len(raw) / 1024.0)
        )
        docs, tfs = self._decode(raw)
        if tape is not None:
            tape[block] = (docs, tfs, len(raw))
        if cursor.dead_filter is not None:
            docs, tfs = cursor.dead_filter(docs, tfs)
        return (docs, tfs), len(raw)

    def track(self, grew: int) -> None:
        self.resident += grew
        if self.resident > self.peak_resident:
            self.peak_resident = self.resident

    def current_doc(self, cursor: _TermCursor) -> Optional[int]:
        """Essential iteration: the cursor's next unconsumed document."""
        while True:
            if cursor.dead:
                return None
            if cursor.docs is None:
                if cursor.block >= cursor.source.n_blocks:
                    return None
                try:
                    (docs, tfs), nbytes = self.fetch_decoded(cursor, cursor.block)
                except BadBlockError:
                    cursor.dead = True
                    self._on_failure()
                    return None
                cursor.block_bytes = nbytes
                self.track(nbytes)
                cursor.docs, cursor.tfs = docs, tfs
                cursor.offset = 0
            if cursor.offset < len(cursor.docs):
                return cursor.docs[cursor.offset]
            self.track(-cursor.block_bytes)
            cursor.block_bytes = 0
            cursor.block += 1
            cursor.docs = cursor.tfs = None

    def ensure_block(self, cursor: _TermCursor, block: int):
        """(docs, tfs) of ``block``, through the non-essential cache.

        The cursor's own resident chunk is reused when it is the one
        asked for (a freshly demoted term keeps its partially consumed
        chunk); otherwise a one-block cache holds the last chunk this
        term was probed in — candidates arrive in ascending order, so
        repeat fetches are rare.  Returns ``None`` on a bad block.
        """
        if cursor.docs is not None and block == cursor.block:
            return cursor.docs, cursor.tfs
        if block == cursor.cache_block:
            return cursor.cache_docs, cursor.cache_tfs
        try:
            (docs, tfs), nbytes = self.fetch_decoded(cursor, block)
        except BadBlockError:
            cursor.dead = True
            self._on_failure()
            return None
        self.track(nbytes - cursor.cache_bytes)
        cursor.cache_bytes = nbytes
        cursor.cache_block = block
        cursor.cache_docs, cursor.cache_tfs = docs, tfs
        return docs, tfs

    def lookup_tf(self, cursor: _TermCursor, doc: int) -> Optional[int]:
        """Non-essential lookup: tf of ``doc`` in this term, or ``None``."""
        if cursor.dead:
            return None
        block = cursor.source.block_of_doc(doc)
        if block >= cursor.source.n_blocks:
            return None
        loaded = self.ensure_block(cursor, block)
        if loaded is None:
            return None
        docs, tfs = loaded
        index = bisect_left(docs, doc)
        if index < len(docs) and docs[index] == doc:
            return tfs[index]
        return None

    def chunk_ub(self, cursor: _TermCursor, doc: int) -> float:
        """Per-chunk belief ceiling for ``doc``, without fetching it."""
        if cursor.dead:
            return DEFAULT_BELIEF
        block = cursor.source.block_of_doc(doc)
        if block >= cursor.source.n_blocks:
            return DEFAULT_BELIEF
        last = cursor.source.last_docs[block]
        if last is None:
            return cursor.ub
        return belief_bound(cursor.source.max_tfs[block], cursor.idf)

    def fold(self, values: List[float]) -> float:
        """The reference fold — same expressions, same operation order,
        as the exhaustive engines, so exact scores are bit-identical
        and (by operand monotonicity) folded ceilings are admissible."""
        if self.weighted:
            return (
                sum(w * v for w, v in zip(self.weights, values))
                / self.total_weight
            )
        if len(values) == 1:
            return values[0]
        return sum(values) / len(values)


class _PruneState:
    """Heap, partition, and counters — shared by both drivers."""

    def __init__(self, evaluator, cursors, order, doctable, avg_len, clock,
                 top_k, n_positions, outcome):
        self.evaluator = evaluator
        self.cursors = cursors
        self.order = order
        self.doctable = doctable
        self.avg_len = avg_len
        self.clock = clock
        self.cost = clock.cost
        self.top_k = top_k
        self.n_positions = n_positions
        self.outcome = outcome
        self.heap: List[Tuple[float, int]] = []  # (score, -doc): root = worst
        self.ne_len = 0

    def _fold_ceiling(self, ne_positions) -> float:
        values = [DEFAULT_BELIEF] * self.n_positions
        for position in ne_positions:
            values[position] = self.cursors[position].ub
        return self.evaluator.fold(values)

    def _grow_partition(self) -> bool:
        """Extend the non-essential prefix as far as the threshold allows.

        Strict ``<``: a set whose combined ceiling *equals* the
        threshold could still produce a tie that wins on document id,
        so it must stay essential.  Returns whether the prefix grew.
        """
        theta_score = self.heap[0][0]
        grew = False
        while self.ne_len < len(self.order):
            if self._fold_ceiling(self.order[: self.ne_len + 1]) < theta_score:
                self.ne_len += 1
                grew = True
            else:
                break
        return grew

    def stride_theta(self):
        """Stride-boundary refresh: grow the partition if the heap is
        full and snapshot the threshold the next stride is tested
        against.  Returns ``(partition_grew, theta)`` where ``theta``
        is ``(score, doc id)`` or ``None`` while the heap is short."""
        if len(self.heap) >= self.top_k:
            grew = self._grow_partition()
            score, neg_doc = self.heap[0]
            return grew, (score, -neg_doc)
        return False, None

    def begin_window(self):
        """Open the next window: refresh the partition, load the
        essential cursors' chunks (in essential order — the fetch order
        both drivers share), and snapshot the threshold.  Returns
        ``(live positions, theta)`` or ``None`` when evaluation is
        done."""
        if len(self.heap) >= self.top_k:
            self._grow_partition()
        if self.ne_len >= len(self.order):
            return None
        live = []
        for position in self.order[self.ne_len:]:
            if self.evaluator.current_doc(self.cursors[position]) is not None:
                live.append(position)
        if not live:
            return None
        theta = None
        if len(self.heap) >= self.top_k:
            score, neg_doc = self.heap[0]
            theta = (score, -neg_doc)
        return live, theta

    def push(self, doc: int, score: float, evidence: int) -> None:
        """Account one exact-scored document and offer it to the heap."""
        self.outcome.documents_scored += 1
        self.clock.charge_user(self.cost.cpu_ms_per_posting * (evidence + 1))
        item = (score, -doc)
        heap = self.heap
        if len(heap) < self.top_k:
            heapq.heappush(heap, item)
            if len(heap) == self.top_k:
                self.outcome.prune_threshold_updates += 1
        elif item > heap[0]:
            heapq.heapreplace(heap, item)
            self.outcome.prune_threshold_updates += 1


def _run_reference(state: _PruneState) -> None:
    """Pure-Python driver: one candidate at a time, stride-frozen theta."""
    evaluator = state.evaluator
    cursors = state.cursors
    clock = state.clock
    outcome = state.outcome
    avg_len = state.avg_len
    check_charge = state.cost.cpu_ms_per_posting
    while True:
        opened = state.begin_window()
        if opened is None:
            return
        live, theta = opened
        live_cursors = [cursors[position] for position in live]
        window_end = min(cursor.docs[-1] for cursor in live_cursors)
        stride_left = PRUNE_STRIDE
        while True:
            candidate = None
            for cursor in live_cursors:
                if cursor.offset < len(cursor.docs):
                    doc = cursor.docs[cursor.offset]
                    if candidate is None or doc < candidate:
                        candidate = doc
            if candidate is None or candidate > window_end:
                break  # window consumed: advance chunks, open the next
            if stride_left == 0:
                grew, theta = state.stride_theta()
                if grew:
                    break  # partition changed: rebuild the window
                stride_left = PRUNE_STRIDE
            stride_left -= 1

            # Exact essential evidence (consumed whether or not we skip —
            # essential streams are read in full while they stay
            # essential).
            doc_len = state.doctable.length_of(candidate)
            beliefs = [DEFAULT_BELIEF] * state.n_positions
            evidence = 0
            for cursor in live_cursors:
                if cursor.offset < len(cursor.docs) \
                        and cursor.docs[cursor.offset] == candidate:
                    tf = cursor.tfs[cursor.offset]
                    cursor.offset += 1
                    tf_w = tf / (tf + 0.5 + 1.5 * doc_len / avg_len)
                    beliefs[cursor.position] = (
                        DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_w * cursor.idf
                    )
                    evidence += 1

            if theta is not None:
                theta_score, theta_doc = theta
                values = list(beliefs)
                for position in state.order[: state.ne_len]:
                    values[position] = evaluator.chunk_ub(
                        cursors[position], candidate
                    )
                ceiling = evaluator.fold(values)
                clock.charge_user(check_charge)
                if ceiling < theta_score or (
                    ceiling == theta_score and candidate > theta_doc
                ):
                    outcome.documents_skipped += 1
                    continue

            for position in state.order[: state.ne_len]:
                tf = evaluator.lookup_tf(cursors[position], candidate)
                if tf is not None:
                    tf_w = tf / (tf + 0.5 + 1.5 * doc_len / avg_len)
                    beliefs[position] = (
                        DEFAULT_BELIEF
                        + (1.0 - DEFAULT_BELIEF) * tf_w * cursors[position].idf
                    )
                    evidence += 1
            state.push(candidate, evaluator.fold(beliefs), evidence)


def _ub_column(cursor: _TermCursor, chunk):
    """Vectorized :meth:`_Evaluator.chunk_ub` over a candidate chunk."""
    import numpy as np

    if cursor.dead:
        return DEFAULT_BELIEF
    source = cursor.source
    n_blocks = source.n_blocks
    if cursor.ub_table is None:
        table = np.empty(n_blocks + 1, dtype=np.float64)
        for block in range(n_blocks):
            last = source.last_docs[block]
            table[block] = (
                cursor.ub if last is None
                else belief_bound(source.max_tfs[block], cursor.idf)
            )
        table[n_blocks] = DEFAULT_BELIEF  # beyond the fence: no evidence
        cursor.ub_table = table
        if n_blocks > 1:
            cursor.last_arr = np.asarray(source.last_docs, dtype=np.int64)
    if n_blocks == 1:
        return cursor.ub_table[np.zeros(chunk.size, dtype=np.int64)]
    return cursor.ub_table[
        np.minimum(
            np.searchsorted(cursor.last_arr, chunk, side="left"), n_blocks
        )
    ]


def _chunk_mask(state: _PruneState, columns, chunk, start, stop, theta):
    """One stride's skip decisions as a boolean keep-mask.

    Folds the per-candidate ceilings in the reference fold's exact
    operation order (elementwise), so every ceiling — and therefore
    every decision against the frozen threshold — is bit-identical to
    the reference driver's.
    """
    import numpy as np

    evaluator = state.evaluator
    ne_columns = {
        position: _ub_column(state.cursors[position], chunk)
        for position in state.order[: state.ne_len]
    }

    def contrib(position):
        column = columns.get(position)
        if column is not None:
            return column[start:stop]
        return ne_columns.get(position, DEFAULT_BELIEF)

    if evaluator.weighted:
        acc = np.zeros(chunk.size, dtype=np.float64)
        for position in range(state.n_positions):
            acc = acc + evaluator.weights[position] * contrib(position)
        ceiling = acc / evaluator.total_weight
    elif state.n_positions == 1:
        only = contrib(0)
        ceiling = only if isinstance(only, np.ndarray) \
            else np.full(chunk.size, only, dtype=np.float64)
    else:
        acc = np.zeros(chunk.size, dtype=np.float64)
        for position in range(state.n_positions):
            acc = acc + contrib(position)
        ceiling = acc / state.n_positions
    theta_score, theta_doc = theta
    return (ceiling > theta_score) | (
        (ceiling == theta_score) & (chunk <= theta_doc)
    )


class _ChunkNE:
    """Batched non-essential lookups for one stride chunk.

    Replays exactly the reference ``lookup_tf`` sequence — the same
    chunk is fetched at the same surviving candidate, with the same
    cache transitions and decode charges — but when a chunk comes
    resident it resolves the tf of *every* candidate in the stride that
    falls in it with one array search instead of one bisect per
    survivor.  The per-candidate hot loop then runs over plain Python
    lists (the array scalars carry identical values, just slower
    indexing).
    """

    def __init__(self, state: _PruneState, chunk):
        self.state = state
        self.chunk = chunk
        self._data = None

    def _build(self):
        import numpy as np

        state = self.state
        data = []
        size = int(self.chunk.size)
        for position in state.order[: state.ne_len]:
            cursor = state.cursors[position]
            source = cursor.source
            if source.n_blocks == 1:
                blocks = [0] * size
            else:
                if cursor.last_arr is None:
                    cursor.last_arr = np.asarray(
                        source.last_docs, dtype=np.int64
                    )
                blocks = np.searchsorted(
                    cursor.last_arr, self.chunk, side="left"
                ).tolist()
            data.append(
                (position, cursor, source.n_blocks, blocks, [0] * size, set())
            )
        self._data = data
        return data

    def _resolve(self, cursor, block, blocks, tf_col) -> None:
        """Make ``block`` resident (reference fetch path) and scatter
        its tfs for every chunk candidate the block covers."""
        import numpy as np

        loaded = self.state.evaluator.ensure_block(cursor, block)
        if loaded is None:
            return
        docs, tfs = loaded
        if not len(docs):
            # A block left empty by tombstone filtering contributes no
            # evidence (tf_col already defaults to 0 for its range).
            return
        lo = bisect_left(blocks, block)
        hi = bisect_right(blocks, block)
        sub = self.chunk[lo:hi]
        index = np.minimum(np.searchsorted(docs, sub), len(docs) - 1)
        tf_col[lo:hi] = np.where(docs[index] == sub, tfs[index], 0).tolist()

    def apply(self, j: int, doc: int, beliefs: list, evidence: int) -> int:
        """Fold candidate ``j``'s non-essential evidence into ``beliefs``."""
        data = self._data
        if data is None:
            data = self._build()
        state = self.state
        avg_len = state.avg_len
        doc_len = None
        for position, cursor, n_blocks, blocks, tf_col, resolved in data:
            if cursor.dead:
                continue
            block = blocks[j]
            if block >= n_blocks:
                continue
            if block not in resolved:
                resolved.add(block)
                self._resolve(cursor, block, blocks, tf_col)
                if cursor.dead:
                    continue
            tf = tf_col[j]
            if tf:
                if doc_len is None:
                    doc_len = state.doctable.length_of(doc)
                tf_w = tf / (tf + 0.5 + 1.5 * doc_len / avg_len)
                beliefs[position] = (
                    DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_w * cursor.idf
                )
                evidence += 1
        return evidence


def _run_fast(state: _PruneState) -> None:
    """Vectorized driver: whole strides decided with array operations.

    Everything observable happens at the same point as in the
    reference driver — chunk loads in essential order at window starts,
    the per-candidate check charge and non-essential fetches in
    candidate order inside the replay loop below — only the *ceiling
    arithmetic* and the *tf searches* are batched.
    """
    import numpy as np

    from .beliefs import term_beliefs
    from .daat import doc_length_lookup

    evaluator = state.evaluator
    cursors = state.cursors
    clock = state.clock
    outcome = state.outcome
    lengths_of = doc_length_lookup(state.doctable)
    check_charge = state.cost.cpu_ms_per_posting
    while True:
        opened = state.begin_window()
        if opened is None:
            return
        live, theta = opened
        live_cursors = [cursors[position] for position in live]
        window_end = min(int(cursor.docs[-1]) for cursor in live_cursors)

        # The window's candidates and exact essential beliefs, in one
        # batch: a live cursor's unconsumed slice up to the window end
        # is exactly the evidence the reference loop would consume.
        parts = []
        for cursor in live_cursors:
            lo = cursor.offset
            hi = int(np.searchsorted(cursor.docs, window_end, side="right"))
            if hi > lo:
                parts.append((cursor, lo, hi))
        if len(parts) == 1:
            cand = parts[0][0].docs[parts[0][1]: parts[0][2]]
        else:
            cand = np.unique(
                np.concatenate([c.docs[lo:hi] for c, lo, hi in parts])
            )
        ev_counts = np.zeros(cand.size, dtype=np.int64)
        columns: Dict[int, np.ndarray] = {}
        for cursor, lo, hi in parts:
            docs = cursor.docs[lo:hi]
            slots = np.searchsorted(cand, docs)
            ev_counts[slots] += 1
            beliefs = term_beliefs(
                docs, cursor.tfs[lo:hi], lengths_of(docs),
                cursor.idf, state.avg_len, DEFAULT_BELIEF,
            ).beliefs
            if docs.size == cand.size:
                columns[cursor.position] = beliefs
            else:
                column = np.full(cand.size, DEFAULT_BELIEF, dtype=np.float64)
                column[slots] = beliefs
                columns[cursor.position] = column

        abandoned = False
        start = 0
        while start < cand.size:
            if start:
                grew, theta = state.stride_theta()
                if grew:
                    abandoned = True
                    break
            stop = min(start + PRUNE_STRIDE, cand.size)
            chunk = cand[start:stop]
            keep = None
            if theta is not None:
                keep = _chunk_mask(
                    state, columns, chunk, start, stop, theta
                ).tolist()
            lookups = _ChunkNE(state, chunk) if state.ne_len else None
            chunk_columns = [
                (position, column[start:stop].tolist())
                for position, column in columns.items()
            ]

            # Replay in candidate order: charges, fetches, and heap
            # traffic land exactly where the reference driver puts them.
            counts = ev_counts[start:stop].tolist()
            for j, doc in enumerate(chunk.tolist()):
                if keep is not None:
                    clock.charge_user(check_charge)
                    if not keep[j]:
                        outcome.documents_skipped += 1
                        continue
                evidence = counts[j]
                beliefs = [DEFAULT_BELIEF] * state.n_positions
                for position, column in chunk_columns:
                    beliefs[position] = column[j]
                if lookups is not None:
                    evidence = lookups.apply(j, doc, beliefs, evidence)
                state.push(doc, evaluator.fold(beliefs), evidence)
            start = stop

        # Sync consumption: the reference loop advances offsets one
        # candidate at a time; wholesale assignment lands on the same
        # offsets because every cursor document in range is a candidate.
        if abandoned:
            if start:
                last = int(cand[start - 1])
                for cursor, lo, hi in parts:
                    cursor.offset = lo + int(
                        np.searchsorted(
                            cursor.docs[lo:hi], last, side="right"
                        )
                    )
        else:
            for cursor, lo, hi in parts:
                cursor.offset = hi


def run_pruned(
    store,
    entries: List[Optional[object]],
    weights: List[float],
    total_weight: float,
    weighted: bool,
    doctable,
    avg_len: float,
    clock,
    top_k: int,
    use_fastpath: bool,
    tombstones: Optional[set] = None,
    term_cache=None,
) -> PruneOutcome:
    """Top-k evaluation of one flat #sum/#wsum query with MaxScore.

    ``entries`` is positional (one slot per query child, ``None`` or
    df==0 for terms with no evidence).  Raises
    :class:`~repro.errors.PruningUnsupportedError` when no safe bound
    exists: a negative #wsum weight (the fold is no longer monotone in
    each belief) or a live term without bound metadata (a record built
    before bounds existed).
    """
    if weighted:
        for weight in weights:
            if weight < 0:
                raise PruningUnsupportedError("negative #wsum weight")
    live_entries = [
        (position, entry)
        for position, entry in enumerate(entries)
        if entry is not None and entry.df > 0 and entry.storage_key != 0
    ]
    for _position, entry in live_entries:
        if entry.max_tf <= 0:
            raise PruningUnsupportedError(
                f"term {entry.term!r} has no max-tf bound metadata"
            )

    cost = clock.cost
    n_docs = max(len(doctable), 1)
    n_positions = len(weights)
    outcome = PruneOutcome(ranking=[])
    failures = [0]
    dead_now = set(tombstones) if tombstones else set()
    evaluator = _Evaluator(
        _block_decoder(use_fastpath), clock, weights,
        total_weight, weighted,
        lambda: failures.__setitem__(0, failures[0] + 1),
    )
    base_filter = _dead_filter(use_fastpath, dead_now)

    cursors: Dict[int, _TermCursor] = {}
    for position, entry in live_entries:
        outcome.attempted += 1
        idf = inquery_idf(n_docs, entry.df)
        try:
            source = store.open_prune_source(entry)
        except BadBlockError:
            failures[0] += 1
            continue
        outcome.lookups += 1
        cursor = _TermCursor(
            position, source, idf, belief_bound(entry.max_tf, idf)
        )
        cursor.dead_filter = base_filter
        if term_cache is not None:
            # The tape is tied to the record's physical block layout:
            # compaction re-splitting the chunks changes the
            # fingerprint, so the stale tape misses and is replaced.
            fingerprint = (
                entry.storage_key, source.n_blocks,
                tuple(source.last_docs), tuple(source.max_tfs),
            )
            clock.charge_user(term_cache.probe_ms)
            hit = term_cache.get("blocks", entry.term, fingerprint=fingerprint)
            if hit is not None:
                cursor.tape = hit.payload
                cursor.dead_filter = _dead_filter(
                    use_fastpath, hit.dead | dead_now
                )
            else:
                tape = {}
                term_cache.put(
                    "blocks", entry.term, tape, _entry_bytes(entry),
                    dead=dead_now, fingerprint=fingerprint,
                )
                cursor.tape = tape
        cursors[position] = cursor

    # Benefit ordering: how much belief the term can add over an absent
    # term's default contribution.  Ascending, so the non-essential set
    # is always a prefix.
    def benefit(position: int) -> float:
        gain = cursors[position].ub - DEFAULT_BELIEF
        return weights[position] * gain if weighted else gain

    order = sorted(cursors, key=lambda position: (benefit(position), position))
    state = _PruneState(
        evaluator, cursors, order, doctable, avg_len, clock,
        top_k, n_positions, outcome,
    )
    if use_fastpath:
        _run_fast(state)
    else:
        _run_reference(state)

    # Final selection order matches heapq.nsmallest's (-score, doc) key.
    clock.charge_user(cost.cpu_ms_per_posting * len(state.heap))
    outcome.ranking = [
        (int(-neg_doc), float(score))
        for score, neg_doc in sorted(
            state.heap, key=lambda item: (-item[0], -item[1])
        )
    ]
    outcome.peak_resident_bytes = evaluator.peak_resident
    outcome.failed = failures[0]
    outcome.blocks_skipped = sum(
        cursor.source.n_blocks - cursor.source.blocks_fetched
        for cursor in cursors.values()
    )
    return outcome
