"""Vectorized fast-path kernels.

This package accelerates the user-CPU hot spots the paper identifies —
record decompression, belief arithmetic, ranking — with numpy bulk
kernels, under one hard invariant: **the fast path changes real
wall-clock time only**.  Encoded records are byte-identical, beliefs
and rankings are bit-identical, and every simulated-clock charge
(``I``/``A``/``B``, buffer hits, Tables 3-6) is unchanged with respect
to the pure-Python reference implementations, which remain in place.

Layout:

* :mod:`~repro.fastpath.state`   — the global ``use_fastpath`` toggle;
* :mod:`~repro.fastpath.vbyte`   — bulk v-byte encode/decode;
* :mod:`~repro.fastpath.codec`   — the postings-record codec;
* :mod:`~repro.fastpath.beliefs` — array belief tables + operator kernels;
* :mod:`~repro.fastpath.topk`    — O(n log k) ranking selection;
* :mod:`~repro.fastpath.network` — the vectorized inference network;
* :mod:`~repro.fastpath.daat`    — windowed document-at-a-time scoring;
* :mod:`~repro.fastpath.windows` — proximity/snippet position-window kernels;
* :mod:`~repro.fastpath.build`   — whole-collection bulk record encoding.
"""

from .state import HAVE_NUMPY, enabled, set_enabled, use_fastpath

__all__ = [
    "HAVE_NUMPY",
    "enabled",
    "set_enabled",
    "use_fastpath",
]
