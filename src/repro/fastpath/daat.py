"""Vectorized document-at-a-time scoring.

The reference :class:`~repro.inquery.daat.DocumentAtATimeEngine` merges
posting streams with a heap and finishes each document's belief before
touching the next.  This module batches that loop: each stream's
resident chunk is viewed as columnar arrays, and all documents covered
by the currently-resident chunks — a *window* — are scored in one set
of numpy operations.

Observational-identity contract (the same one every fast-path kernel
obeys):

* chunk refills are driven through the reference streams'
  ``_refill_raw`` in the exact order the heap merge would have
  triggered them, so every I/O, buffer reference, and simulated charge
  below the engine is unchanged;
* between refills the streams' resident bytes are constant, so the
  per-window resident snapshot equals every per-document snapshot the
  reference loop would have taken — ``peak_resident_bytes`` is
  identical;
* beliefs fold child-by-child in the reference order with the same
  elementwise IEEE-754 operations, so scores are bit-identical;
* the per-document engine charge (``cpu_ms_per_posting * (evidence +
  1)``) is applied document-by-document in document order, so the
  simulated clock accumulates the identical float sequence.

Dynamic top-k pruning (:mod:`repro.fastpath.prune`) shares this
module's window decomposition and :func:`doc_length_lookup`, but scores
*fewer* documents by design — its contract is weaker here (I/O and
buffer observables may shrink) and stronger elsewhere (the surviving
top-k must be bit-identical to this module's exhaustive result).
"""

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..inquery.network import DEFAULT_BELIEF
from ..inquery.streams import PostingStream
from .beliefs import ArrayBeliefs, term_beliefs


def doc_length_lookup(doctable) -> Callable[[np.ndarray], np.ndarray]:
    """Vectorized ``doc_id -> length`` mapping over a document table.

    Dense (or nearly dense) id spaces get an O(1) array LUT;
    pathologically sparse ids fall back to per-id dict lookups.
    """
    lengths = doctable.lengths
    max_id = max(lengths) if lengths else 0
    if max_id <= 2 * len(lengths) + 1024:
        lut = np.zeros(max_id + 1, dtype=np.int64)
        for doc_id, length in lengths.items():
            lut[doc_id] = length
        return lambda doc_ids: lut[doc_ids]
    return lambda doc_ids: np.fromiter(
        (lengths[int(d)] for d in doc_ids), dtype=np.int64, count=doc_ids.size
    )


class _ArrayStream:
    """Columnar view over one reference stream's refill sequence.

    Wraps (never replaces) a :class:`PostingStream`: refills go through
    the wrapped stream so chunk I/O order, ``resident_bytes``, and
    exhaustion transitions stay byte-for-byte what the reference merge
    produces.
    """

    __slots__ = ("stream", "doc_ids", "tf", "cursor", "_use_raw")

    def __init__(self, stream: PostingStream):
        self.stream = stream
        self.doc_ids: Optional[np.ndarray] = None
        self.tf: Optional[np.ndarray] = None
        self.cursor = 0
        self._use_raw = True

    @property
    def resident_bytes(self) -> int:
        return self.stream.resident_bytes

    def ensure_batch(self) -> bool:
        """Array analogue of ``PostingStream.peek``'s refill loop.

        Returns ``True`` if at least one unconsumed posting is loaded.
        Mirrors the reference loop exactly — including retrying on an
        empty decoded batch and zeroing ``resident_bytes`` on
        exhaustion — so refills happen at identical times.
        """
        while self.doc_ids is None or self.cursor >= self.doc_ids.size:
            stream = self.stream
            if stream.exhausted:
                return False
            batch = self._next_batch()
            if batch is None:
                stream.exhausted = True
                stream.resident_bytes = 0
                return False
            self.doc_ids, self.tf = batch
            self.cursor = 0
        return True

    def _next_batch(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        stream = self.stream
        if self._use_raw:
            try:
                raw = stream._refill_raw()
            except NotImplementedError:
                # Custom stream subclass that only implements _refill
                # (decoded batches); consume those instead.
                self._use_raw = False
            else:
                if raw is None:
                    return None
                from .codec import decode_record_arrays

                arrays = decode_record_arrays(raw)
                return arrays.doc_ids, arrays.tf
        batch = stream._refill()
        if batch is None:
            return None
        df = len(batch)
        doc_ids = np.fromiter((d for d, _p in batch), dtype=np.int64, count=df)
        tf = np.fromiter((len(p) for _d, p in batch), dtype=np.int64, count=df)
        return doc_ids, tf


def score_streams(
    streams: List[Tuple[int, PostingStream]],
    n_positions: int,
    weights: List[float],
    total_weight: float,
    weighted: bool,
    idf: Dict[int, float],
    doctable,
    avg_len: float,
    clock,
) -> Tuple[ArrayBeliefs, int, int]:
    """Score every document of a flat ``#sum``/``#wsum`` stream merge.

    Returns ``(scores, peak_resident_bytes, documents_scored)`` with
    the same values the reference heap merge computes.
    """
    cost = clock.cost
    wrappers = [(position, _ArrayStream(stream)) for position, stream in streams]
    lengths_of = doc_length_lookup(doctable)
    # charge(evidence) has only len(streams) possible values; precompute
    # them with the reference expression so each per-document charge is
    # the identical float.
    charge = [
        cost.cpu_ms_per_posting * (evidence + 1)
        for evidence in range(len(streams) + 1)
    ]
    doc_parts: List[np.ndarray] = []
    score_parts: List[np.ndarray] = []
    peak_resident = 0
    scored = 0
    while True:
        # Re-peek in stream order — the order the reference merge
        # re-peeks the streams it advanced last round (heap pops tie on
        # stream order), triggering any refills now.
        live = [
            (position, wrapper)
            for position, wrapper in wrappers
            if wrapper.ensure_batch()
        ]
        if not live:
            break
        resident = sum(wrapper.resident_bytes for _p, wrapper in wrappers)
        if resident > peak_resident:
            peak_resident = resident
        # All documents at or below the smallest batch-end are covered
        # by resident chunks: one refill-free window.
        end = min(int(wrapper.doc_ids[-1]) for _p, wrapper in live)
        window: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for position, wrapper in live:
            cursor = wrapper.cursor
            hi = cursor + int(
                np.searchsorted(wrapper.doc_ids[cursor:], end, side="right")
            )
            if hi > cursor:
                window.append(
                    (position, wrapper.doc_ids[cursor:hi], wrapper.tf[cursor:hi])
                )
                wrapper.cursor = hi
        if len(window) == 1:
            docs = window[0][1]
        else:
            docs = np.unique(np.concatenate([d for _p, d, _t in window]))
        scored += int(docs.size)

        evidence_counts = np.zeros(docs.size, dtype=np.int64)
        columns: Dict[int, np.ndarray] = {}
        for position, stream_docs, tf in window:
            slots = np.searchsorted(docs, stream_docs)
            evidence_counts[slots] += 1  # slots are unique per stream
            beliefs = term_beliefs(
                stream_docs, tf, lengths_of(stream_docs),
                idf[position], avg_len, DEFAULT_BELIEF,
            ).beliefs
            if stream_docs.size == docs.size:
                columns[position] = beliefs
            else:
                column = np.full(docs.size, DEFAULT_BELIEF, dtype=np.float64)
                column[slots] = beliefs
                columns[position] = column

        # Fold in the reference order: every child position in turn,
        # absent children contributing the default belief.
        if weighted:
            acc = np.zeros(docs.size, dtype=np.float64)
            for position in range(n_positions):
                column = columns.get(position)
                if column is None:
                    acc = acc + weights[position] * DEFAULT_BELIEF
                else:
                    acc = acc + weights[position] * column
            scores = acc / total_weight
        elif n_positions == 1:
            scores = columns[0]
        else:
            acc = np.zeros(docs.size, dtype=np.float64)
            for position in range(n_positions):
                column = columns.get(position)
                if column is None:
                    acc = acc + DEFAULT_BELIEF
                else:
                    acc = acc + column
            scores = acc / n_positions
        doc_parts.append(docs)
        score_parts.append(scores)

        # The reference loop charges once per document, in document
        # order; replay the identical float sequence.
        for count in evidence_counts.tolist():
            clock.charge_user(charge[count])

    if not doc_parts:
        empty = np.empty(0, dtype=np.int64)
        return ArrayBeliefs(empty, np.empty(0, dtype=np.float64)), 0, 0
    all_docs = doc_parts[0] if len(doc_parts) == 1 else np.concatenate(doc_parts)
    all_scores = (
        score_parts[0] if len(score_parts) == 1 else np.concatenate(score_parts)
    )
    return ArrayBeliefs(all_docs, all_scores), peak_resident, scored
