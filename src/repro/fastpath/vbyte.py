"""Bulk v-byte kernels: whole-buffer decode, whole-vector encode.

The reference codec (:mod:`repro.inquery.postings`) walks one byte at a
time per integer; these kernels scan the complete byte buffer (or value
vector) with numpy primitives instead.  The encoding is the standard
7-bit little-endian variable-byte format, so output bytes are identical
to the reference encoder's.

Both kernels stay within 63-bit magnitudes (9 v-byte groups).  The
reference decoder accepts arbitrarily large Python integers; callers
that may encounter wider values fall back to the scalar path — the
structured record codec does exactly that.
"""

from typing import Tuple

import numpy as np

from ..errors import IndexError_

#: Largest value the vector kernels handle (9 seven-bit groups).
MAX_GROUPS = 9
MAX_VALUE = (1 << (7 * MAX_GROUPS)) - 1


def decode_stream(data: bytes) -> Tuple[np.ndarray, bool]:
    """Decode every complete v-byte integer in ``data`` at once.

    Returns ``(values, clean)`` where ``values`` is a ``uint64`` vector
    of the complete integers found and ``clean`` is ``False`` when the
    buffer ends inside an unterminated integer (the trailing partial
    group is dropped; the caller decides whether that is an error).

    Raises
    ------
    IndexError_
        If any integer spans more than :data:`MAX_GROUPS` bytes (the
        caller should fall back to the scalar decoder).
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size == 0:
        return np.empty(0, dtype=np.uint64), True
    ends = np.nonzero(raw < 0x80)[0]
    clean = ends.size > 0 and int(ends[-1]) == raw.size - 1
    if ends.size == 0:
        return np.empty(0, dtype=np.uint64), False
    used = raw[: int(ends[-1]) + 1]
    starts = np.empty(ends.size, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > MAX_GROUPS:
        raise IndexError_("v-byte integer too wide for the vector decoder")
    # Position of every byte within its integer, then the 7-bit payload
    # shifted into place and summed per integer.
    offsets = np.arange(used.size, dtype=np.int64) - np.repeat(starts, lengths)
    contrib = (used & 0x7F).astype(np.uint64) << (7 * offsets).astype(np.uint64)
    values = np.add.reduceat(contrib, starts)
    return values, clean


def encode_stream(values: np.ndarray) -> Tuple[bytes, np.ndarray]:
    """Encode a vector of unsigned integers into one v-byte buffer.

    Returns ``(buffer, byte_lengths)``; ``byte_lengths[i]`` is the
    encoded size of ``values[i]``, so callers can slice the buffer into
    sub-records with a cumulative sum.

    Raises
    ------
    IndexError_
        On negative input (mirrors the reference encoder) or values
        beyond :data:`MAX_VALUE`.
    """
    v = np.asarray(values)
    if v.size == 0:
        return b"", np.empty(0, dtype=np.int64)
    if v.dtype.kind not in "ui":
        raise IndexError_("v-byte encoder requires integer input")
    if v.dtype.kind == "i" and int(v.min()) < 0:
        bad = int(v[v < 0][0])
        raise IndexError_(f"cannot v-byte encode negative value {bad}")
    v = v.astype(np.uint64)
    if int(v.max()) > MAX_VALUE:
        raise IndexError_("value too wide for the vector encoder")
    lengths = np.ones(v.size, dtype=np.int64)
    for k in range(1, MAX_GROUPS):
        lengths += (v >= np.uint64(1 << (7 * k))).astype(np.int64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    out = np.empty(int(ends[-1]), dtype=np.uint8)
    for k in range(int(lengths.max())):
        mask = lengths > k
        payload = (v[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)
        continuation = (lengths[mask] - 1 > k).astype(np.uint64) << np.uint64(7)
        out[starts[mask] + k] = (payload | continuation).astype(np.uint8)
    return out.tobytes(), lengths
