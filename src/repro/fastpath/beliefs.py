"""Array-backed belief tables and INQUERY combination kernels.

A reference belief table is ``(dict, default)``; the fast path swaps
the dict for :class:`ArrayBeliefs` (sorted document-id vector + belief
vector) and keeps the same tuple shape, so the two table kinds mix
freely inside one evaluation.

Bit-identity discipline: every kernel folds beliefs in exactly the
left-to-right order of the reference operators in
:mod:`repro.inquery.network` using the same elementwise IEEE-754
operations, so a fast evaluation's beliefs — and therefore its ranking
— equal the reference evaluation's bit for bit.  (That is also why the
kernels accumulate sequentially per child rather than using pairwise
``np.sum`` reductions.)
"""

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np


class ArrayBeliefs:
    """Per-document beliefs as parallel sorted arrays."""

    __slots__ = ("doc_ids", "beliefs")

    def __init__(self, doc_ids: np.ndarray, beliefs: np.ndarray):
        self.doc_ids = doc_ids
        self.beliefs = beliefs

    def __len__(self) -> int:
        return int(self.doc_ids.size)

    def to_dict(self) -> Dict[int, float]:
        return dict(zip(self.doc_ids.tolist(), self.beliefs.tolist()))


#: Either belief-table payload: reference dict or fast arrays.
Scores = Union[Dict[int, float], ArrayBeliefs]
#: A node's evaluation, fast or reference: (scores, default belief).
Table = Tuple[Scores, float]


def as_arrays(scores: Scores) -> ArrayBeliefs:
    """Normalize either table payload to sorted arrays."""
    if isinstance(scores, ArrayBeliefs):
        return scores
    doc_ids = np.array(sorted(scores), dtype=np.int64)
    beliefs = np.fromiter(
        (scores[d] for d in doc_ids.tolist()), dtype=np.float64,
        count=doc_ids.size,
    )
    return ArrayBeliefs(doc_ids, beliefs)


def term_beliefs(
    doc_ids: np.ndarray,
    tf: np.ndarray,
    doc_lengths: np.ndarray,
    idf_w: float,
    avg_len: float,
    default: float,
) -> ArrayBeliefs:
    """Vectorized INQUERY term belief: ``0.4 + 0.6 * tf_w * idf_w``.

    The expressions mirror the reference
    ``InferenceNetwork._belief_from_postings`` operation for operation
    (same association order), so each belief is bit-identical to the
    scalar computation.
    """
    tf_f = tf.astype(np.float64)
    len_f = doc_lengths.astype(np.float64)
    tf_w = tf_f / (tf_f + 0.5 + 1.5 * len_f / avg_len)
    beliefs = default + (1.0 - default) * tf_w * idf_w
    return ArrayBeliefs(doc_ids, beliefs)


def _union_and_spread(tables: Sequence[Table]) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Union the tables' documents; give every table a dense column.

    Documents absent from a table take that table's default belief —
    the array analogue of ``scores.get(doc, default)``.
    """
    arrays = [as_arrays(scores) for scores, _default in tables]
    populated = [a.doc_ids for a in arrays if a.doc_ids.size]
    if not populated:
        docs = np.empty(0, dtype=np.int64)
    elif len(populated) == 1:
        docs = populated[0]
    else:
        docs = np.unique(np.concatenate(populated))
    columns: List[np.ndarray] = []
    for array, (_scores, default) in zip(arrays, tables):
        column = np.full(docs.size, default, dtype=np.float64)
        if array.doc_ids.size:
            column[np.searchsorted(docs, array.doc_ids)] = array.beliefs
        columns.append(column)
    return docs, columns


def combine_sum(tables: Sequence[Table]) -> Table:
    docs, columns = _union_and_spread(tables)
    acc = np.zeros(docs.size, dtype=np.float64)
    for column in columns:
        acc = acc + column
    scores = ArrayBeliefs(docs, acc / len(tables))
    default = sum(d for _s, d in tables) / len(tables)
    return scores, default


def combine_wsum(tables: Sequence[Table], weights: Sequence[float], total: float) -> Table:
    docs, columns = _union_and_spread(tables)
    acc = np.zeros(docs.size, dtype=np.float64)
    for weight, column in zip(weights, columns):
        acc = acc + weight * column
    scores = ArrayBeliefs(docs, acc / total)
    default = sum(w * d for w, (_s, d) in zip(weights, tables)) / total
    return scores, default


def combine_and(tables: Sequence[Table]) -> Table:
    docs, columns = _union_and_spread(tables)
    acc = np.ones(docs.size, dtype=np.float64)
    for column in columns:
        acc = acc * column
    default = 1.0
    for _scores, d in tables:
        default *= d
    return ArrayBeliefs(docs, acc), default


def combine_or(tables: Sequence[Table]) -> Table:
    docs, columns = _union_and_spread(tables)
    acc = np.ones(docs.size, dtype=np.float64)
    for column in columns:
        acc = acc * (1.0 - column)
    default = 1.0
    for _scores, d in tables:
        default *= 1.0 - d
    return ArrayBeliefs(docs, 1.0 - acc), 1.0 - default


def combine_not(tables: Sequence[Table]) -> Table:
    docs, columns = _union_and_spread(tables)
    return ArrayBeliefs(docs, 1.0 - columns[0]), 1.0 - tables[0][1]


def combine_max(tables: Sequence[Table]) -> Table:
    docs, columns = _union_and_spread(tables)
    acc: Optional[np.ndarray] = None
    for column in columns:
        acc = column if acc is None else np.maximum(acc, column)
    if acc is None:
        acc = np.empty(0, dtype=np.float64)
    default = max(d for _s, d in tables)
    return ArrayBeliefs(docs, acc), default
