"""Vectorized postings-record codec.

Decodes and encodes the INQUERY record format of
:mod:`repro.inquery.postings` (``df ctf (gap(doc) tf gap(pos)*tf)*df``)
with bulk v-byte kernels instead of per-integer Python loops.

The contract is strict byte/structure equality with the reference
codec: :func:`encode_record_fast` produces the exact bytes
``encode_record`` would, and :func:`decode_record_fast` the exact
posting lists ``decode_record`` would — including raising the same
:class:`~repro.errors.IndexError_` on malformed input.  Anything the
vector kernels cannot express (values beyond 63 bits, malformed
structure) falls back to the scalar reference implementation, which
either handles it or raises the canonical error.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import IndexError_
from .vbyte import decode_stream, encode_stream

#: One posting: (document id, sorted within-document positions).
Posting = Tuple[int, Tuple[int, ...]]


@dataclass
class RecordArrays:
    """A decoded record in columnar form.

    ``positions`` holds every within-document position, flattened;
    document ``i`` owns the slice ``positions[pos_starts[i]:
    pos_starts[i] + tf[i]]``.
    """

    doc_ids: np.ndarray    #: int64, strictly increasing
    tf: np.ndarray         #: int64, per-document term frequency
    positions: np.ndarray  #: int64, flattened position lists
    pos_starts: np.ndarray  #: int64, exclusive prefix sum of ``tf``

    @property
    def df(self) -> int:
        return int(self.doc_ids.size)

    @property
    def ctf(self) -> int:
        return int(self.positions.size)

    def to_postings(self) -> List[Posting]:
        """The reference representation (list of id/positions tuples)."""
        docs = self.doc_ids.tolist()
        tfs = self.tf.tolist()
        flat = self.positions.tolist()
        out: List[Posting] = []
        start = 0
        for doc_id, tf in zip(docs, tfs):
            end = start + tf
            out.append((doc_id, tuple(flat[start:end])))
            start = end
        return out


def filter_record_arrays(arrays: "RecordArrays", dead: set) -> "RecordArrays":
    """Drop tombstoned documents from a decoded record.

    Returns a fresh :class:`RecordArrays` holding only the live
    documents (the input, which may be cache-shared, is untouched).
    Equivalent to filtering the reference posting list by doc id.
    """
    if not dead or arrays.doc_ids.size == 0:
        return arrays
    keep = ~np.isin(arrays.doc_ids, np.fromiter(dead, dtype=np.int64))
    if keep.all():
        return arrays
    doc_ids = arrays.doc_ids[keep]
    tf = arrays.tf[keep]
    positions = arrays.positions[np.repeat(keep, arrays.tf)]
    if tf.size:
        pos_starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(tf[:-1], dtype=np.int64))
        )
    else:
        pos_starts = np.empty(0, dtype=np.int64)
    return RecordArrays(doc_ids, tf, positions, pos_starts)


class DecodeCache:
    """Bounded LRU memo of decoded records.

    Keys are the record *bytes*, so a record that is rewritten (e.g.
    by an incremental document add) can never serve stale arrays.
    Capacity is counted in cached integers (positions plus per-document
    columns), bounding memory rather than entry count.  Cached
    :class:`RecordArrays` are shared — callers must treat them as
    read-only, which every fast-path kernel does.
    """

    def __init__(self, max_ints: int = 4_000_000):
        self._max = max_ints
        self._held = 0
        self._entries: "OrderedDict[bytes, RecordArrays]" = OrderedDict()

    @staticmethod
    def _weight(arrays: "RecordArrays") -> int:
        return arrays.ctf + 3 * arrays.df

    def get(self, record: bytes):
        arrays = self._entries.get(record)
        if arrays is not None:
            self._entries.move_to_end(record)
        return arrays

    def put(self, record: bytes, arrays: "RecordArrays") -> None:
        if record in self._entries:
            return
        self._entries[record] = arrays
        self._held += self._weight(arrays)
        while self._held > self._max and len(self._entries) > 1:
            _key, evicted = self._entries.popitem(last=False)
            self._held -= self._weight(evicted)


def _scalar():
    # Imported lazily: postings dispatches *into* this module, so a
    # top-level import would be circular during package init.
    from ..inquery import postings as ref

    return ref


def decode_record_arrays(record: bytes) -> RecordArrays:
    """Decode a record into columnar arrays (single bulk byte scan)."""
    try:
        values, _clean = decode_stream(record)
    except IndexError_:
        return _arrays_via_scalar(record)
    if values.size < 2:
        return _arrays_via_scalar(record)  # raises the canonical error
    df = int(values[0])
    ctf = int(values[1])
    needed = 2 + 2 * df + ctf
    if values.size < needed:
        return _arrays_via_scalar(record)
    if df == 0:
        empty = np.empty(0, dtype=np.int64)
        return RecordArrays(empty, empty.copy(), empty.copy(), empty.copy())
    body = values[2:needed].astype(np.int64)
    # Term frequencies sit at data-dependent offsets; a short scan over
    # documents (not over bytes) recovers them.
    flat = body.tolist()
    tf = np.empty(df, dtype=np.int64)
    offset = 1
    try:
        for i in range(df):
            count = flat[offset]
            tf[i] = count
            offset += count + 2
    except IndexError:
        return _arrays_via_scalar(record)
    if offset != len(flat) + 1:
        # Header ctf disagrees with the per-document counts; the scalar
        # decoder trusts the counts, so defer to it.
        return _arrays_via_scalar(record)
    pos_starts = np.empty(df, dtype=np.int64)
    pos_starts[0] = 0
    np.cumsum(tf[:-1], out=pos_starts[1:])
    doc_slots = 2 * np.arange(df, dtype=np.int64) + pos_starts
    doc_ids = np.cumsum(body[doc_slots])
    if ctf:
        gap_slots = (np.repeat(doc_slots + 2 - pos_starts, tf)
                     + np.arange(ctf, dtype=np.int64))
        gaps = body[gap_slots]
        running = np.cumsum(gaps)
        bases = np.empty(df, dtype=np.int64)
        bases[0] = 0
        bases[1:] = running[pos_starts[1:] - 1]
        positions = running - np.repeat(bases, tf)
    else:
        positions = np.empty(0, dtype=np.int64)
    if (doc_ids < 0).any() or (positions.size and (positions < 0).any()):
        return _arrays_via_scalar(record)  # int64 overflow — huge values
    return RecordArrays(doc_ids, tf, positions, pos_starts)


def _arrays_via_scalar(record: bytes) -> RecordArrays:
    """Reference decode, repackaged as arrays (also the error path)."""
    return arrays_from_postings(_scalar()._decode_record_py(record))


def arrays_from_postings(postings: Sequence[Posting]) -> RecordArrays:
    """Columnar form of an already-decoded posting list."""
    df = len(postings)
    doc_ids = np.fromiter((d for d, _p in postings), dtype=np.int64, count=df)
    tf = np.fromiter((len(p) for _d, p in postings), dtype=np.int64, count=df)
    ctf = int(tf.sum()) if df else 0
    positions = np.fromiter(
        (x for _d, ps in postings for x in ps), dtype=np.int64, count=ctf
    )
    pos_starts = np.empty(df, dtype=np.int64)
    if df:
        pos_starts[0] = 0
        np.cumsum(tf[:-1], out=pos_starts[1:])
    return RecordArrays(doc_ids, tf, positions, pos_starts)


def decode_record_fast(record: bytes) -> List[Posting]:
    """Bulk decode returning the reference posting-list structure."""
    return decode_record_arrays(record).to_postings()


def encode_record_fast(postings: Sequence[Posting]) -> bytes:
    """Bulk encode; byte-identical to the reference encoder.

    Falls back to the scalar encoder on any irregularity (unsorted or
    negative input, oversized values) so error behavior — message and
    all — matches the reference exactly.
    """
    df = len(postings)
    if df == 0:
        return _scalar()._encode_record_py(postings)
    try:
        arrays = arrays_from_postings(postings)
    except (TypeError, ValueError, OverflowError):
        return _scalar()._encode_record_py(postings)
    return encode_from_arrays(arrays, _fallback=postings)


def encode_from_arrays(arrays: RecordArrays, _fallback=None) -> bytes:
    """Encode columnar postings; validates like the reference encoder."""
    doc_ids, tf, positions = arrays.doc_ids, arrays.tf, arrays.positions
    df = arrays.df
    ctf = arrays.ctf

    def bail():
        postings = _fallback if _fallback is not None else arrays.to_postings()
        return _scalar()._encode_record_py(postings)

    if df == 0:
        return bail()
    if (tf < 1).any() or doc_ids[0] < 0:
        return bail()
    dgaps = np.empty(df, dtype=np.int64)
    dgaps[0] = doc_ids[0]
    dgaps[1:] = doc_ids[1:] - doc_ids[:-1]
    if df > 1 and (dgaps[1:] <= 0).any():
        return bail()
    pos_starts = arrays.pos_starts
    pgaps = positions.copy()
    pgaps[1:] -= positions[:-1]
    pgaps[pos_starts] = positions[pos_starts]
    first_of_doc = np.zeros(ctf, dtype=bool)
    first_of_doc[pos_starts] = True
    if (pgaps[~first_of_doc] <= 0).any() or (pgaps[first_of_doc] < 0).any():
        return bail()

    total = 2 + 2 * df + ctf
    values = np.empty(total, dtype=np.int64)
    values[0] = df
    values[1] = ctf
    body = values[2:]
    doc_slots = 2 * np.arange(df, dtype=np.int64) + pos_starts
    body[doc_slots] = dgaps
    body[doc_slots + 1] = tf
    if ctf:
        gap_slots = (np.repeat(doc_slots + 2 - pos_starts, tf)
                     + np.arange(ctf, dtype=np.int64))
        body[gap_slots] = pgaps
    try:
        buffer, _lengths = encode_stream(values)
    except IndexError_:
        return bail()  # values beyond the vector encoder's 63-bit range
    return buffer
