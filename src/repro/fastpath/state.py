"""Global fast-path toggle.

The fast path is a *real-time* optimization only: every kernel in
:mod:`repro.fastpath` is required to produce byte-identical records,
bit-identical beliefs, and identical simulated-clock charges to the
pure-Python reference implementations.  Because of that invariant the
toggle can default to on; the reference path is retained for
verification and for environments without numpy.

The toggle is deliberately tiny and dependency-free so that low-level
modules (``repro.inquery.postings``) can consult it without import
cycles.
"""

import os
from contextlib import contextmanager

try:  # pragma: no cover - exercised implicitly by every import
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - numpy is a hard dependency in CI
    HAVE_NUMPY = False


def _initial() -> bool:
    env = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if env in ("0", "off", "false", "no"):
        return False
    return HAVE_NUMPY


#: Whether fast-path kernels are used where available.  Mutate through
#: :func:`set_enabled` / :func:`use_fastpath`.
ENABLED = _initial()


def enabled() -> bool:
    """Is the fast path currently active?"""
    return ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch the fast path on or off; returns the previous setting.

    Enabling without numpy installed silently stays off — callers never
    need to guard on :data:`HAVE_NUMPY` themselves.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = bool(flag) and HAVE_NUMPY
    return previous


@contextmanager
def use_fastpath(flag: bool):
    """Temporarily force the fast path on or off (tests, benchmarks)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
