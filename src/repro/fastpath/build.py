"""Bulk record encoding: the whole collection in one kernel pass.

``prepare_collection`` historically looped over every term, built
Python posting tuples, and encoded each record one integer at a time —
the "dominated by a sorting problem" indexing cost, paid in
interpreter overhead.  :func:`encode_collection` takes the sorted
(term-rank, doc-id, position) triples and produces every encoded
record with a handful of vectorized passes: gap coding, value
interleaving, and a single v-byte encode of the concatenated integer
stream, sliced back into per-term records by byte offset.

Output records are byte-identical to per-term ``encode_record`` calls
(the concatenation of reference records *is* the encoded global value
stream, cut at record boundaries).
"""

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import IndexError_
from .vbyte import encode_stream


@dataclass
class EncodedCollection:
    """Every term's encoded record, plus the per-term statistics."""

    #: (term id, record bytes), term ids 1..T assigned in rank order.
    records: List[Tuple[int, bytes]]
    ranks: np.ndarray          #: int64, distinct term ranks, ascending
    df: np.ndarray             #: int64, documents per term
    ctf: np.ndarray            #: int64, occurrences per term
    record_sizes: np.ndarray   #: int64, encoded bytes per record
    max_tf: np.ndarray         #: int64, largest within-doc tf per term

    @property
    def uncompressed_bytes(self) -> int:
        """Plain 32-bit size: 4 * (df + ctf + 2 ints) summed over terms."""
        return int(4 * (2 * len(self.records) + 2 * self.df.sum() + self.ctf.sum()))

    @property
    def compressed_bytes(self) -> int:
        return int(self.record_sizes.sum())


def encode_collection(
    ranks: np.ndarray, doc_ids: np.ndarray, positions: np.ndarray
) -> EncodedCollection:
    """Encode one record per distinct rank from sorted posting triples.

    ``ranks``/``doc_ids``/``positions`` must already be sorted
    lexicographically by (rank, doc id, position) — the order the
    indexing sort produces.
    """
    total = int(ranks.size)
    if total == 0:
        raise IndexError_("cannot encode an empty collection")
    ranks = np.ascontiguousarray(ranks, dtype=np.int64)
    doc_ids = np.ascontiguousarray(doc_ids, dtype=np.int64)
    positions = np.ascontiguousarray(positions, dtype=np.int64)

    # ranks are pre-sorted, so term boundaries are adjacent differences
    # (np.unique would pay for a redundant sort).
    new_term = np.empty(total, dtype=bool)
    new_term[0] = True
    new_term[1:] = ranks[1:] != ranks[:-1]
    term_starts = np.nonzero(new_term)[0]
    distinct = ranks[term_starts]
    term_count = int(distinct.size)
    term_ends = np.empty(term_count, dtype=np.int64)
    term_ends[:-1] = term_starts[1:]
    term_ends[-1] = total
    ctf = term_ends - term_starts

    # Posting entries: one per (term, document) pair.
    new_entry = np.empty(total, dtype=bool)
    new_entry[0] = True
    new_entry[1:] = (ranks[1:] != ranks[:-1]) | (doc_ids[1:] != doc_ids[:-1])
    entry_starts = np.nonzero(new_entry)[0]
    entries = int(entry_starts.size)
    tf = np.empty(entries, dtype=np.int64)
    tf[:-1] = entry_starts[1:] - entry_starts[:-1]
    tf[-1] = total - entry_starts[-1]

    # Each term's first entry, and entries per term (df).
    first_entry = np.searchsorted(entry_starts, term_starts)
    df = np.empty(term_count, dtype=np.int64)
    df[:-1] = first_entry[1:] - first_entry[:-1]
    df[-1] = entries - first_entry[-1]

    # Delta coding: document gaps within a term (first absolute),
    # position gaps within a document (first absolute).
    entry_docs = doc_ids[entry_starts]
    dgaps = np.empty(entries, dtype=np.int64)
    dgaps[0] = entry_docs[0]
    dgaps[1:] = entry_docs[1:] - entry_docs[:-1]
    dgaps[first_entry] = entry_docs[first_entry]
    pgaps = np.empty(total, dtype=np.int64)
    pgaps[0] = positions[0]
    pgaps[1:] = positions[1:] - positions[:-1]
    pgaps[entry_starts] = positions[entry_starts]

    # Interleave df ctf (dgap tf pgap*tf)*df into one value stream.
    values_per_term = 2 + 2 * df + ctf
    term_val_starts = np.empty(term_count, dtype=np.int64)
    term_val_starts[0] = 0
    np.cumsum(values_per_term[:-1], out=term_val_starts[1:])
    stream_len = int(term_val_starts[-1] + values_per_term[-1])
    values = np.empty(stream_len, dtype=np.int64)
    values[term_val_starts] = df
    values[term_val_starts + 1] = ctf

    tf_excl = np.empty(entries, dtype=np.int64)
    tf_excl[0] = 0
    np.cumsum(tf[:-1], out=tf_excl[1:])
    rank_in_term = np.arange(entries, dtype=np.int64) - np.repeat(first_entry, df)
    tf_before = tf_excl - np.repeat(tf_excl[first_entry], df)
    entry_slots = (
        np.repeat(term_val_starts, df) + 2 + 2 * rank_in_term + tf_before
    )
    values[entry_slots] = dgaps
    values[entry_slots + 1] = tf
    gap_slots = (
        np.repeat(entry_slots + 2 - tf_excl, tf) + np.arange(total, dtype=np.int64)
    )
    values[gap_slots] = pgaps

    buffer, lengths = encode_stream(values)
    byte_ends = np.cumsum(lengths)
    term_byte_starts = byte_ends[term_val_starts] - lengths[term_val_starts]
    term_byte_ends = np.empty(term_count, dtype=np.int64)
    term_byte_ends[:-1] = term_byte_starts[1:]
    term_byte_ends[-1] = int(byte_ends[-1])

    starts_list = term_byte_starts.tolist()
    ends_list = term_byte_ends.tolist()
    records = [
        (i + 1, buffer[starts_list[i]:ends_list[i]]) for i in range(term_count)
    ]
    # Pruning bound metadata: the largest per-document frequency each
    # term reaches, segment-maxed over its entry range in one pass.
    max_tf = np.maximum.reduceat(tf, first_entry)
    return EncodedCollection(
        records=records,
        ranks=distinct,
        df=df,
        ctf=ctf,
        record_sizes=term_byte_ends - term_byte_starts,
        max_tf=max_tf,
    )
