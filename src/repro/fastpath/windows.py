"""Vectorized position-window matching for proximity operators.

The reference implementations — ``_match_count`` in
:mod:`repro.inquery.network` (the ``#phrase``/``#odN``/``#uwN``
position merge) and ``best_window`` in :mod:`repro.inquery.matches`
(the snippet window scan) — walk Python position lists element by
element.  These kernels compute the identical results with bulk numpy
operations: same match counts (duplicate positions and window size 1
included), same best-window tuple (first-maximum tie-breaking
included).
"""

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def _as_array(positions: Sequence[int]) -> np.ndarray:
    return np.asarray(positions, dtype=np.int64)


def match_count(
    position_lists: Sequence[Sequence[int]], ordered: bool, window: int
) -> int:
    """Co-occurrence matches of several terms within one document.

    Bit-for-bit the reference
    :func:`repro.inquery.network._match_count` — including its
    ``set()`` deduplication on the phrase branch and duplicate counting
    on the ordered/unordered branches.
    """
    lists = [_as_array(positions) for positions in position_lists]
    if any(a.size == 0 for a in lists):
        return 0
    if ordered and window <= 1:
        # Exact phrase: strictly adjacent positions, in order.  The
        # reference iterates sorted(set(first)) — deduplicate.
        first = np.unique(lists[0])
        ok = np.ones(first.size, dtype=bool)
        for offset, positions in enumerate(lists[1:]):
            ok &= np.isin(first + (offset + 1), positions)
        return int(np.count_nonzero(ok))
    if ordered:
        # Ordered window (#odN): increasing positions, each gap <=
        # window.  Every occurrence of the first term (duplicates
        # included) starts one candidate chain.
        current = np.sort(lists[0])
        ok = np.ones(current.size, dtype=bool)
        for positions in lists[1:]:
            rest = np.sort(positions)
            # First element strictly after `current`...
            nxt = np.searchsorted(rest, current, side="right")
            has = nxt < rest.size
            candidate = rest[np.minimum(nxt, rest.size - 1)]
            # ...must fall within the window.  Failed lanes keep a
            # stale `current`; their ok bit is already False.
            ok &= has & (candidate <= current + window)
            current = candidate
        return int(np.count_nonzero(ok))
    # Unordered (#uwN): an occurrence of the first term counts if every
    # other term has some position within `window` of it.
    anchors = lists[0]
    ok = np.ones(anchors.size, dtype=bool)
    for positions in lists[1:]:
        rest = np.sort(positions)
        right = np.searchsorted(rest, anchors, side="left")
        near = np.zeros(anchors.size, dtype=bool)
        has_right = right < rest.size
        near[has_right] = (
            rest[right[has_right]] - anchors[has_right] <= window
        )
        has_left = right > 0
        near[has_left] |= (
            anchors[has_left] - rest[right[has_left] - 1] <= window
        )
        ok &= near
    return int(np.count_nonzero(ok))


def match_counts_for_docs(
    term_arrays: Sequence, common: np.ndarray, ordered: bool, window: int
) -> np.ndarray:
    """Per-document match counts over the terms' common documents.

    ``term_arrays`` are :class:`~repro.fastpath.codec.RecordArrays`;
    ``common`` the sorted intersection of their document ids.
    """
    starts = []
    ends = []
    for arrays in term_arrays:
        idx = np.searchsorted(arrays.doc_ids, common)
        start = arrays.pos_starts[idx]
        starts.append(start)
        ends.append(start + arrays.tf[idx])
    counts = np.empty(common.size, dtype=np.int64)
    for i in range(common.size):
        lists = [
            arrays.positions[starts[t][i]:ends[t][i]]
            for t, arrays in enumerate(term_arrays)
        ]
        counts[i] = match_count(lists, ordered=ordered, window=window)
    return counts


def record_positions_for_doc(record: bytes, doc_id: int) -> Optional[Tuple[int, ...]]:
    """One document's positions from an encoded record, or ``None``.

    The array analogue of ``dict(decode_record(record)).get(doc_id)``
    — it decodes columnar and slices one document instead of
    materializing every posting tuple.
    """
    from .codec import decode_record_arrays

    arrays = decode_record_arrays(record)
    idx = int(np.searchsorted(arrays.doc_ids, doc_id))
    if idx >= arrays.df or int(arrays.doc_ids[idx]) != doc_id:
        return None
    start = int(arrays.pos_starts[idx])
    return tuple(arrays.positions[start:start + int(arrays.tf[idx])].tolist())


def best_window(
    by_term: Dict[str, Sequence[int]], window: int
) -> Tuple[int, int, int]:
    """The ``window``-token span covering the most distinct terms.

    Identical to the reference sliding scan in
    :mod:`repro.inquery.matches` — events ordered by ``(position,
    term)``, the *first* window reaching the maximum distinct count
    wins, and no matches yield ``(0, window, 0)``.
    """
    terms = sorted(by_term)
    sizes = [len(by_term[term]) for term in terms]
    total = sum(sizes)
    if total == 0:
        return 0, window, 0
    positions = np.empty(total, dtype=np.int64)
    term_ids = np.empty(total, dtype=np.int64)
    offset = 0
    for term_id, term in enumerate(terms):
        chunk = _as_array(by_term[term])
        positions[offset:offset + chunk.size] = chunk
        term_ids[offset:offset + chunk.size] = term_id
        offset += chunk.size
    # Event order (position, term): term ids follow the terms' sort
    # order, so this lexsort reproduces the reference tuple sort.
    order = np.lexsort((term_ids, positions))
    positions = positions[order]
    term_ids = term_ids[order]
    n = total

    # Left edge of the window ending at each event.
    left = np.searchsorted(positions, positions - window + 1, side="left")
    # prev[i]: index of the previous event with the same term (-1 if none).
    prev = np.full(n, -1, dtype=np.int64)
    for term_id in range(len(terms)):
        idx = np.nonzero(term_ids == term_id)[0]
        prev[idx[1:]] = idx[:-1]
    # Event i is a repeat inside the window ending at r exactly when
    # l_r <= prev[i] and i <= r; since left is non-decreasing that is
    # the index range [i, first r with l_r > prev[i]).
    repeat_until = np.searchsorted(left, prev, side="right")
    has_prev = prev >= 0
    event_idx = np.arange(n)
    active = has_prev & (repeat_until > event_idx)
    delta = np.zeros(n + 1, dtype=np.int64)
    np.add.at(delta, event_idx[active], 1)
    np.add.at(delta, repeat_until[active], -1)
    repeats = np.cumsum(delta[:n])
    distinct = event_idx - left + 1 - repeats

    best = int(distinct.max())
    if best <= 1:
        start = int(positions[0])
        return start, start + window, 1
    r = int(np.argmax(distinct))  # first window reaching the maximum
    start = int(positions[left[r]])
    return start, start + window, best
