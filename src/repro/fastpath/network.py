"""Fast-path inference network: vectorized belief evaluation.

:class:`FastInferenceNetwork` subclasses the reference
:class:`~repro.inquery.network.InferenceNetwork` and swaps the
per-document dict arithmetic for the array kernels in
:mod:`repro.fastpath.beliefs`.  Structure, traversal order, storage
accesses, and simulated-clock charges are identical to the reference
network; only the real CPU time changes.

Proximity operators (``#phrase``/``#odN``/``#uwN``) run the vectorized
window matching in :mod:`repro.fastpath.windows`; synonym groups keep
the reference implementation (their position union is not a hot spot).
Reference dict tables mix with array tables transparently inside the
combination kernels.
"""

from typing import List, Optional

import numpy as np

from ..inquery.network import (
    DEFAULT_BELIEF,
    InferenceNetwork,
    TermProvider,
    inquery_idf,
)
from ..inquery.query import OpNode, QueryNode
from ..errors import QueryError
from .beliefs import (
    Table,
    combine_and,
    combine_max,
    combine_not,
    combine_or,
    combine_sum,
    combine_wsum,
    term_beliefs,
)
from .codec import RecordArrays


class ArrayTermProvider(TermProvider):
    """Extended provider contract for the fast path.

    ``postings_arrays`` must perform the same storage access and charge
    the same simulated CPU as ``postings`` — it differs only in the
    in-memory representation it returns.
    """

    def postings_arrays(self, term: str) -> Optional[RecordArrays]:
        raise NotImplementedError

    def doc_length_array(self, doc_ids: np.ndarray) -> np.ndarray:
        """Document lengths for a vector of ids (int64 in, int64 out)."""
        return np.fromiter(
            (self.doc_length(int(d)) for d in doc_ids),
            dtype=np.int64,
            count=doc_ids.size,
        )


class FastInferenceNetwork(InferenceNetwork):
    """Array-kernel evaluation with reference-identical results."""

    # -- leaves ---------------------------------------------------------------

    def _eval_term(self, term: str) -> Table:
        provider = self._provider
        if not hasattr(provider, "postings_arrays"):
            return super()._eval_term(term)
        arrays = provider.postings_arrays(term)
        if arrays is None or arrays.df == 0:
            return {}, DEFAULT_BELIEF
        return self._beliefs_from_arrays(arrays)

    def _beliefs_from_arrays(self, arrays: RecordArrays) -> Table:
        provider = self._provider
        n_docs = max(provider.doc_count, 1)
        avg_len = max(provider.average_doc_length, 1.0)
        idf_w = inquery_idf(n_docs, arrays.df)
        lengths_fn = getattr(provider, "doc_length_array", None)
        if lengths_fn is not None:
            lengths = lengths_fn(arrays.doc_ids)
        else:
            lengths = np.fromiter(
                (provider.doc_length(int(d)) for d in arrays.doc_ids),
                dtype=np.int64,
                count=arrays.df,
            )
        scores = term_beliefs(
            arrays.doc_ids, arrays.tf, lengths, idf_w, avg_len, DEFAULT_BELIEF
        )
        provider.charge_combine(len(scores))
        return scores, DEFAULT_BELIEF

    # -- proximity operators ----------------------------------------------------

    def _proximity(self, node: OpNode, ordered: bool, window: int) -> Table:
        """Vectorized window matching; reference-identical virtual term.

        Storage accesses and simulated charges replicate the reference
        order exactly: children fetched left to right with an early
        return on the first missing term, then one combine charge for
        the merged document frequencies, then the virtual term's
        belief charge.
        """
        provider = self._provider
        if not hasattr(provider, "postings_arrays"):
            return super()._proximity(node, ordered, window)
        term_arrays = []
        for child in node.children:
            arrays = provider.postings_arrays(child.term)
            if arrays is None or arrays.df == 0:
                return {}, DEFAULT_BELIEF  # a missing word kills the phrase
            term_arrays.append(arrays)
        from .codec import RecordArrays
        from .windows import match_counts_for_docs

        common = term_arrays[0].doc_ids
        for arrays in term_arrays[1:]:
            common = common[np.isin(common, arrays.doc_ids, assume_unique=True)]
        counts = match_counts_for_docs(term_arrays, common, ordered, window)
        matched = counts > 0
        provider.charge_combine(sum(arrays.df for arrays in term_arrays))
        if not matched.any():
            return {}, DEFAULT_BELIEF
        empty = np.empty(0, dtype=np.int64)
        virtual = RecordArrays(common[matched], counts[matched], empty, empty)
        return self._beliefs_from_arrays(virtual)

    # -- combination operators -------------------------------------------------

    def _children_tables(self, node: OpNode) -> List[Table]:
        return [self.evaluate(child) for child in node.children]

    def _charge_union(self, tables: List[Table], scores) -> None:
        self._provider.charge_combine(len(scores) * len(tables))

    def _eval_sum(self, node: OpNode) -> Table:
        tables = self._children_tables(node)
        scores, default = combine_sum(tables)
        self._charge_union(tables, scores)
        return scores, default

    def _eval_wsum(self, node: OpNode) -> Table:
        tables = self._children_tables(node)
        weights = node.weights
        total = sum(weights)
        if total <= 0:
            raise QueryError("#wsum weights must sum to a positive value")
        scores, default = combine_wsum(tables, weights, total)
        self._charge_union(tables, scores)
        return scores, default

    def _eval_and(self, node: OpNode) -> Table:
        tables = self._children_tables(node)
        scores, default = combine_and(tables)
        self._charge_union(tables, scores)
        return scores, default

    def _eval_or(self, node: OpNode) -> Table:
        tables = self._children_tables(node)
        scores, default = combine_or(tables)
        self._charge_union(tables, scores)
        return scores, default

    def _eval_not(self, node: OpNode) -> Table:
        tables = self._children_tables(node)
        scores, default = combine_not(tables)
        self._charge_union(tables, scores)
        return scores, default

    def _eval_max(self, node: OpNode) -> Table:
        tables = self._children_tables(node)
        scores, default = combine_max(tables)
        self._charge_union(tables, scores)
        return scores, default
