"""Disk-based B+-tree keyed file — the baseline the paper replaced.

This is a faithful stand-in for INQUERY's custom B-tree package, including
the two properties the paper blames for its extra disk traffic:

* **Limited, unsophisticated node caching** — only the root node is kept
  in memory.  Every other node touched by a lookup costs a file access,
  so a lookup in a tree of height *h* performs ``h - 1`` node accesses
  plus one record access (unless the record was small enough to inline in
  the leaf).  The paper: "every record lookup requires more than one disk
  access.  This problem gets worse as the file grows and the height of
  the index tree increases."
* **Layout insensitive to the transfer block** — node pages are 4 KB
  while the file system transfers 8 KB blocks, and records are appended
  wherever the heap ends.

Records are record-at-a-time: inserting a key appends its record to the
heap and the old record's space leaks, which is exactly the in-place
space-management problem for inverted-list update that Section 2 of the
paper describes.
"""

import struct
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import BTreeError, DuplicateKeyError, KeyNotFoundError
from ..simdisk import SimFile
from .node import (
    INLINE_MAX,
    NO_LEAF,
    InteriorNode,
    LeafNode,
    LeafValue,
    find_key,
    insertion_point,
    leaf_entry_size,
    parse_node,
)
from .page import NODE_PAGE_SIZE, PageAllocator

_META = struct.Struct("<4sQIQ")  # magic, root offset, height, entry count
_MAGIC = b"BTKF"


class BTreeKeyedFile:
    """A keyed file mapping 32-bit term ids to variable-size records.

    Parameters
    ----------
    file:
        Backing simulated file (created empty for a new tree, or holding a
        previously built tree for :meth:`open`).
    page_size:
        Node page size in bytes; deliberately defaults to half the file
        system's transfer block.
    interior_order:
        Maximum number of keys in an interior node.
    inline_max:
        Records at most this size are stored inside the leaf entry.
    """

    def __init__(
        self,
        file: SimFile,
        page_size: int = NODE_PAGE_SIZE,
        interior_order: int = 128,
        inline_max: int = INLINE_MAX,
    ):
        if interior_order < 3:
            raise BTreeError("interior order must be at least 3")
        if inline_max < 0 or inline_max > 0xFFFF:
            raise BTreeError("inline_max out of range")
        self._pages = PageAllocator(file, page_size)
        self._order = interior_order
        self._inline_max = inline_max
        self._root: Union[LeafNode, InteriorNode, None] = None
        self._root_offset = 0
        self._height = 0
        self._count = 0
        #: Number of record lookups performed (the denominator of the
        #: paper's ``A`` statistic).
        self.record_lookups = 0
        if file.size == 0:
            self._bootstrap()
        else:
            self._load_meta()

    # ------------------------------------------------------------------
    # Construction / persistence
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Lay out a fresh tree: meta page then an empty root leaf."""
        meta_page = self._pages.allocate_page()
        if meta_page != 0:
            raise BTreeError("meta page must be the first page")
        self._root = LeafNode()
        self._root_offset = self._pages.allocate_page()
        self._height = 1
        self._count = 0
        self._write_node(self._root_offset, self._root)
        self.sync()

    def _load_meta(self) -> None:
        data = self._pages.read_page(0)
        magic, root, height, count = _META.unpack_from(data, 0)
        if magic != _MAGIC:
            raise BTreeError("not a B-tree keyed file")
        self._root_offset = root
        self._height = height
        self._count = count
        # The root is the one node the package caches across lookups.
        self._root = parse_node(self._pages.read_page(root))

    def sync(self) -> None:
        """Write the meta page (root location, height, entry count)."""
        self._pages.write_page(
            0, _META.pack(_MAGIC, self._root_offset, self._height, self._count)
        )

    def drop_user_caches(self) -> None:
        """Forget the cached root node — a fresh process opening the file.

        The root (the only node the package caches) is re-read from the
        file, which is the open-time cost the paper excludes from its
        timings.
        """
        self._load_meta()

    @property
    def height(self) -> int:
        """Levels in the tree; 1 means the root is a leaf."""
        return self._height

    @property
    def file_size(self) -> int:
        """Total bytes in the backing file (Table 1's "B-Tree Size")."""
        return self._pages.file.size

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: int) -> bytes:
        """Fetch the record stored under ``key``.

        Raises
        ------
        KeyNotFoundError
            If no record exists for ``key``.
        """
        self.record_lookups += 1
        leaf = self._descend(key)
        idx = find_key(leaf.keys, key)
        if idx is None:
            raise KeyNotFoundError(key)
        value = leaf.values[idx]
        if isinstance(value, bytes):
            return value
        offset, length = value
        return self._pages.heap_read(offset, length)

    def contains(self, key: int) -> bool:
        """Membership test; costs the node accesses but no record read."""
        leaf = self._descend(key)
        return find_key(leaf.keys, key) is not None

    def _descend(self, key: int) -> LeafNode:
        """Walk from the cached root to the leaf covering ``key``."""
        node = self._root
        while not node.is_leaf:
            child = node.child_for(key)
            node = parse_node(self._pages.read_page(child))
        return node

    def _descend_path(
        self, key: int
    ) -> List[Tuple[int, Union[LeafNode, InteriorNode]]]:
        """Like :meth:`_descend` but keeps the (offset, node) path."""
        path = [(self._root_offset, self._root)]
        node = self._root
        while not node.is_leaf:
            child = node.child_for(key)
            node = parse_node(self._pages.read_page(child))
            path.append((child, node))
        return path

    # ------------------------------------------------------------------
    # Modification
    # ------------------------------------------------------------------

    def insert(self, key: int, record: bytes) -> None:
        """Add a new record.

        Raises
        ------
        DuplicateKeyError
            If ``key`` already has a record; use :meth:`replace` instead.
        """
        path = self._descend_path(key)
        leaf_offset, leaf = path[-1]
        if find_key(leaf.keys, key) is not None:
            raise DuplicateKeyError(key)
        value = self._make_value(record)
        idx = insertion_point(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._count += 1
        if leaf.used_bytes() <= self._pages.page_size:
            self._write_node(leaf_offset, leaf)
        else:
            self._split_leaf(path)
        self.sync()

    def replace(self, key: int, record: bytes) -> None:
        """Overwrite the record under ``key``.

        The old record's heap space is *not* reclaimed — the in-file
        space-management problem the paper describes for inverted-list
        modification.
        """
        path = self._descend_path(key)
        leaf_offset, leaf = path[-1]
        idx = find_key(leaf.keys, key)
        if idx is None:
            raise KeyNotFoundError(key)
        leaf.values[idx] = self._make_value(record)
        if leaf.used_bytes() <= self._pages.page_size:
            self._write_node(leaf_offset, leaf)
        else:
            self._split_leaf(path)
        self.sync()

    def delete(self, key: int) -> None:
        """Remove the record under ``key`` (lazy: no rebalancing).

        Collections are archival in INQUERY, so deletion is rare; the
        entry is dropped from its leaf but pages never merge.
        """
        path = self._descend_path(key)
        leaf_offset, leaf = path[-1]
        idx = find_key(leaf.keys, key)
        if idx is None:
            raise KeyNotFoundError(key)
        del leaf.keys[idx]
        del leaf.values[idx]
        self._count -= 1
        self._write_node(leaf_offset, leaf)
        self.sync()

    def _make_value(self, record: bytes) -> LeafValue:
        if len(record) <= self._inline_max:
            return bytes(record)
        offset = self._pages.heap_append(record)
        return (offset, len(record))

    def _split_leaf(self, path: List[Tuple[int, Union[LeafNode, InteriorNode]]]) -> None:
        """Split an overfull leaf and propagate upward as needed."""
        leaf_offset, leaf = path[-1]
        half = self._split_point(leaf)
        right = LeafNode(
            keys=leaf.keys[half:], values=leaf.values[half:], next_leaf=leaf.next_leaf
        )
        right_offset = self._pages.allocate_page()
        leaf.keys = leaf.keys[:half]
        leaf.values = leaf.values[:half]
        leaf.next_leaf = right_offset
        self._write_node(right_offset, right)
        self._write_node(leaf_offset, leaf)
        self._insert_separator(path[:-1], right.keys[0], right_offset)

    def _split_point(self, leaf: LeafNode) -> int:
        """Entry index that splits a leaf's bytes roughly in half."""
        target = leaf.used_bytes() // 2
        used = 0
        for i, value in enumerate(leaf.values):
            used += leaf_entry_size(value)
            if used >= target and i + 1 < len(leaf.values):
                return i + 1
        return max(1, len(leaf.values) - 1)

    def _insert_separator(
        self,
        path: List[Tuple[int, Union[LeafNode, InteriorNode]]],
        key: int,
        child_offset: int,
    ) -> None:
        """Insert (key, child) into the parent, splitting upward if full."""
        if not path:
            # The root itself split: grow the tree by one level.
            old_root_offset = self._root_offset
            new_root = InteriorNode(keys=[key], children=[old_root_offset, child_offset])
            self._root = new_root
            self._root_offset = self._pages.allocate_page()
            self._height += 1
            self._write_node(self._root_offset, new_root)
            return
        parent_offset, parent = path[-1]
        idx = insertion_point(parent.keys, key)
        parent.keys.insert(idx, key)
        parent.children.insert(idx + 1, child_offset)
        fits = (
            len(parent.keys) <= self._order
            and parent.used_bytes() <= self._pages.page_size
        )
        if fits:
            self._write_node(parent_offset, parent)
            return
        half = len(parent.keys) // 2
        separator = parent.keys[half]
        right = InteriorNode(
            keys=parent.keys[half + 1:], children=parent.children[half + 1:]
        )
        parent.keys = parent.keys[:half]
        parent.children = parent.children[:half + 1]
        right_offset = self._pages.allocate_page()
        self._write_node(right_offset, right)
        self._write_node(parent_offset, parent)
        self._insert_separator(path[:-1], separator, right_offset)

    def _write_node(self, offset: int, node: Union[LeafNode, InteriorNode]) -> None:
        self._pages.write_page(offset, node.to_bytes())
        if offset == self._root_offset:
            self._root = node

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------

    def bulk_load(self, items: Iterable[Tuple[int, bytes]]) -> None:
        """Build the tree bottom-up from key-sorted ``(key, record)`` pairs.

        This is how the inverted file is created: the indexer's external
        sort emits records in term-id order.  Layout follows the custom
        package's two-region scheme: all records are appended to the
        heap first, then the index pages (leaves, then interior levels)
        are written as a contiguous region after them.  Index pages
        therefore never share transfer blocks with the records they
        point at — a node read prefetches only other nodes.  Only valid
        on an empty tree.
        """
        if self._count:
            raise BTreeError("bulk_load requires an empty tree")
        capacity = self._pages.page_size
        leaves: List[LeafNode] = []
        leaf = LeafNode()
        leaf_bytes = leaf.used_bytes()
        last_key: Optional[int] = None

        # Phase 1: records to the heap, leaf contents in memory.
        for key, record in items:
            if last_key is not None and key <= last_key:
                raise BTreeError(
                    f"bulk_load input not strictly sorted: {key} after {last_key}"
                )
            last_key = key
            value = self._make_value(record)
            entry = leaf_entry_size(value)
            if leaf.keys and leaf_bytes + entry > capacity:
                leaves.append(leaf)
                leaf = LeafNode()
                leaf_bytes = leaf.used_bytes()
            leaf.keys.append(key)
            leaf.values.append(value)
            leaf_bytes += entry
            self._count += 1
        if leaf.keys or not leaves:
            leaves.append(leaf)

        # Phase 2: the index region.  Page allocation is sequential, so
        # each leaf's successor offset is known before it is written and
        # the chain needs no patch writes.
        boundaries: List[Tuple[int, int]] = []  # (first key, leaf offset)
        offsets = []
        for node in leaves:
            offsets.append(self._pages.allocate_page())
        for index, node in enumerate(leaves):
            node.next_leaf = offsets[index + 1] if index + 1 < len(offsets) else NO_LEAF
            self._pages.write_page(offsets[index], node.to_bytes())
            first_key = node.keys[0] if node.keys else 0
            boundaries.append((first_key, offsets[index]))

        self._build_interior_levels(boundaries)
        self.sync()

    def _build_interior_levels(self, boundaries: List[Tuple[int, int]]) -> None:
        """Stack interior levels over the leaf boundary list."""
        level = boundaries
        height = 1
        while len(level) > 1:
            next_level: List[Tuple[int, int]] = []
            for start in range(0, len(level), self._order + 1):
                group = level[start:start + self._order + 1]
                node = InteriorNode(
                    keys=[k for k, _ in group[1:]],
                    children=[off for _, off in group],
                )
                offset = self._pages.allocate_page()
                self._pages.write_page(offset, node.to_bytes())
                next_level.append((group[0][0], offset))
            level = next_level
            height += 1
        self._root_offset = level[0][1]
        self._root = parse_node(self._pages.read_page(self._root_offset))
        self._height = height

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, bytes]]:
        """Yield every (key, record) in key order via the leaf chain."""
        node = self._root
        while not node.is_leaf:
            node = parse_node(self._pages.read_page(node.children[0]))
        while True:
            for key, value in zip(node.keys, node.values):
                if isinstance(value, bytes):
                    yield key, value
                else:
                    offset, length = value
                    yield key, self._pages.heap_read(offset, length)
            if node.next_leaf == NO_LEAF:
                return
            node = parse_node(self._pages.read_page(node.next_leaf))

    def keys(self) -> Iterator[int]:
        """Yield every key in order without reading heap records."""
        node = self._root
        while not node.is_leaf:
            node = parse_node(self._pages.read_page(node.children[0]))
        while True:
            yield from node.keys
            if node.next_leaf == NO_LEAF:
                return
            node = parse_node(self._pages.read_page(node.next_leaf))
