"""B-tree node formats and their on-page serialization.

The keyed file maps a 32-bit term id to one inverted list record.  Leaves
hold the actual entries; records no bigger than
:data:`INLINE_MAX` bytes are stored inline in the leaf (saving the second
file access for the tiny lists Zipf guarantees), larger records are
referenced by (heap offset, length) locators.  Interior nodes route keys
to children with the classic B+-tree rule: child ``i`` covers keys
``< keys[i]``, the last child covers the rest.
"""

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import BTreeError

#: Records at most this many bytes are stored inline in the leaf entry.
INLINE_MAX = 16

#: ``next leaf`` value marking the end of the leaf chain.
NO_LEAF = 0xFFFFFFFFFFFFFFFF

_LEAF_HDR = struct.Struct("<cHQ")      # tag, entry count, next-leaf offset
_INT_HDR = struct.Struct("<cH")        # tag, key count
_KEY = struct.Struct("<I")
_CHILD = struct.Struct("<Q")
_INLINE = struct.Struct("<IBH")        # key, tag=0, length
_LOCATOR = struct.Struct("<IBQI")      # key, tag=1, offset, length

#: A leaf value: either the record bytes themselves or a heap locator.
LeafValue = Union[bytes, Tuple[int, int]]


def leaf_entry_size(value: LeafValue) -> int:
    """On-page bytes consumed by one leaf entry holding ``value``."""
    if isinstance(value, bytes):
        return _INLINE.size + len(value)
    return _LOCATOR.size


@dataclass
class LeafNode:
    """A leaf: sorted keys with inline records or heap locators."""

    keys: List[int] = field(default_factory=list)
    values: List[LeafValue] = field(default_factory=list)
    next_leaf: int = NO_LEAF

    is_leaf = True

    def used_bytes(self) -> int:
        """Serialized size of this node."""
        return _LEAF_HDR.size + sum(leaf_entry_size(v) for v in self.values)

    def to_bytes(self) -> bytes:
        parts = [_LEAF_HDR.pack(b"L", len(self.keys), self.next_leaf)]
        for key, value in zip(self.keys, self.values):
            if isinstance(value, bytes):
                parts.append(_INLINE.pack(key, 0, len(value)))
                parts.append(value)
            else:
                offset, length = value
                parts.append(_LOCATOR.pack(key, 1, offset, length))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LeafNode":
        tag, count, next_leaf = _LEAF_HDR.unpack_from(data, 0)
        if tag != b"L":
            raise BTreeError(f"expected leaf page, found tag {tag!r}")
        node = cls(next_leaf=next_leaf)
        pos = _LEAF_HDR.size
        for _ in range(count):
            key, kind, length = _INLINE.unpack_from(data, pos)
            if kind == 0:
                pos += _INLINE.size
                node.keys.append(key)
                node.values.append(bytes(data[pos:pos + length]))
                pos += length
            else:
                key, _, offset, length = _LOCATOR.unpack_from(data, pos)
                pos += _LOCATOR.size
                node.keys.append(key)
                node.values.append((offset, length))
        return node


@dataclass
class InteriorNode:
    """An interior router: ``len(children) == len(keys) + 1``."""

    keys: List[int] = field(default_factory=list)
    children: List[int] = field(default_factory=list)

    is_leaf = False

    def used_bytes(self) -> int:
        return (
            _INT_HDR.size
            + _KEY.size * len(self.keys)
            + _CHILD.size * len(self.children)
        )

    def child_for(self, key: int) -> int:
        """Page offset of the child responsible for ``key``."""
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if key < self.keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return self.children[lo]

    def to_bytes(self) -> bytes:
        parts = [_INT_HDR.pack(b"I", len(self.keys))]
        parts.extend(_KEY.pack(k) for k in self.keys)
        parts.extend(_CHILD.pack(c) for c in self.children)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "InteriorNode":
        tag, count = _INT_HDR.unpack_from(data, 0)
        if tag != b"I":
            raise BTreeError(f"expected interior page, found tag {tag!r}")
        node = cls()
        pos = _INT_HDR.size
        for _ in range(count):
            node.keys.append(_KEY.unpack_from(data, pos)[0])
            pos += _KEY.size
        for _ in range(count + 1):
            node.children.append(_CHILD.unpack_from(data, pos)[0])
            pos += _CHILD.size
        return node


def parse_node(data: bytes) -> Union[LeafNode, InteriorNode]:
    """Deserialize whichever node kind the page holds."""
    if not data:
        raise BTreeError("empty page")
    if data[:1] == b"L":
        return LeafNode.from_bytes(data)
    if data[:1] == b"I":
        return InteriorNode.from_bytes(data)
    raise BTreeError(f"unknown page tag {data[:1]!r}")


def find_key(keys: List[int], key: int) -> Optional[int]:
    """Index of ``key`` in a sorted key list, or ``None``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(keys) and keys[lo] == key:
        return lo
    return None


def insertion_point(keys: List[int], key: int) -> int:
    """Index at which ``key`` keeps the key list sorted."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
