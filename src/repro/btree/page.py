"""Node-page allocation for the B-tree keyed file.

The custom B-tree package the paper replaced stored its index nodes in
pages whose size was *not* matched to the file system's 8 KB transfer
block — one of the two deficiencies (with unsophisticated node caching)
the paper blames for its extra disk traffic.  We reproduce that: node
pages default to 4 KB, so one FS block read drags in a neighbouring node
and node boundaries straddle transfer blocks as the file grows.

Pages and the record heap share one simulated file.  A page is addressed
by its byte offset; :meth:`PageAllocator.allocate` aligns each new page to
the page size, wasting the tail of any unaligned heap data before it —
the kind of layout slack a from-scratch package accumulates.
"""

from ..simdisk import SimFile

#: Default size of one B-tree node page, in bytes.
NODE_PAGE_SIZE = 4096


class PageAllocator:
    """Allocates page-aligned regions and raw heap space in one file."""

    def __init__(self, file: SimFile, page_size: int = NODE_PAGE_SIZE):
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self._file = file
        self.page_size = page_size

    @property
    def file(self) -> SimFile:
        return self._file

    def allocate_page(self) -> int:
        """Reserve one page-aligned region at EOF, returning its offset."""
        end = self._file.size
        aligned = -(-end // self.page_size) * self.page_size
        if aligned > end:
            # Zero-fill the alignment gap so the offset really exists.
            self._file.write(end, b"\x00" * (aligned - end))
        self._file.write(aligned, b"\x00" * self.page_size)
        return aligned

    def write_page(self, offset: int, data: bytes) -> None:
        """Store one serialized node into its page."""
        if len(data) > self.page_size:
            raise ValueError(
                f"node of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if offset % self.page_size != 0:
            raise ValueError(f"offset {offset} is not page-aligned")
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        self._file.write(offset, data)

    def read_page(self, offset: int) -> bytes:
        """Fetch one node page: one file access of ``page_size`` bytes."""
        if offset % self.page_size != 0:
            raise ValueError(f"offset {offset} is not page-aligned")
        return self._file.read(offset, self.page_size)

    def heap_append(self, data: bytes) -> int:
        """Append one record to the heap, returning its data offset.

        The heap allocator writes a 4-byte length header before the
        record and rounds each allocation up to an 8-byte boundary —
        ordinary keyed-file bookkeeping, and the reason the B-tree's
        record region is a little less dense than Mneme's packed
        segments (visible in Table 1's file sizes and Table 5's raw
        block transfers).
        """
        header = len(data).to_bytes(4, "little")
        pad = -(len(data) + 4) % 8
        offset = self._file.append(header + data + b"\x00" * pad)
        return offset + 4

    def heap_read(self, offset: int, length: int) -> bytes:
        """Fetch record bytes: one file access of exactly the record."""
        return self._file.read(offset, length)
