"""The custom B-tree keyed file package — the paper's baseline.

A disk-page B+-tree mapping term ids to variable-size inverted list
records, reproducing the properties the paper attributes to INQUERY's
original storage layer: root-only node caching and a file layout that is
not matched to the 8 KB device transfer block.
"""

from .btree import BTreeKeyedFile
from .node import INLINE_MAX, InteriorNode, LeafNode, parse_node
from .page import NODE_PAGE_SIZE, PageAllocator

__all__ = [
    "BTreeKeyedFile",
    "INLINE_MAX",
    "InteriorNode",
    "LeafNode",
    "NODE_PAGE_SIZE",
    "PageAllocator",
    "parse_node",
]
