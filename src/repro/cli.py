"""Command-line interface: ``python -m repro <command>``.

Everything the library can do from a terminal, one experiment per
invocation (the simulated machine lives in memory, so each run is
self-contained and deterministic):

* ``profiles`` — list the synthetic collection profiles and query sets;
* ``demo``     — build a system and run queries against it;
* ``compare``  — the paper's three-way storage comparison on one set;
* ``tables``   — regenerate the paper's tables (1-6);
* ``figures``  — regenerate the paper's figures (1-3);
* ``report``   — everything above in one text report;
* ``informetrics`` — Zipf/Heaps profile + pool-partition audit;
* ``evaluate`` — recall/precision of a query set against synthetic judgments;
* ``validate`` — integrity-check a freshly built system;
* ``chaos``    — fault-tolerant serving under seeded fault injection;
* ``shards``   — document-partitioned scaling and invariance benchmark;
* ``serve``    — concurrent batch query service traffic benchmark;
* ``saturate`` — overload-control gate: deterministic shedding past capacity;
* ``prune``    — dynamic-pruning invariance and speedup benchmark;
* ``failover`` — replication gate: single-replica kills invisible, live
  re-replication byte-identical, mid-traffic 2→4 shard split;
* ``ingest``   — live-ingest gate: mixed read/write traffic, every epoch
  bit-identical to a stop-the-world rebuild, compaction invisible;
* ``termcache`` — decoded-term cache gate: cache-on serving bit-identical
  to cache-off, budget respected, zero stale rankings.

``demo`` additionally accepts ``--shards N`` (with ``--partitioner``) to
serve the queries from an N-machine document-partitioned build instead
of a single disk; rankings are identical by construction, so the knob
exists to demonstrate the per-shard provenance it prints.  With
``--serve`` the queries go through the full
:class:`~repro.serve.service.QueryService` front door (admission waves,
result cache) and each answer is annotated with its cache outcome.
``--rate`` spreads the demo queries over a seeded Poisson arrival
stream instead of one burst, and ``--deadline`` gives each request a
relative deadline budget — requests the service sheds are printed with
their verdict instead of a ranking (both require ``--serve``).
``--ingest N`` applies a live mutation batch first — N fresh documents
added, N//3 of the lowest live ids tombstone-deleted, one epoch
published — so the demo queries run against the mutated corpus.
"""

import argparse
import sys
from typing import List, Optional

from .bench import (
    BenchRunner,
    figure1_size_distribution,
    figure2_term_use,
    figure3_buffer_sweep,
    render_plot,
    render_table,
    table1_collections,
    table2_buffers,
    table3_wall_clock,
    table4_system_io,
    table5_io_stats,
    table6_hit_rates,
)
from .core import (
    check_system,
    config_by_name,
    improvement,
    load_workload,
    materialize,
    measure_run,
)
from .inquery import DEFAULT_TOP_K, DocumentAtATimeEngine, RetrievalEngine
from .synth import PROFILES

ALL_CONFIGS = ("btree", "mneme-nocache", "mneme-cache", "mneme-linked")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Brown/Callan/Moss/Croft (EDBT 1994): "
            "full-text IR over the Mneme persistent object store."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("profiles", help="list collection profiles and query sets")

    demo = commands.add_parser("demo", help="build a system and run queries")
    demo.add_argument("queries", nargs="+", help="structured queries to run")
    demo.add_argument("--profile", default="cacm-s", choices=sorted(PROFILES))
    demo.add_argument("--config", default="mneme-cache", choices=ALL_CONFIGS)
    demo.add_argument(
        "--top-k", type=int, default=10,
        help=f"documents to print per query (system default: {DEFAULT_TOP_K})",
    )
    demo.add_argument(
        "--daat", action="store_true",
        help="use the document-at-a-time engine (flat #sum/#wsum only)",
    )
    demo.add_argument(
        "--prune", default="off", choices=("off", "auto", "require"),
        help="dynamic top-k pruning (document-at-a-time only); rankings "
             "are bit-identical to exhaustive evaluation",
    )
    demo.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve from an N-shard document-partitioned build",
    )
    demo.add_argument(
        "--partitioner", default="hash", choices=("hash", "range"),
        help="document partitioning scheme for --shards",
    )
    demo.add_argument(
        "--replicas", type=int, default=0, metavar="R",
        help="with --shards: byte-identical mirror machines per shard "
             "(failover is automatic and observationally invisible)",
    )
    demo.add_argument(
        "--serve", action="store_true",
        help="route the queries through the QueryService (waves + cache)",
    )
    demo.add_argument(
        "--rate", type=float, default=0.0, metavar="QPS",
        help="with --serve: Poisson arrival rate in simulated queries/s "
             "(default 0 = all queries arrive at t=0)",
    )
    demo.add_argument(
        "--deadline", type=float, default=0.0, metavar="MS",
        help="with --serve: per-request deadline budget in simulated ms "
             "(default 0 = no deadline; expired requests are shed)",
    )
    demo.add_argument(
        "--ingest", type=int, default=0, metavar="N",
        help="apply a live ingest batch first: add N documents, "
             "tombstone-delete N//3, publish one epoch",
    )
    demo.add_argument(
        "--term-cache-kb", type=int, default=256, metavar="KB",
        help="decoded-term cache budget per replica in KB (0 disables; "
             "rankings are bit-identical either way)",
    )

    compare = commands.add_parser(
        "compare", help="run one query set on all three paper configurations"
    )
    compare.add_argument("--profile", default="legal-s", choices=sorted(PROFILES))
    compare.add_argument("--set", type=int, default=0, dest="set_index",
                         help="query set index within the collection")

    tables = commands.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("numbers", nargs="*", type=int, default=[],
                        help="table numbers (default: all of 1-6)")

    figures = commands.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("numbers", nargs="*", type=int, default=[],
                         help="figure numbers (default: all of 1-3)")

    report = commands.add_parser(
        "report", help="regenerate every table and figure into one text report"
    )
    report.add_argument("--output", default=None, help="also write the report here")
    report.add_argument("--skip-figure3", action="store_true",
                        help="skip the slow buffer-size sweep")

    informetrics = commands.add_parser(
        "informetrics", help="informetric profile and pool-partition audit"
    )
    informetrics.add_argument("--profile", default="legal-s", choices=sorted(PROFILES))

    evaluate = commands.add_parser(
        "evaluate", help="recall/precision of a query set (synthetic judgments)"
    )
    evaluate.add_argument("--profile", default="cacm-s", choices=sorted(PROFILES))
    evaluate.add_argument("--config", default="mneme-cache", choices=ALL_CONFIGS)
    evaluate.add_argument("--set", type=int, default=0, dest="set_index")
    evaluate.add_argument("--top-k", type=int, default=50)

    validate = commands.add_parser("validate", help="integrity-check a system")
    validate.add_argument("--profile", default="cacm-s", choices=sorted(PROFILES))
    validate.add_argument("--config", default="mneme-cache", choices=ALL_CONFIGS)
    validate.add_argument("--sample-every", type=int, default=1)

    chaos = commands.add_parser(
        "chaos", help="fault-tolerant query serving under seeded fault injection"
    )
    chaos.add_argument("--profile", action="append", dest="profiles",
                       help="collection profile (repeatable; default: all four)")
    chaos.add_argument("--config", default="mneme-linked")
    chaos.add_argument("--seed", type=int, default=1337)
    chaos.add_argument("--sweep", type=int, default=1,
                       help="consecutive seeds to test per profile")
    chaos.add_argument("--out", default=None, help="write the JSON report here")

    shards = commands.add_parser(
        "shards", help="document-partitioned scaling and invariance benchmark"
    )
    shards.add_argument("--profile", action="append", dest="profiles",
                        help="collection profile (repeatable; default: all four)")
    shards.add_argument("--config", default="mneme-cache")
    shards.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                        dest="shard_counts", help="shard counts to compare")
    shards.add_argument("--min-speedup", type=float, default=1.5,
                        help="critical-path speedup floor at the largest N")
    shards.add_argument("--out", default=None, help="write the JSON report here")

    serve = commands.add_parser(
        "serve", help="concurrent batch query service traffic benchmark"
    )
    serve.add_argument("--profile", action="append", dest="profiles",
                       help="collection profile (repeatable; default: all four)")
    serve.add_argument("--config", default="mneme-cache")
    serve.add_argument("--requests", type=int, default=160,
                       help="requests in the repeat-heavy traffic run")
    serve.add_argument("--shards", type=int, default=2,
                       help="shard count behind the cached service")
    serve.add_argument("--min-p50-speedup", type=float, default=5.0,
                       help="cache-on p50 latency improvement floor")
    serve.add_argument("--out", default=None, help="write the JSON report here")

    saturate = commands.add_parser(
        "saturate", help="overload-control gate: deterministic shedding "
                         "past capacity"
    )
    saturate.add_argument("--profile", action="append", dest="profiles",
                          help="collection profile (repeatable; default: "
                               "all four)")
    saturate.add_argument("--config", default="mneme-cache")
    saturate.add_argument("--requests", type=int, default=120,
                          help="requests in each saturation stream")
    saturate.add_argument("--shards", type=int, default=2,
                          help="shard count behind the service")
    saturate.add_argument("--check", action="store_true",
                          help="gate against the committed BENCH_saturate.json")
    saturate.add_argument("--out", default=None,
                          help="write the JSON report here")

    prune = commands.add_parser(
        "prune", help="dynamic-pruning invariance and speedup benchmark"
    )
    prune.add_argument("--profile", action="append", dest="profiles",
                       help="collection profile (repeatable; default: all four)")
    prune.add_argument("--config", default="mneme-linked")
    prune.add_argument("--top-k", type=int, default=DEFAULT_TOP_K)
    prune.add_argument("--min-speedup", type=float, default=1.5,
                       help="documents-scored reduction floor on the "
                            "TIPSTER profiles")
    prune.add_argument("--out", default=None, help="write the JSON report here")

    failover = commands.add_parser(
        "failover", help="replication gate: kills invisible, re-replication "
                         "byte-identical, mid-traffic 2->4 split"
    )
    failover.add_argument("--profile", action="append", dest="profiles",
                          help="collection profile (repeatable; default: "
                               "all four)")
    failover.add_argument("--config", default="mneme-cache")
    failover.add_argument("--queries", type=int, default=8,
                          help="queries per profile run")
    failover.add_argument("--check", action="store_true",
                          help="gate against the committed BENCH_failover.json")
    failover.add_argument("--out", default=None,
                          help="write the JSON report here")

    ingest = commands.add_parser(
        "ingest", help="live-ingest gate: mixed read/write traffic, every "
                       "epoch bit-identical to a stop-the-world rebuild"
    )
    ingest.add_argument("--profile", action="append", dest="profiles",
                        help="collection profile (repeatable; default: "
                             "all four)")
    ingest.add_argument("--config", default="mneme-linked")
    ingest.add_argument("--queries", type=int, default=6,
                        help="queries per wave")
    ingest.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_ingest.json")
    ingest.add_argument("--out", default=None,
                        help="write the JSON report here")

    termcache = commands.add_parser(
        "termcache", help="decoded-term cache gate: cache-on serving "
                          "bit-identical to cache-off, zero stale rankings"
    )
    termcache.add_argument("--profile", action="append", dest="profiles",
                           help="collection profile (repeatable; default: "
                                "all four)")
    termcache.add_argument("--config", default="mneme-linked")
    termcache.add_argument("--queries", type=int, default=6,
                           help="distinct queries in the repeated pool")
    termcache.add_argument("--check", action="store_true",
                           help="gate against the committed "
                                "BENCH_termcache.json")
    termcache.add_argument("--out", default=None,
                           help="write the JSON report here")

    return parser


def cmd_profiles() -> int:
    rows = []
    from .core import QUERY_SET_PROFILES

    for name, profile in PROFILES.items():
        sets = ", ".join(q.name for q in QUERY_SET_PROFILES.get(name, [])) or "-"
        rows.append((
            name, profile.models, profile.documents,
            profile.mean_doc_length, profile.vocab_size, sets,
        ))
    print(render_table(
        "Synthetic collection profiles",
        ("Profile", "Models", "Docs", "Mean len", "Vocab", "Query sets"),
        rows,
    ))
    return 0


def _ingest_batch(profile_name: str, pipeline, count: int):
    """The demo's deterministic mutation batch: +count docs, -count//3."""
    from .live import LiveCorpus
    from .synth import SyntheticCollection

    corpus = LiveCorpus(SyntheticCollection(PROFILES[profile_name]))
    adds = corpus.new_documents(count, after=corpus.base_count)
    live = sorted(pipeline.epochs.live_docs())
    deletes = corpus.documents_for(live[: count // 3])
    return adds, deletes


def _print_ingest_line(report) -> None:
    shards = ",".join(str(s) for s in report.shards_touched)
    print(
        f"Ingest: epoch {report.epoch} published "
        f"(+{report.docs_added}/-{report.docs_deleted} docs, "
        f"shards [{shards}], {report.wall_ms:.1f} simulated ms)"
    )


def _print_term_cache_line(stats) -> None:
    """One line of decoded-term cache accounting under a demo run."""
    if stats is None or stats.lookups == 0:
        return
    print(
        f"\nTerm cache: {stats.hits}/{stats.lookups} hits "
        f"({stats.hit_rate:.0%}), {stats.bytes} bytes resident "
        f"(peak {stats.peak_bytes}), {stats.evictions} eviction(s)"
    )


def _print_prune_line(result) -> None:
    """One line of pruning provenance under a demo result."""
    if not getattr(result, "pruned", False):
        return
    print(
        f"  pruned: {result.documents_scored} doc(s) scored, "
        f"{result.documents_skipped} skipped, "
        f"{result.blocks_skipped} block(s) skipped, "
        f"{result.prune_threshold_updates} threshold update(s)"
    )


def cmd_demo(args) -> int:
    if args.prune != "off" and not args.daat:
        print("--prune requires --daat (document-at-a-time)", file=sys.stderr)
        return 2
    if (args.rate or args.deadline) and not args.serve:
        print("--rate/--deadline require --serve", file=sys.stderr)
        return 2
    if args.rate < 0 or args.deadline < 0:
        print("--rate and --deadline must be non-negative", file=sys.stderr)
        return 2
    if args.replicas and not (args.shards and args.shards > 1):
        print("--replicas requires --shards N (N > 1)", file=sys.stderr)
        return 2
    if args.ingest < 0:
        print("--ingest must be non-negative", file=sys.stderr)
        return 2
    if args.term_cache_kb < 0:
        print("--term-cache-kb must be non-negative", file=sys.stderr)
        return 2
    print(f"Building {args.profile!r} on {args.config!r} ...")
    workload = load_workload(args.profile)
    if args.serve:
        return _demo_serve(args, workload)
    if args.shards and args.shards > 1:
        sharded = materialize(
            workload.prepared, config_by_name(args.config),
            shards=args.shards, partitioner=args.partitioner,
            replicas=args.replicas,
        )
        if args.ingest:
            from .live import IngestPipeline

            pipeline = IngestPipeline(sharded)
            adds, deletes = _ingest_batch(args.profile, pipeline, args.ingest)
            _print_ingest_line(pipeline.apply(adds=adds, deletes=deletes))
        scheduler = sharded.scheduler(
            top_k=args.top_k, engine="daat" if args.daat else "taat",
            prune=args.prune,
            term_cache_bytes=args.term_cache_kb * 1024,
        )
        outcome = scheduler.run_batch(list(args.queries))
        if args.replicas:
            print(
                f"Replicated x{args.replicas}: replica health "
                f"{sharded.replica_health()}"
            )
        for q, result in enumerate(outcome.results):
            print(f"\nQuery: {result.query}")
            if not result.ranking:
                print("  (no matching documents)")
            for rank, (doc_id, belief) in enumerate(result.ranking, start=1):
                home = sharded.shard_of_doc(doc_id)
                print(f"  {rank:>3d}. doc {doc_id:<8d} belief={belief:.4f}"
                      f"  (shard {home})")
            contributions = ", ".join(
                f"{shard}:{count}"
                for shard, count in sorted(result.shard_contributions.items())
            )
            print(f"  top-{args.top_k} contributions by shard: {contributions}")
            shard_results = [
                outcome.per_shard_results[i][q]
                for i in sorted(outcome.per_shard_results)
                if q < len(outcome.per_shard_results[i])
            ]
            if any(getattr(r, "pruned", False) for r in shard_results):
                print(
                    "  pruned: "
                    f"{sum(r.documents_scored for r in shard_results)} doc(s) "
                    "scored, "
                    f"{sum(r.documents_skipped for r in shard_results)} skipped, "
                    f"{sum(r.blocks_skipped for r in shard_results)} block(s) "
                    "skipped across shards"
                )
        if args.term_cache_kb > 0:
            from .serve.termcache import merge_stats

            _print_term_cache_line(merge_stats(
                cache for _s, _r, cache in scheduler.term_caches()
            ))
        return 0
    system = materialize(workload.prepared, config_by_name(args.config))
    if args.ingest:
        from .live import IngestPipeline

        pipeline = IngestPipeline(system)
        adds, deletes = _ingest_batch(args.profile, pipeline, args.ingest)
        _print_ingest_line(pipeline.apply(adds=adds, deletes=deletes))
    if args.daat:
        engine = DocumentAtATimeEngine(
            system.index, top_k=args.top_k, prune=args.prune
        )
    else:
        engine = RetrievalEngine(system.index, top_k=args.top_k)
    if args.term_cache_kb > 0:
        from .serve import TermCache

        engine.term_cache = TermCache(args.term_cache_kb * 1024)
    for query in args.queries:
        result = engine.run_query(query)
        print(f"\nQuery: {query}")
        if not result.ranking:
            print("  (no matching documents)")
        for rank, (doc_id, belief) in enumerate(result.ranking, start=1):
            print(f"  {rank:>3d}. doc {doc_id:<8d} belief={belief:.4f}")
        _print_prune_line(result)
    if engine.term_cache is not None:
        _print_term_cache_line(engine.term_cache.stats)
    return 0


def _demo_serve(args, workload) -> int:
    """``demo --serve``: the queries through the full service front door."""
    from .serve import QueryService
    from .synth.traffic import TimedRequest

    if args.shards and args.shards > 1:
        backend = materialize(
            workload.prepared, config_by_name(args.config),
            shards=args.shards, partitioner=args.partitioner,
            replicas=args.replicas,
        )
    else:
        backend = materialize(workload.prepared, config_by_name(args.config))
    service = QueryService(
        backend,
        engine="daat" if args.daat else "taat",
        top_k=args.top_k,
        prune=args.prune,
        term_cache_bytes=args.term_cache_kb * 1024,
    )
    if args.ingest:
        adds, deletes = _ingest_batch(
            args.profile, service.ingest_pipeline, args.ingest
        )
        _print_ingest_line(service.ingest(adds=adds, deletes=deletes))
    if args.rate > 0:
        # A seeded Poisson spread of the demo queries, so --deadline has
        # queueing to bite on; deterministic for a given query list.
        import numpy as np

        gaps = np.random.default_rng(17).exponential(
            1000.0 / args.rate, size=len(args.queries)
        )
        arrivals = [float(arrival) for arrival in np.cumsum(gaps)]
    else:
        arrivals = [0.0] * len(args.queries)
    requests = [
        TimedRequest(
            text=query,
            arrival_ms=arrival,
            deadline_ms=arrival + args.deadline if args.deadline > 0 else None,
            seq=seq,
        )
        for seq, (query, arrival) in enumerate(zip(args.queries, arrivals))
    ]
    report = service.process(requests, name="demo")
    for row in report.served:
        print(f"\nQuery: {row.text}  [{row.outcome}, {row.latency_ms:.3f}ms]")
        if not row.result.ranking:
            print("  (no matching documents)")
        for rank, (doc_id, belief) in enumerate(row.result.ranking, start=1):
            print(f"  {rank:>3d}. doc {doc_id:<8d} belief={belief:.4f}")
        _print_prune_line(row.result)
    for row in report.shed:
        print(
            f"\nQuery: {row.text}  [SHED: {row.reason} at "
            f"{row.shed_ms:.3f}ms -> {row.error}]"
        )
    if service.cache is not None:
        stats = service.cache.stats
        print(
            f"\nService: {report.waves} wave(s), result cache "
            f"{stats.hits}/{stats.lookups} hits "
            f"({stats.hit_rate:.0%}), "
            f"{len(service.cache)} entrie(s) resident"
        )
    term_stats = service.term_cache_stats()
    if term_stats.lookups:
        print(
            f"Term cache: {term_stats.hits}/{term_stats.lookups} hits "
            f"({term_stats.hit_rate:.0%}), {term_stats.bytes} bytes "
            f"resident (peak {term_stats.peak_bytes})"
        )
    if report.shed:
        print(
            f"Shed {len(report.shed)}/{report.offered} request(s) "
            f"({report.shed_fraction:.0%})"
        )
    return 0


def cmd_compare(args) -> int:
    workload = load_workload(args.profile)
    if not 0 <= args.set_index < len(workload.query_sets):
        print(f"no query set {args.set_index} in {args.profile!r}", file=sys.stderr)
        return 2
    query_set = workload.query_sets[args.set_index]
    rows = []
    baseline = None
    for name in ("btree", "mneme-nocache", "mneme-cache"):
        system = materialize(workload.prepared, config_by_name(name))
        metrics = measure_run(system, query_set.queries, query_set.name)
        if baseline is None:
            baseline = metrics
        rows.append((
            name,
            round(metrics.wall_s, 2),
            round(metrics.system_io_s, 2),
            metrics.io_inputs,
            round(metrics.accesses_per_lookup, 2),
            round(metrics.kbytes_from_file),
            f"{improvement(baseline.system_io_s, metrics.system_io_s):.0%}",
        ))
    print(render_table(
        f"Storage comparison: {args.profile} / {query_set.name} "
        f"({len(query_set)} queries)",
        ("Configuration", "Wall (s)", "Sys+I/O (s)", "I", "A", "B (KB)",
         "Sys+I/O improvement"),
        rows,
    ))
    return 0


def cmd_tables(numbers: List[int]) -> int:
    wanted = numbers or [1, 2, 3, 4, 5, 6]
    runner = BenchRunner()
    builders = {
        1: ("Table 1: Document collection statistics (KB)", table1_collections),
        2: ("Table 2: Mneme buffer sizes (KB)", table2_buffers),
        3: ("Table 3: Wall-clock times (simulated s)", table3_wall_clock),
        4: ("Table 4: System CPU plus I/O times (simulated s)", table4_system_io),
        5: ("Table 5: I/O statistics", table5_io_stats),
        6: ("Table 6: Buffer hit rates", table6_hit_rates),
    }
    for number in wanted:
        if number not in builders:
            print(f"no table {number} in the paper", file=sys.stderr)
            return 2
        title, builder = builders[number]
        headers, rows = builder(runner)
        print(render_table(title, headers, rows))
    return 0


def cmd_figures(numbers: List[int]) -> int:
    wanted = numbers or [1, 2, 3]
    runner = BenchRunner()
    for number in wanted:
        if number == 1:
            prepared = runner.workload("legal-s").prepared
            xs, series = figure1_size_distribution(prepared)
            print(render_plot(
                "Figure 1: Cumulative distribution of inverted list sizes (Legal)",
                xs, series, x_label="record size (bytes)", log_x=True,
            ))
        elif number == 2:
            workload = runner.workload("legal-s")
            points = figure2_term_use(workload.prepared, workload.query_sets[1])
            print(render_plot(
                "Figure 2: Frequency of use of inverted list sizes (Legal QS2)",
                [float(s) for s, _u in points],
                {"uses": [float(u) for _s, u in points]},
                x_label="record size (bytes)", log_x=True,
            ))
        elif number == 3:
            sizes, rates = figure3_buffer_sweep(runner, "tipster-s")
            print(render_plot(
                "Figure 3: Large buffer hit rate vs size (TIPSTER QS1)",
                [s / 1e6 for s in sizes], {"hit rate": rates},
                x_label="buffer size (millions of bytes)",
            ))
        else:
            print(f"no figure {number} in the paper", file=sys.stderr)
            return 2
    return 0


def cmd_informetrics(args) -> int:
    from .synth import partition_report, profile_collection, suggest_small_threshold

    workload = load_workload(args.profile)
    collection = workload.prepared.collection
    profile = profile_collection(collection)
    print(render_table(
        f"Informetric profile: {args.profile}",
        ("Measure", "Value"),
        [
            ("tokens", profile.tokens),
            ("vocabulary", profile.vocabulary),
            ("singleton terms", f"{profile.singleton_fraction:.0%}"),
            ("terms with <= 2 occurrences", f"{profile.doubleton_fraction:.0%}"),
            ("top 1% token mass", f"{profile.top_percent_mass:.0%}"),
            ("Zipf-Mandelbrot s", round(profile.zipf_s, 2)),
            ("Zipf-Mandelbrot q", round(profile.zipf_q, 1)),
            ("Heaps k", round(profile.heaps_k, 2)),
            ("Heaps beta", round(profile.heaps_beta, 2)),
        ],
    ))
    sizes = workload.prepared.stats.record_sizes
    suggested = suggest_small_threshold(sizes)
    report = partition_report(sizes, 12, 4096)
    rows = [
        (name, row["records"], f"{row['record_share']:.0%}",
         row["bytes"], f"{row['byte_share']:.0%}")
        for name, row in report.items()
    ]
    print(render_table(
        "Pool partition audit (paper thresholds: 12 B / 4 KB)",
        ("Pool", "Records", "Share", "Bytes", "Share"),
        rows,
        note=f"Data-driven small-object boundary (50th pct): {suggested} bytes.",
    ))
    return 0


def cmd_evaluate(args) -> int:
    from .inquery import evaluate_run
    from .synth import relevance_from_postings

    workload = load_workload(args.profile)
    if not 0 <= args.set_index < len(workload.query_sets):
        print(f"no query set {args.set_index} in {args.profile!r}", file=sys.stderr)
        return 2
    query_set = workload.query_sets[args.set_index]
    system = materialize(workload.prepared, config_by_name(args.config))
    engine = RetrievalEngine(system.index, top_k=args.top_k)
    results = engine.run_batch(query_set.queries)
    relevance = relevance_from_postings(
        query_set.term_ranks, workload.prepared.docs_of_rank
    )
    evaluation = evaluate_run([r.doc_ids() for r in results], relevance)
    print(render_table(
        f"Retrieval evaluation: {args.profile} / {query_set.name} on {args.config}",
        ("Measure", "Value"),
        [
            ("judged queries", evaluation.queries),
            ("mean average precision", round(evaluation.mean_average_precision, 4)),
            ("mean R-precision", round(evaluation.mean_r_precision, 4)),
        ],
        note="Judgments are synthetic (term-overlap); absolute values are not "
             "comparable to TREC numbers, but they are identical across "
             "storage configurations, the paper's premise.",
    ))
    interp_rows = [
        (f"{i / 10:.1f}", round(p, 3))
        for i, p in enumerate(evaluation.mean_interpolated)
    ]
    print(render_table(
        "Interpolated precision at the 11 standard recall points",
        ("Recall", "Precision"),
        interp_rows,
    ))
    return 0


def cmd_validate(args) -> int:
    print(f"Building {args.profile!r} on {args.config!r} ...")
    workload = load_workload(args.profile)
    system = materialize(workload.prepared, config_by_name(args.config))
    report = check_system(system.index, sample_every=args.sample_every)
    print(f"{report.checks} checks run, {len(report.issues)} issue(s).")
    for issue in report.issues[:50]:
        print(f"  {issue}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "profiles":
        return cmd_profiles()
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "tables":
        return cmd_tables(args.numbers)
    if args.command == "figures":
        return cmd_figures(args.numbers)
    if args.command == "report":
        from .bench import write_full_report

        text = write_full_report(
            BenchRunner(),
            path=args.output,
            include_figure3=not args.skip_figure3,
        )
        print(text)
        return 0
    if args.command == "informetrics":
        return cmd_informetrics(args)
    if args.command == "evaluate":
        return cmd_evaluate(args)
    if args.command == "validate":
        return cmd_validate(args)
    if args.command == "chaos":
        from pathlib import Path

        from .bench.chaos import main as chaos_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config, "--seed", str(args.seed),
                  "--sweep", str(args.sweep)]
        if args.out:
            argv2 += ["--out", str(Path(args.out))]
        return chaos_main(argv2)
    if args.command == "shards":
        from .bench.shards import main as shards_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--shards"] + [str(n) for n in args.shard_counts]
        argv2 += ["--min-speedup", str(args.min_speedup)]
        if args.out:
            argv2 += ["--out", args.out]
        return shards_main(argv2)
    if args.command == "serve":
        from .bench.serve import main as serve_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--requests", str(args.requests)]
        argv2 += ["--shards", str(args.shards)]
        argv2 += ["--min-p50-speedup", str(args.min_p50_speedup)]
        if args.out:
            argv2 += ["--out", args.out]
        return serve_main(argv2)
    if args.command == "saturate":
        from .bench.saturate import main as saturate_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--requests", str(args.requests)]
        argv2 += ["--shards", str(args.shards)]
        if args.check:
            argv2 += ["--check"]
        if args.out:
            argv2 += ["--out", args.out]
        return saturate_main(argv2)
    if args.command == "prune":
        from .bench.prune import main as prune_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--top-k", str(args.top_k)]
        argv2 += ["--min-speedup", str(args.min_speedup)]
        if args.out:
            argv2 += ["--out", args.out]
        return prune_main(argv2)
    if args.command == "failover":
        from .bench.failover import main as failover_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--queries", str(args.queries)]
        if args.check:
            argv2 += ["--check"]
        if args.out:
            argv2 += ["--out", args.out]
        return failover_main(argv2)
    if args.command == "ingest":
        from .bench.ingest import main as ingest_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--queries", str(args.queries)]
        if args.check:
            argv2 += ["--check"]
        if args.out:
            argv2 += ["--out", args.out]
        return ingest_main(argv2)
    if args.command == "termcache":
        from .bench.termcache import main as termcache_main

        argv2 = []
        for profile in args.profiles or []:
            argv2 += ["--profile", profile]
        argv2 += ["--config", args.config]
        argv2 += ["--queries", str(args.queries)]
        if args.check:
            argv2 += ["--check"]
        if args.out:
            argv2 += ["--out", args.out]
        return termcache_main(argv2)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
