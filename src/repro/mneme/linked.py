"""Linked (chunked) large objects — the paper's richer-data-model feature.

"Inter-object references allow structures such as linked lists to be used
to break large objects into more manageable pieces.  This could provide
better support for inverted list updates and allow incremental retrieval
of large aggregate objects."  The paper leaves this as future work; we
implement it.

A linked object is a chain of chunk objects in a
:class:`ChunkedLargeObjectPool`.  Each chunk starts with an 8-byte header
(4-byte id of the next chunk, 0 for the tail, and a 4-byte payload
length) followed by payload bytes.  The head chunk's identifier names the
whole linked object.  Because the header stores object identifiers, the
pool overrides :meth:`~repro.mneme.pool.Pool.scan_references`, satisfying
Mneme's requirement that pools locate the identifiers stored in their
objects (e.g. for garbage collection).

Benefits exercised by the update extension benchmark:

* :func:`read_linked` can stop early — incremental retrieval of a prefix
  of a huge inverted list without transferring the rest;
* :func:`append_linked` grows an object by writing one new tail chunk and
  rewriting one small pointer header, instead of relocating megabytes.
"""

import struct
from typing import Iterator, List

from ..errors import MnemeError
from .ids import NULL_ID
from .pool import LargeObjectPool

_CHUNK_HDR = struct.Struct("<II")  # next chunk oid, payload length

#: Default payload bytes per chunk.
DEFAULT_CHUNK_BYTES = 65536


class ChunkedLargeObjectPool(LargeObjectPool):
    """A large object pool whose objects are linked-list chunks."""

    def scan_references(self, data: bytes) -> "tuple[int, ...]":
        """The next-chunk identifier stored in a chunk header."""
        if len(data) < _CHUNK_HDR.size:
            return ()
        next_oid, _length = _CHUNK_HDR.unpack_from(data, 0)
        return (next_oid,) if next_oid != NULL_ID else ()


def _pack_chunk(next_oid: int, payload: bytes) -> bytes:
    return _CHUNK_HDR.pack(next_oid, len(payload)) + payload


def _unpack_chunk(data: bytes) -> "tuple[int, bytes]":
    if len(data) < _CHUNK_HDR.size:
        raise MnemeError("object too short to be a linked chunk")
    next_oid, length = _CHUNK_HDR.unpack_from(data, 0)
    payload = data[_CHUNK_HDR.size:_CHUNK_HDR.size + length]
    if len(payload) != length:
        raise MnemeError("linked chunk payload truncated")
    return next_oid, payload


def write_linked(
    pool: ChunkedLargeObjectPool, data: bytes, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> int:
    """Store ``data`` as a chain of chunks, returning the head object id.

    See :func:`write_linked_parts` for the layout guarantees.
    """
    if chunk_bytes <= 0:
        raise MnemeError("chunk size must be positive")
    pieces = [data[i:i + chunk_bytes] for i in range(0, len(data), chunk_bytes)] or [b""]
    return write_linked_parts(pool, pieces)


def write_linked_parts(pool: ChunkedLargeObjectPool, parts: List[bytes]) -> int:
    """Store pre-split payloads as one chunk each, returning the head id.

    The caller controls chunk boundaries — needed when each chunk must
    be independently meaningful (e.g. a self-contained slice of an
    inverted list record that a document-at-a-time reader can decode
    without its neighbours).
    """
    return write_linked_chain(pool, parts)[0]


def write_linked_chain(pool: ChunkedLargeObjectPool, parts: List[bytes]) -> List[int]:
    """Like :func:`write_linked_parts` but returning every chunk's id.

    Chunks are allocated head-first, so a chain streams through the file
    at ascending offsets (file allocation sympathetic to sequential
    readers and the FS cache's read-ahead).  Each header's next-pointer
    is patched in place, same-size, after its successor exists; the head
    id only escapes once the chain is complete.  The full id list is
    what bound-metadata sidecars record so a reader can fetch any chunk
    without walking the chain.
    """
    if not parts:
        raise MnemeError("a linked object needs at least one part")
    oids = [pool.create(_pack_chunk(NULL_ID, part)) for part in parts]
    for index in range(len(oids) - 1):
        pool.modify(oids[index], _pack_chunk(oids[index + 1], parts[index]))
    return oids


def iter_linked(pool: ChunkedLargeObjectPool, head_oid: int) -> Iterator[bytes]:
    """Yield the payload of each chunk in chain order.

    This is the incremental-retrieval interface: the caller controls how
    far down the (possibly multi-megabyte) object to read.
    """
    oid = head_oid
    seen = set()
    while oid != NULL_ID:
        if oid in seen:
            raise MnemeError(f"linked object cycle at chunk {oid}")
        seen.add(oid)
        oid, payload = _unpack_chunk(pool.fetch(oid))
        yield payload


def read_linked(
    pool: ChunkedLargeObjectPool, head_oid: int, max_bytes: int = -1
) -> bytes:
    """Reassemble a linked object (optionally only its first bytes)."""
    parts: List[bytes] = []
    total = 0
    for payload in iter_linked(pool, head_oid):
        parts.append(payload)
        total += len(payload)
        if 0 <= max_bytes <= total:
            break
    data = b"".join(parts)
    return data if max_bytes < 0 else data[:max_bytes]


def linked_length(pool: ChunkedLargeObjectPool, head_oid: int) -> int:
    """Total payload bytes of a linked object (reads every header)."""
    return sum(len(p) for p in iter_linked(pool, head_oid))


def chunk_ids(pool: ChunkedLargeObjectPool, head_oid: int) -> List[int]:
    """The object ids of every chunk, head first."""
    ids = []
    oid = head_oid
    while oid != NULL_ID:
        if oid in ids:
            raise MnemeError(f"linked object cycle at chunk {oid}")
        ids.append(oid)
        oid, _ = _unpack_chunk(pool.fetch(oid))
    return ids


def append_linked(
    pool: ChunkedLargeObjectPool,
    head_oid: int,
    data: bytes,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> None:
    """Append ``data`` to a linked object in place.

    Cost is proportional to the appended data plus one tail-header
    rewrite — the incremental-update capability that motivates breaking
    large inverted lists into linked pieces.  The tail's payload is
    topped up to ``chunk_bytes`` first, then whole new chunks are added.
    """
    if not data:
        return
    ids = chunk_ids(pool, head_oid)
    tail = ids[-1]
    _next, payload = _unpack_chunk(pool.fetch(tail))
    room = max(0, chunk_bytes - len(payload))
    top_up, rest = data[:room], data[room:]
    new_next = NULL_ID
    if rest:
        new_next = write_linked(pool, rest, chunk_bytes)
    pool.modify(tail, _pack_chunk(new_next, payload + top_up))


def delete_linked(pool: ChunkedLargeObjectPool, head_oid: int) -> int:
    """Delete every chunk of a linked object, returning the chunk count."""
    ids = chunk_ids(pool, head_oid)
    for oid in ids:
        pool.delete(oid)
    return len(ids)


def reachable(pool: ChunkedLargeObjectPool, roots: List[int]) -> set:
    """Object ids reachable from ``roots`` through chunk references.

    The store-side half of a mark phase: pools expose the references in
    their objects and the traversal is generic, exactly the division of
    labour Mneme prescribes for garbage collection.
    """
    marked = set()
    stack = [oid for oid in roots if oid != NULL_ID]
    while stack:
        oid = stack.pop()
        if oid in marked:
            continue
        marked.add(oid)
        stack.extend(
            ref for ref in pool.scan_references(pool.fetch(oid)) if ref not in marked
        )
    return marked
