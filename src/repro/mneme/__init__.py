"""Reimplementation of the Mneme persistent object store (Moss, 1990).

Objects are chunks of contiguous bytes with unique identifiers, grouped
into files, logically grouped into 255-object logical segments and
physically grouped into segments whose size, layout, and location policy
are defined by extensible *pools*.  Pools attach to *buffers* whose
operation suite defines the replacement policy.  See DESIGN.md §3.3.
"""

from .buffers import Buffer, BufferStats, LRUBuffer, NullBuffer, PartitionedBuffer
from .gc import CompactionReport, GCReport, collect, compact, live_oids
from .ids import (
    ID_BITS,
    LOGICAL_SEGMENT_OBJECTS,
    MAX_LOCAL_ID,
    NULL_ID,
    logical_segment,
    make_global,
    oid_for,
    slot_in_segment,
    split_global,
)
from .linked import (
    ChunkedLargeObjectPool,
    append_linked,
    chunk_ids,
    delete_linked,
    iter_linked,
    linked_length,
    reachable,
    read_linked,
    write_linked,
    write_linked_chain,
    write_linked_parts,
)
from .pool import (
    MEDIUM_OBJECT_MAX,
    MEDIUM_SEGMENT_BYTES,
    LargeObjectPool,
    MediumObjectPool,
    Pool,
    SmallObjectPool,
)
from .recovery import (
    EPOCH_MARKER_OFFSET,
    RecoveryReport,
    RedoLog,
    recover,
    recover_to_epoch,
)
from .segment import (
    SMALL_OBJECT_MAX,
    SMALL_SEGMENT_BYTES,
    DirectorySegment,
    FixedSlotSegment,
)
from .store import MnemeFile, MnemeStore, ResilienceStats
from .tables import PagedTable
from .txn import (
    EXCLUSIVE,
    SHARED,
    LockConflictError,
    LockManager,
    Transaction,
    TransactionAborted,
    TransactionError,
    TransactionManager,
)

__all__ = [
    "Buffer",
    "BufferStats",
    "ChunkedLargeObjectPool",
    "CompactionReport",
    "DirectorySegment",
    "EPOCH_MARKER_OFFSET",
    "EXCLUSIVE",
    "FixedSlotSegment",
    "GCReport",
    "ID_BITS",
    "LOGICAL_SEGMENT_OBJECTS",
    "LRUBuffer",
    "LockConflictError",
    "LockManager",
    "LargeObjectPool",
    "MAX_LOCAL_ID",
    "MEDIUM_OBJECT_MAX",
    "MEDIUM_SEGMENT_BYTES",
    "MediumObjectPool",
    "MnemeFile",
    "MnemeStore",
    "NULL_ID",
    "NullBuffer",
    "PartitionedBuffer",
    "PagedTable",
    "Pool",
    "RecoveryReport",
    "RedoLog",
    "ResilienceStats",
    "SMALL_OBJECT_MAX",
    "SHARED",
    "SMALL_SEGMENT_BYTES",
    "SmallObjectPool",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TransactionManager",
    "append_linked",
    "chunk_ids",
    "collect",
    "compact",
    "delete_linked",
    "iter_linked",
    "linked_length",
    "live_oids",
    "logical_segment",
    "make_global",
    "oid_for",
    "reachable",
    "read_linked",
    "recover",
    "recover_to_epoch",
    "slot_in_segment",
    "split_global",
    "write_linked",
    "write_linked_chain",
    "write_linked_parts",
]
