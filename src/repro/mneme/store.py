"""The Mneme store: files of objects, routed through pools.

"The basic services provided by Mneme are storage and retrieval of
objects, where an object is a chunk of contiguous bytes that has been
assigned a unique identifier.  Mneme has no notion of type or class for
objects."  Objects are grouped into files; identifiers are unique within
a file and mapped to globally unique identifiers when several files are
open at once.

A :class:`MnemeFile` owns one main data file of physical segments plus a
set of auxiliary-table files, and routes object operations to the pool
that owns the object's logical segment.  A :class:`MnemeStore` manages
the open files and the global identifier space.
"""

import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (
    BadBlockError,
    ChecksumError,
    FileNotFoundInStoreError,
    MnemeError,
    ObjectNotFoundError,
    ReadFailedError,
)
from ..faults import RetryPolicy
from ..simdisk import SimFile, SimFileSystem
from .ids import logical_segment, make_global, split_global
from .pool import Pool
from .tables import PagedTable

_META = struct.Struct("<4sIIH")        # magic, file number, next logseg, pools
_META_POOL = struct.Struct("<HQQ")     # pool id, objects created, live objects
_META_MAGIC = b"MMET"


@dataclass
class ResilienceStats:
    """What the fault-tolerant read path did for one Mneme file.

    Surfaced the same way :class:`~repro.simdisk.disk.DiskStats` and
    :class:`~repro.mneme.buffers.BufferStats` are: copyable and
    subtractable, so harnesses snapshot-and-diff per measured run.
    """

    read_faults: int = 0          #: segment reads that raised BadBlockError
    checksum_failures: int = 0    #: segment reads that failed CRC verification
    retries: int = 0              #: re-reads attempted after a failure
    retry_wait_ms: float = 0.0    #: simulated backoff charged to the clock
    read_repairs: int = 0         #: segments rewritten from the redo log
    unrecovered_reads: int = 0    #: reads given up on (error surfaced)

    _FIELDS = (
        "read_faults", "checksum_failures", "retries",
        "retry_wait_ms", "read_repairs", "unrecovered_reads",
    )

    def copy(self) -> "ResilienceStats":
        return ResilienceStats(*(getattr(self, name) for name in self._FIELDS))

    def __sub__(self, other: "ResilienceStats") -> "ResilienceStats":
        return ResilienceStats(
            *(getattr(self, name) - getattr(other, name) for name in self._FIELDS)
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self._FIELDS}


class MnemeFile:
    """One Mneme file: a segment heap, auxiliary tables, and pools.

    Construction does not touch disk layout decisions: callers create the
    pools they need via :meth:`create_pool` (the pool configuration is
    part of the application, not self-describing store metadata) and then
    call :meth:`load` to restore any previously persisted state.
    """

    def __init__(
        self,
        fs: SimFileSystem,
        name: str,
        file_no: int,
        wal=None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.fs = fs
        self.name = name
        self.file_no = file_no
        #: Optional :class:`~repro.mneme.recovery.RedoLog`; when present,
        #: every segment write is logged before it reaches the main file,
        #: and a segment that fails checksum verification is repaired
        #: from the log's last known-good copy (read repair).
        self.wal = wal
        #: Bounded-backoff policy for failed segment reads.  Always
        #: present; it only acts on exception paths, so fault-free runs
        #: are unchanged.
        self.retry = retry if retry is not None else RetryPolicy()
        self.resilience = ResilienceStats()
        #: Per-segment (length, CRC-32) recorded at write time; verified
        #: on every :meth:`read_segment` so silent at-rest corruption is
        #: caught before decoded garbage reaches a pool.
        self._crcs: Dict[int, Tuple[int, int]] = {}
        main_name = f"{name}.mn"
        self.main = fs.open(main_name) if fs.exists(main_name) else fs.create(main_name)
        if self.main.size == 0:
            # A 16-byte header keeps offset 0 free: pools use offset 0 as
            # the "segment not yet written" sentinel in their tables.
            self.main.write(0, b"MNEMEFILE\x00v1\x00\x00\x00\x00")
        self.pools: Dict[int, Pool] = {}
        self._aux_files: List[SimFile] = []
        self._next_logseg = 0
        self._router: Dict[int, Pool] = {}
        self._loaded = False

    # -- services used by pools ----------------------------------------------

    def make_table(self, suffix: str, entry_format: str) -> PagedTable:
        """Create or open the auxiliary table ``<file>.aux.<suffix>``."""
        table_name = f"{self.name}.aux.{suffix}"
        file = (
            self.fs.open(table_name)
            if self.fs.exists(table_name)
            else self.fs.create(table_name)
        )
        self._aux_files.append(file)
        return PagedTable(file, entry_format)

    def allocate_logseg(self, pool_id: int) -> int:
        """Hand the next logical segment number to ``pool_id``."""
        logseg = self._next_logseg
        self._next_logseg += 1
        pool = self.pools.get(pool_id)
        if pool is not None:
            self._router[logseg] = pool
        return logseg

    def append_segment(self, data: bytes, align: int = 1) -> int:
        """Append a physical segment, aligned, returning its offset.

        Pools pass their segment size (or the transfer block size) as
        ``align`` so that one segment read never straddles an extra
        8 KB transfer block — the "careful file allocation sympathetic
        to the device transfer block size" the paper credits for much of
        Mneme's improvement.
        """
        offset = self.main.size
        if align > 1 and offset % align:
            pad = align - offset % align
            self.main.write(offset, b"\x00" * pad)
            offset += pad
        if self.wal is not None:
            self.wal.log_write(offset, data)
        self.main.write(offset, data)
        self._crcs[offset] = (len(data), zlib.crc32(data))
        return offset

    def write_segment(self, offset: int, data: bytes) -> None:
        """Rewrite a physical segment in place (through the WAL if any)."""
        if self.wal is not None:
            self.wal.log_write(offset, data)
        self.main.write(offset, data)
        self._crcs[offset] = (len(data), zlib.crc32(data))

    def read_segment(self, offset: int, length: int) -> bytes:
        """Transfer a physical segment from the main file, verified.

        One file access on the fault-free path, exactly as before.  On a
        failed transfer the read is retried under :attr:`retry` with the
        backoff charged to the simulated clock; on a checksum mismatch
        the cached copies are invalidated and, if a WAL is attached, the
        segment is rewritten from the log's last known-good copy (read
        repair) before one final verify.

        Raises
        ------
        ReadFailedError
            The transfer kept failing after the retry budget.
        ChecksumError
            The bytes stayed corrupt after retries (and repair, if a
            WAL was available).
        """
        policy = self.retry
        expected = self._crcs.get(offset)
        verify = expected is not None and expected[0] == length
        attempt = 0
        repaired = False
        while True:
            attempt += 1
            try:
                data = self.main.read(offset, length)
            except BadBlockError as exc:
                self.resilience.read_faults += 1
                if attempt >= policy.max_attempts:
                    self.resilience.unrecovered_reads += 1
                    raise ReadFailedError(
                        f"segment at offset {offset} unreadable after"
                        f" {attempt} attempts: {exc}"
                    ) from exc
                self._backoff(attempt)
                continue
            if verify and zlib.crc32(data) != expected[1]:
                self.resilience.checksum_failures += 1
                self.main.invalidate_cached(offset, length)
                if self.wal is not None and not repaired:
                    copy = self.wal.latest_for(offset)
                    if copy is not None and len(copy) == length:
                        self.write_segment(offset, copy)
                        self.resilience.read_repairs += 1
                        repaired = True
                        continue
                if attempt >= policy.max_attempts:
                    self.resilience.unrecovered_reads += 1
                    raise ChecksumError(
                        f"segment at offset {offset} failed checksum"
                        f" verification after {attempt} attempts"
                        + (" (read repair attempted)" if repaired else "")
                    )
                self._backoff(attempt)
                continue
            return data

    def _backoff(self, attempt: int) -> None:
        """Charge one bounded-backoff wait to the simulated clock."""
        wait = self.retry.wait_before(attempt)
        self.fs.disk.clock.charge_io(wait)
        self.resilience.retries += 1
        self.resilience.retry_wait_ms += wait

    # -- pool management -------------------------------------------------------

    def create_pool(self, pool_id: int, factory: Callable[..., Pool], **kwargs) -> Pool:
        """Instantiate and register a pool.

        ``factory`` is the pool class; it receives this file as its
        services object plus ``pool_id`` and any extra keyword arguments.
        """
        if pool_id in self.pools:
            raise MnemeError(f"pool id {pool_id} already registered")
        pool = factory(self, pool_id, **kwargs)
        self.pools[pool_id] = pool
        for logseg in pool.logsegs():
            self._router[logseg] = pool
        return pool

    def pool(self, pool_id: int) -> Pool:
        try:
            return self.pools[pool_id]
        except KeyError:
            raise MnemeError(f"no pool with id {pool_id}") from None

    def load(self) -> None:
        """Restore persisted meta state (after all pools are registered)."""
        meta_name = f"{self.name}.meta"
        self._loaded = True
        if not self.fs.exists(meta_name):
            return
        file = self.fs.open(meta_name)
        if file.size == 0:
            return
        raw = file.read(0, file.size)
        magic, file_no, next_logseg, pool_count = _META.unpack_from(raw, 0)
        if magic != _META_MAGIC:
            raise MnemeError(f"{meta_name!r} is not Mneme file metadata")
        self.file_no = file_no
        self._next_logseg = next_logseg
        pos = _META.size
        for _ in range(pool_count):
            pool_id, created, live = _META_POOL.unpack_from(raw, pos)
            pos += _META_POOL.size
            pool = self.pools.get(pool_id)
            if pool is None:
                raise MnemeError(
                    f"metadata names pool {pool_id} but it was not registered"
                )
            pool.set_state(created, live)

    def flush(self) -> None:
        """Flush every pool, its tables, and the file metadata."""
        for pool in self.pools.values():
            pool.flush()
        parts = [
            _META.pack(_META_MAGIC, self.file_no, self._next_logseg, len(self.pools))
        ]
        for pool_id in sorted(self.pools):
            created, live = self.pools[pool_id].get_state()
            parts.append(_META_POOL.pack(pool_id, created, live))
        meta_name = f"{self.name}.meta"
        meta = (
            self.fs.open(meta_name)
            if self.fs.exists(meta_name)
            else self.fs.create(meta_name)
        )
        meta.write(0, b"".join(parts))

    # -- object operations -------------------------------------------------------

    def _pool_of(self, oid: int) -> Pool:
        logseg = logical_segment(oid)
        pool = self._router.get(logseg)
        if pool is None:
            raise ObjectNotFoundError(oid)
        return pool

    def fetch(self, oid: int) -> bytes:
        """Retrieve an object's bytes."""
        return self._pool_of(oid).fetch(oid)

    def modify(self, oid: int, data: bytes) -> None:
        """Replace an object's bytes, subject to its pool's policies."""
        self._pool_of(oid).modify(oid, data)

    def delete(self, oid: int) -> None:
        """Remove an object (its identifier is never reused)."""
        self._pool_of(oid).delete(oid)

    def reserve(self, oid: int) -> bool:
        """Pin the object's segment in its pool's buffer if resident."""
        pool = self._router.get(logical_segment(oid))
        if pool is None:
            return False
        return pool.reserve(oid)

    def release_reservations(self) -> None:
        """Release the pins taken by :meth:`reserve` in every pool buffer."""
        seen = set()
        for pool in self.pools.values():
            if id(pool.buffer) not in seen:
                pool.buffer.release_reservations()
                seen.add(id(pool.buffer))

    def drop_user_caches(self) -> None:
        """Forget every user-space cache: buffers and auxiliary tables.

        Together with the file system's chill this simulates a fresh
        INQUERY process starting on a cold machine, which is how each of
        the paper's timed runs began.
        """
        seen = set()
        for pool in self.pools.values():
            if id(pool.buffer) not in seen:
                pool.buffer.clear()
                seen.add(id(pool.buffer))
            for table in pool.aux_tables():
                table.drop_cache()

    # -- statistics ------------------------------------------------------------------

    @property
    def files(self) -> List[SimFile]:
        """Every simulated file belonging to this Mneme file."""
        out = [self.main]
        out.extend(self._aux_files)
        meta_name = f"{self.name}.meta"
        if self.fs.exists(meta_name):
            out.append(self.fs.open(meta_name))
        return out

    @property
    def total_size(self) -> int:
        """Bytes across the main, auxiliary, and meta files (Table 1)."""
        return sum(f.size for f in self.files)

    @property
    def aux_size(self) -> int:
        """Bytes of auxiliary tables (the footnote's 512 KB for TIPSTER)."""
        return sum(f.size for f in self._aux_files)


class MnemeStore:
    """Open files and the global identifier space.

    "Multiple files may be open simultaneously ... so object identifiers
    are mapped to globally unique identifiers when the objects are
    accessed."
    """

    def __init__(self, fs: SimFileSystem):
        self.fs = fs
        self._files: Dict[str, MnemeFile] = {}
        self._by_no: Dict[int, MnemeFile] = {}
        self._next_file_no = 0

    def open_file(
        self, name: str, wal=None, retry: Optional[RetryPolicy] = None
    ) -> MnemeFile:
        """Open (or create) a Mneme file and assign it a file number.

        Callers register pools on the returned file and then call its
        :meth:`MnemeFile.load` to restore persisted state.
        """
        if name in self._files:
            return self._files[name]
        file = MnemeFile(self.fs, name, self._next_file_no, wal=wal, retry=retry)
        self._next_file_no += 1
        self._files[name] = file
        self._by_no[file.file_no] = file
        return file

    def file(self, name: str) -> MnemeFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(name) from None

    def global_id(self, file: MnemeFile, oid: int) -> int:
        """Map a file-local identifier to its global identifier."""
        return make_global(file.file_no, oid)

    def fetch(self, gid: int) -> bytes:
        """Retrieve an object by global identifier."""
        file_no, oid = split_global(gid)
        file = self._by_no.get(file_no)
        if file is None:
            raise ObjectNotFoundError(gid)
        return file.fetch(oid)

    def reserve(self, gid: int) -> bool:
        """Pin an object's segment by global identifier, if resident."""
        file_no, oid = split_global(gid)
        file = self._by_no.get(file_no)
        return file.reserve(oid) if file is not None else False

    def release_reservations(self) -> None:
        for file in self._files.values():
            file.release_reservations()

    def flush(self) -> None:
        for file in self._files.values():
            file.flush()
