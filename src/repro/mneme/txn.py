"""Transactions over the object store — the paper's other future work.

"The current version of Mneme is a prototype and does not provide all of
the services one might expect from a mature data management system, such
as concurrency control and transaction support.  However, the nature of
access to the data we are supporting here is predominately read-only.
We expect that the addition of these services would not introduce
excessive overhead."  This module implements those services so the claim
can be measured (see ``benchmarks/bench_extension_txn.py``).

Design: strict two-phase locking at object granularity with a *no-wait*
deadlock-avoidance policy (a conflicting request aborts immediately —
simple, deterministic, and common in early object stores), deferred
updates (writes apply at commit, so abort is trivially a no-op on the
store), and durability through the file's write-ahead log when one is
attached.  Reads see the transaction's own pending writes.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

# The transaction error classes live in the shared hierarchy so the
# public-API boundary catches one base class; re-exported here because
# this module defined them originally.
from ..errors import LockConflictError, TransactionAborted, TransactionError
from .store import MnemeFile


SHARED, EXCLUSIVE = "S", "X"


@dataclass
class _Lock:
    mode: str
    holders: Set[int] = field(default_factory=set)


class LockManager:
    """Object-granularity S/X locks with no-wait conflict handling."""

    def __init__(self):
        self._locks: Dict[int, _Lock] = {}
        self.conflicts = 0
        self.acquisitions = 0

    def acquire(self, txn_id: int, oid: int, mode: str) -> None:
        """Grant the lock or raise :class:`LockConflictError`.

        Re-acquisition and S->X upgrade by the sole holder succeed.
        """
        lock = self._locks.get(oid)
        self.acquisitions += 1
        if lock is None:
            self._locks[oid] = _Lock(mode=mode, holders={txn_id})
            return
        if lock.holders == {txn_id}:
            if mode == EXCLUSIVE:
                lock.mode = EXCLUSIVE  # upgrade (or already exclusive)
            return
        if mode == SHARED and lock.mode == SHARED:
            lock.holders.add(txn_id)
            return
        self.conflicts += 1
        holder = next(iter(lock.holders - {txn_id}), next(iter(lock.holders)))
        raise LockConflictError(oid, holder, txn_id)

    def release_all(self, txn_id: int) -> None:
        """Drop every lock the transaction holds (commit/abort time)."""
        for oid in [oid for oid, lock in self._locks.items() if txn_id in lock.holders]:
            lock = self._locks[oid]
            lock.holders.discard(txn_id)
            if not lock.holders:
                del self._locks[oid]

    def holding(self, txn_id: int) -> List[int]:
        return [oid for oid, lock in self._locks.items() if txn_id in lock.holders]


class Transaction:
    """One unit of atomic, isolated work against a Mneme file.

    Obtained from :meth:`TransactionManager.begin`; usable as a context
    manager (commits on clean exit, aborts on exception).
    """

    def __init__(self, manager: "TransactionManager", txn_id: int):
        self._manager = manager
        self.txn_id = txn_id
        self._writes: Dict[int, bytes] = {}
        self._creates: List[Tuple[int, bytes]] = []  # (pool id, data) applied order
        self.state = "active"

    # -- operations ----------------------------------------------------------

    def read(self, oid: int) -> bytes:
        """Read an object under a shared lock (sees own pending writes)."""
        self._check_active()
        self._lock(oid, SHARED)
        if oid in self._writes:
            return self._writes[oid]
        return self._manager.mfile.fetch(oid)

    def write(self, oid: int, data: bytes) -> None:
        """Stage a modification under an exclusive lock (applies at commit)."""
        self._check_active()
        self._lock(oid, EXCLUSIVE)
        self._writes[oid] = bytes(data)

    def create(self, pool_id: int, data: bytes) -> int:
        """Create an object immediately, exclusively locked until commit.

        Identifier allocation cannot be deferred (later operations need
        the id); if the transaction aborts, the object is deleted again.
        """
        self._check_active()
        oid = self._manager.mfile.pool(pool_id).create(data)
        self._manager.locks.acquire(self.txn_id, oid, EXCLUSIVE)
        self._creates.append((pool_id, oid))
        return oid

    # -- outcome ---------------------------------------------------------------

    def commit(self) -> None:
        """Apply staged writes, flush durably, release locks."""
        self._check_active()
        for oid, data in self._writes.items():
            self._manager.mfile.modify(oid, data)
        self._manager.mfile.flush()
        self.state = "committed"
        self._manager._finish(self)

    def abort(self) -> None:
        """Discard staged writes and undo creates."""
        if self.state != "active":
            return
        for _pool_id, oid in reversed(self._creates):
            self._manager.mfile.delete(oid)
        self._writes.clear()
        self.state = "aborted"
        self._manager._finish(self)

    # -- plumbing -----------------------------------------------------------------

    def _lock(self, oid: int, mode: str) -> None:
        try:
            self._manager.locks.acquire(self.txn_id, oid, mode)
        except LockConflictError:
            self.abort()
            raise

    def _check_active(self) -> None:
        if self.state != "active":
            raise TransactionAborted(
                f"transaction {self.txn_id} is {self.state}"
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False


class TransactionManager:
    """Hands out transactions over one Mneme file."""

    def __init__(self, mfile: MnemeFile):
        self.mfile = mfile
        self.locks = LockManager()
        self._next_id = 1
        self.active: Dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        txn = Transaction(self, self._next_id)
        self._next_id += 1
        self.active[txn.txn_id] = txn
        return txn

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
        if txn.state == "committed":
            self.committed += 1
        else:
            self.aborted += 1
