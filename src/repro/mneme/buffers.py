"""Extensible buffer framework.

Mneme supports "sophisticated buffer management ... by supplying a number
of standard buffer operations (e.g., allocate and free) in a system
defined format.  How these operations are implemented determines the
policies used to manage the buffer.  A pool attaches to a buffer in order
to make use of the buffer" and supplies call-back routines such as a
modified segment save routine.

:class:`Buffer` defines that operation suite.  :class:`LRUBuffer` is the
policy the integrated system uses for all three pools ("least recently
used with a slight optimization"): entries may be *reserved* — pinned in
place — which is how the query-tree scan protects already-resident
objects from a bad replacement choice.  :class:`NullBuffer` retains
nothing and models the "Mneme, No Cache" configuration.

Buffers are sized in bytes, not entries, because the segments they hold
range from 4 KB (small pool) to multi-megabyte large objects.
"""

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from ..errors import BufferError_

#: Signature of the modified-segment save callback a pool supplies when it
#: attaches: ``save(key, segment)`` writes the segment back to its file.
SaveCallback = Callable[[Hashable, object], None]


@dataclass
class BufferStats:
    """Reference counting for one buffer (Table 6's Refs/Hits/Rate)."""

    refs: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.refs if self.refs else 0.0

    def copy(self) -> "BufferStats":
        return BufferStats(self.refs, self.hits, self.insertions, self.evictions)

    def __sub__(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(
            self.refs - other.refs,
            self.hits - other.hits,
            self.insertions - other.insertions,
            self.evictions - other.evictions,
        )


class Buffer(ABC):
    """The standard buffer operation suite pools program against."""

    def __init__(self) -> None:
        self.stats = BufferStats()
        self._savers: Dict[int, SaveCallback] = {}

    def attach(self, pool_id: int, save: SaveCallback) -> None:
        """Register a pool's modified-segment save callback.

        Keys inserted by a pool must be ``(pool_id, ...)`` tuples so the
        buffer can route dirty evictions back to the owning pool; this is
        what lets several pools share one buffer (the split-buffer
        ablation) without confusion.
        """
        self._savers[pool_id] = save

    def _save(self, key: Hashable, segment: object) -> None:
        pool_id = key[0] if isinstance(key, tuple) else None
        saver = self._savers.get(pool_id)
        if saver is None:
            raise BufferError_(
                f"dirty segment {key!r} evicted but no pool attached for it"
            )
        saver(key, segment)

    @abstractmethod
    def lookup(self, key: Hashable) -> Optional[object]:
        """Return the resident segment or ``None``; counts a reference."""

    @abstractmethod
    def resident(self, key: Hashable) -> bool:
        """Whether the segment is resident, without stats or LRU effects."""

    @abstractmethod
    def insert(self, key: Hashable, segment: object, size: int, dirty: bool = False) -> None:
        """Make a segment resident (may evict others per policy)."""

    @abstractmethod
    def mark_dirty(self, key: Hashable) -> None:
        """Flag a resident segment as modified."""

    @abstractmethod
    def take(self, key: Hashable) -> Optional[object]:
        """Remove and return the resident segment, or ``None``.

        Ownership transfers to the caller (no save-callback fires even if
        the segment was dirty); pools use this when adopting a buffered
        segment as their open segment, so a stale disk copy is never read
        over fresher buffered state.
        """

    @abstractmethod
    def reserve(self, key: Hashable) -> bool:
        """Pin the segment if resident; returns whether it was."""

    @abstractmethod
    def release_reservations(self) -> None:
        """Drop every pin taken by :meth:`reserve`."""

    @abstractmethod
    def flush(self) -> None:
        """Write back every dirty segment (entries stay resident)."""

    @abstractmethod
    def clear(self) -> None:
        """Write back dirty segments and empty the buffer."""


class LRUBuffer(Buffer):
    """Byte-budgeted least-recently-used buffer with reservations.

    Parameters
    ----------
    capacity_bytes:
        Total size budget.  One over-budget entry is tolerated when
        everything else is reserved, mirroring the paper's preference for
        progress over precision in a read-mostly workload.
    """

    def __init__(self, capacity_bytes: int):
        super().__init__()
        if capacity_bytes < 0:
            raise BufferError_("buffer capacity must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, list]" = OrderedDict()
        # each value is [segment, size, dirty]
        self._reserved: Dict[Hashable, int] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def lookup(self, key: Hashable) -> Optional[object]:
        self.stats.refs += 1
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def peek(self, key: Hashable) -> Optional[object]:
        """Like :meth:`lookup` without stats or LRU effects (tests)."""
        entry = self._entries.get(key)
        return entry[0] if entry else None

    def resident(self, key: Hashable) -> bool:
        return key in self._entries

    def take(self, key: Hashable) -> Optional[object]:
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self._used -= entry[1]
        self._reserved.pop(key, None)
        return entry[0]

    def insert(self, key: Hashable, segment: object, size: int, dirty: bool = False) -> None:
        if key in self._entries:
            old = self._entries[key]
            self._used -= old[1]
            old[0], old[1], old[2] = segment, size, old[2] or dirty
            self._used += size
            self._entries.move_to_end(key)
        else:
            self._entries[key] = [segment, size, dirty]
            self._used += size
            self.stats.insertions += 1
        self._shrink(keep=key)

    def mark_dirty(self, key: Hashable) -> None:
        try:
            self._entries[key][2] = True
        except KeyError:
            raise BufferError_(f"cannot mark absent segment {key!r} dirty") from None

    def reserve(self, key: Hashable) -> bool:
        if key not in self._entries:
            return False
        self._reserved[key] = self._reserved.get(key, 0) + 1
        return True

    def release_reservations(self) -> None:
        self._reserved.clear()

    def reserved(self, key: Hashable) -> bool:
        return self._reserved.get(key, 0) > 0

    def flush(self) -> None:
        for key, entry in self._entries.items():
            if entry[2]:
                self._save(key, entry[0])
                entry[2] = False

    def clear(self) -> None:
        self.flush()
        self._entries.clear()
        self._reserved.clear()
        self._used = 0

    def _shrink(self, keep: Hashable) -> None:
        """Evict LRU unreserved entries until within the byte budget."""
        while self._used > self.capacity_bytes:
            victim = None
            for key in self._entries:
                if key != keep and self._reserved.get(key, 0) == 0:
                    victim = key
                    break
            if victim is None:
                return  # everything reserved: tolerate overflow
            segment, size, dirty = self._entries.pop(victim)
            if dirty:
                self._save(victim, segment)
            self._used -= size
            self.stats.evictions += 1


class PartitionedBuffer(Buffer):
    """A buffer split into size classes, each with its own LRU space.

    The paper: "We experimented with further partitioning the large
    object buffer, but found the best hit rates were achieved with a
    single buffer of the same total size."  This policy reproduces the
    partitioned side of that experiment: segments at or below
    ``threshold_bytes`` live in one LRU partition, larger segments in
    the other, and neither partition can borrow the other's space.
    It also demonstrates the extensibility of the buffer framework —
    the pool attaches to it exactly as it would to a plain LRU buffer.
    """

    def __init__(self, low_capacity_bytes: int, high_capacity_bytes: int, threshold_bytes: int):
        super().__init__()
        if threshold_bytes < 1:
            raise BufferError_("partition threshold must be positive")
        self.threshold_bytes = threshold_bytes
        self._low = LRUBuffer(low_capacity_bytes)
        self._high = LRUBuffer(high_capacity_bytes)
        self._side: Dict[Hashable, LRUBuffer] = {}

    def attach(self, pool_id: int, save: SaveCallback) -> None:
        super().attach(pool_id, save)
        self._low.attach(pool_id, save)
        self._high.attach(pool_id, save)

    @property
    def partitions(self) -> "tuple[LRUBuffer, LRUBuffer]":
        return self._low, self._high

    def lookup(self, key: Hashable) -> Optional[object]:
        self.stats.refs += 1
        side = self._side.get(key)
        segment = None if side is None else side.peek(key)
        if segment is not None:
            side.lookup(key)  # refresh partition LRU order
            self.stats.hits += 1
            return segment
        return None

    def resident(self, key: Hashable) -> bool:
        side = self._side.get(key)
        return side is not None and side.resident(key)

    def take(self, key: Hashable) -> Optional[object]:
        side = self._side.pop(key, None)
        return side.take(key) if side is not None else None

    def insert(self, key: Hashable, segment: object, size: int, dirty: bool = False) -> None:
        side = self._low if size <= self.threshold_bytes else self._high
        previous = self._side.get(key)
        if previous is not None and previous is not side:
            previous.take(key)
        self._side[key] = side
        side.insert(key, segment, size, dirty)
        self._prune_sides()

    def mark_dirty(self, key: Hashable) -> None:
        side = self._side.get(key)
        if side is None or not side.resident(key):
            raise BufferError_(f"cannot mark absent segment {key!r} dirty")
        side.mark_dirty(key)

    def reserve(self, key: Hashable) -> bool:
        side = self._side.get(key)
        return side.reserve(key) if side is not None else False

    def release_reservations(self) -> None:
        self._low.release_reservations()
        self._high.release_reservations()

    def flush(self) -> None:
        self._low.flush()
        self._high.flush()

    def clear(self) -> None:
        self._low.clear()
        self._high.clear()
        self._side.clear()

    def _prune_sides(self) -> None:
        """Drop routing entries for segments the partitions evicted."""
        if len(self._side) > 2 * (len(self._low) + len(self._high) + 1):
            self._side = {
                key: side for key, side in self._side.items() if side.resident(key)
            }


class NullBuffer(Buffer):
    """A buffer that retains nothing: the "Mneme, No Cache" policy.

    Lookups always miss; inserts of clean segments are dropped, inserts
    of dirty segments are saved immediately through the pool callback so
    no modification is ever lost.
    """

    def lookup(self, key: Hashable) -> Optional[object]:
        self.stats.refs += 1
        return None

    def resident(self, key: Hashable) -> bool:
        return False

    def take(self, key: Hashable) -> Optional[object]:
        return None

    def insert(self, key: Hashable, segment: object, size: int, dirty: bool = False) -> None:
        if dirty:
            self._save(key, segment)

    def mark_dirty(self, key: Hashable) -> None:
        raise BufferError_("NullBuffer holds no segments to dirty")

    def reserve(self, key: Hashable) -> bool:
        return False

    def release_reservations(self) -> None:
        return None

    def flush(self) -> None:
        return None

    def clear(self) -> None:
        return None
