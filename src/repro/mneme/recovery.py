"""Write-ahead redo logging and restart recovery.

The paper: "The current version of Mneme is a prototype and does not
provide all of the services one might expect from a mature data
management system, such as concurrency control and transaction support.
... For future work we plan to implement some of the standard data
management services not currently provided by Mneme and verify [that
they would not introduce excessive overhead]."  This module implements
the recovery half of that future work so the claim can be measured
(see the update-extension benchmark).

Every segment write is first appended to a redo log with a CRC; a torn
or corrupted tail record (a crash mid-write) is detected and ignored at
recovery, and every complete record is idempotently replayed onto the
main file.  :meth:`RedoLog.checkpoint` truncates the log once the main
file is known durable.
"""

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import RecoveryError
from ..simdisk import SimFile

_REC = struct.Struct("<4sQII")  # magic, target offset, length, payload CRC
_REC_MAGIC = b"MWAL"

#: Sentinel target offset marking an epoch-commit record.  No physical
#: write can target it (SimFile offsets are far smaller), so ordinary
#: replay recognises and skips markers unambiguously.
EPOCH_MARKER_OFFSET = (1 << 64) - 1
_EPOCH_PAYLOAD = struct.Struct("<Q")


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    replayed: int = 0
    torn_tail: bool = False
    bytes_replayed: int = 0
    #: Highest epoch-commit marker honoured by the replay (0 = none).
    epoch: int = 0
    #: Complete records discarded because they follow the last marker
    #: (only :func:`recover_to_epoch` discards; plain replay leaves 0).
    discarded: int = 0


class RedoLog:
    """An append-only redo log of physical segment writes."""

    def __init__(self, file: SimFile):
        self._file = file
        self._end = file.size

    @property
    def size(self) -> int:
        return self._end

    def log_write(self, target_offset: int, data: bytes) -> None:
        """Record that ``data`` is about to be written at ``target_offset``."""
        record = _REC.pack(_REC_MAGIC, target_offset, len(data), zlib.crc32(data))
        self._file.write(self._end, record + data)
        self._end += _REC.size + len(data)

    def log_epoch(self, epoch: int) -> None:
        """Append an epoch-commit marker: every record before it belongs
        to a fully published epoch.  Markers ride the ordinary record
        framing (CRC included) so torn-tail detection covers them too.
        """
        self.log_write(EPOCH_MARKER_OFFSET, _EPOCH_PAYLOAD.pack(epoch))

    def checkpoint(self) -> None:
        """Discard the log: the main file is durable up to this point."""
        self._file.truncate(0)
        self._end = 0

    def latest_for(self, target_offset: int) -> "Optional[bytes]":
        """The most recent complete logged payload for one main-file offset.

        This is the read-repair source: when a segment read fails
        verification, the last copy the WAL logged for that offset is
        known good (each record carries its own CRC).  Returns ``None``
        if the log holds no complete record for the offset — e.g. after
        a checkpoint, or when the matching record itself is torn.
        """
        found: Optional[bytes] = None
        for offset, data in self.records()[0]:
            if offset == target_offset:
                found = data
        return found

    def records(self) -> "Tuple[List[Tuple[int, bytes]], bool]":
        """Parse the log.

        Returns
        -------
        (records, torn):
            The complete (offset, data) records in order, and whether a
            torn/corrupt tail was detected (anything after a torn record
            is untrusted and discarded).
        """
        out: List[Tuple[int, bytes]] = []
        pos = 0
        size = self._file.size
        while pos + _REC.size <= size:
            header = self._file.read(pos, _REC.size)
            magic, offset, length, crc = _REC.unpack(header)
            if magic != _REC_MAGIC:
                return out, True
            if pos + _REC.size + length > size:
                return out, True  # torn: payload missing
            data = self._file.read(pos + _REC.size, length)
            if zlib.crc32(data) != crc:
                return out, True  # torn: payload corrupt
            out.append((offset, data))
            pos += _REC.size + length
        return out, pos != size


def recover(log: RedoLog, main: SimFile) -> RecoveryReport:
    """Replay the redo log onto ``main`` (idempotent) and checkpoint.

    Raises
    ------
    RecoveryError
        If a record targets an offset beyond what replay can produce
        (the log does not belong to this file).
    """
    records, torn = log.records()
    report = RecoveryReport(torn_tail=torn)
    for offset, data in records:
        if offset == EPOCH_MARKER_OFFSET:
            (report.epoch,) = _EPOCH_PAYLOAD.unpack(data)
            continue
        if offset > main.size:
            raise RecoveryError(
                f"redo record targets offset {offset} past EOF {main.size}; "
                "log does not match this file"
            )
        main.write(offset, data)
        report.replayed += 1
        report.bytes_replayed += len(data)
    log.checkpoint()
    return report


def recover_to_epoch(log: RedoLog, main: SimFile) -> RecoveryReport:
    """Replay only records covered by a complete epoch-commit marker.

    The continuous-ingest crash contract: a batch's segment writes hit
    the log first, the epoch marker lands after the whole batch, so a
    crash at *any* byte of the log replays to the last fully published
    epoch — never a half-published one.  Complete records after the
    final marker (a batch that was cut mid-publish) are discarded, as
    is everything after a torn record.  With no marker in the log,
    nothing replays and the main file stays at the previous epoch.
    """
    records, torn = log.records()
    report = RecoveryReport(torn_tail=torn)
    committed = 0
    for i, (offset, data) in enumerate(records):
        if offset == EPOCH_MARKER_OFFSET:
            committed = i + 1
            (report.epoch,) = _EPOCH_PAYLOAD.unpack(data)
    report.discarded = len(records) - committed
    for offset, data in records[:committed]:
        if offset == EPOCH_MARKER_OFFSET:
            continue
        if offset > main.size:
            raise RecoveryError(
                f"redo record targets offset {offset} past EOF {main.size}; "
                "log does not match this file"
            )
        main.write(offset, data)
        report.replayed += 1
        report.bytes_replayed += len(data)
    log.checkpoint()
    return report
