"""Object pools: the policy layer of the store.

"Objects are also logically grouped into pools, where a pool defines a
number of management policies for the objects contained in the pool, such
as how large the physical segments are, how the objects are laid out in a
physical segment, how objects are located within a file, and how objects
are created."  Pools are Mneme's primary extensibility mechanism; the
integrated system of the paper defines three:

* :class:`SmallObjectPool` — inverted lists of at most 12 bytes in fixed
  16-byte slots, one whole logical segment per 4 KB physical segment;
* :class:`MediumObjectPool` — lists up to 4 KB packed into 8 KB physical
  segments (the disk transfer block size);
* :class:`LargeObjectPool` — every list in its own physical segment of
  exactly the object's size.

Each pool attaches to a buffer; fetches go through the buffer, and dirty
segments are written back through the pool's save callback — the
"modified segment save routine" of the paper's buffer framework.
"""

from typing import Dict, Iterable, Optional, Tuple

from ..errors import ObjectNotFoundError, PoolError
from .buffers import Buffer, NullBuffer
from .ids import LOGICAL_SEGMENT_OBJECTS, logical_segment, oid_for, slot_in_segment
from .segment import (
    SMALL_OBJECT_MAX,
    SMALL_SEGMENT_BYTES,
    DirectorySegment,
    FixedSlotSegment,
)
from .tables import TOMBSTONE

#: Default physical segment size of the medium pool: the disk transfer block.
MEDIUM_SEGMENT_BYTES = 8192

#: Largest object the medium pool accepts (larger lists go to the large pool).
MEDIUM_OBJECT_MAX = 4096


class Pool:
    """Common machinery: logical segment ownership and object ordinals.

    A pool acquires logical segments from its file one at a time and
    fills their 255 slots sequentially, so an object's pool-local
    *ordinal* (its creation rank) is computable from its id — this is
    what keeps the auxiliary tables compact arrays.
    """

    def __init__(self, file_services, pool_id: int, name: str):
        self.file = file_services
        self.pool_id = pool_id
        self.name = name
        self.buffer: Buffer = NullBuffer()
        self.buffer.attach(pool_id, self._save_segment)
        self.objects_created = 0
        self.live_objects = 0
        self.fetches = 0
        self._lsegs = file_services.make_table(f"{name}.lsegs", "<I")
        self._ls_ordinal: Dict[int, int] = {
            entry[0]: ordinal for ordinal, entry in enumerate(self._lsegs)
        }

    # -- buffer attachment -------------------------------------------------

    def attach_buffer(self, buffer: Buffer) -> None:
        """Attach this pool to a buffer (replacing the default NullBuffer)."""
        self.buffer = buffer
        buffer.attach(self.pool_id, self._save_segment)

    # -- id plumbing ---------------------------------------------------------

    def owns_logseg(self, logseg: int) -> bool:
        return logseg in self._ls_ordinal

    def logsegs(self) -> Iterable[int]:
        return list(self._ls_ordinal)

    def _allocate_oid(self) -> int:
        slot = self.objects_created % LOGICAL_SEGMENT_OBJECTS
        if slot == 0:
            global_ls = self.file.allocate_logseg(self.pool_id)
            self._ls_ordinal[global_ls] = self._lsegs.append(global_ls)
        last_ls = self._last_logseg()
        self.objects_created += 1
        self.live_objects += 1
        return oid_for(last_ls, slot)

    def _last_logseg(self) -> int:
        return self._lsegs.get(len(self._lsegs) - 1)[0]

    def _ordinal_of(self, oid: int) -> int:
        """Pool-local creation rank of ``oid``."""
        logseg = logical_segment(oid)
        try:
            ls_ord = self._ls_ordinal[logseg]
        except KeyError:
            raise ObjectNotFoundError(oid) from None
        ordinal = ls_ord * LOGICAL_SEGMENT_OBJECTS + slot_in_segment(oid)
        if ordinal >= self.objects_created:
            raise ObjectNotFoundError(oid)
        return ordinal

    # -- interface pools must implement --------------------------------------

    def create(self, data: bytes) -> int:
        raise NotImplementedError

    def fetch(self, oid: int) -> bytes:
        raise NotImplementedError

    def modify(self, oid: int, data: bytes) -> None:
        raise NotImplementedError

    def delete(self, oid: int) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def _save_segment(self, key, segment) -> None:
        raise NotImplementedError

    def aux_tables(self) -> list:
        """The pool's auxiliary tables (subclasses extend)."""
        return [self._lsegs]

    def scan_references(self, data: bytes) -> Tuple[int, ...]:
        """Object ids stored inside ``data``.

        Pools must be able to locate identifiers in their objects (Mneme
        needs this e.g. for garbage collection).  Plain byte objects hold
        none; subclasses with inter-object references override this.
        """
        return ()

    # -- persistence of pool progress ----------------------------------------

    def get_state(self) -> Tuple[int, int]:
        """(objects_created, live_objects) — persisted by the store meta."""
        return self.objects_created, self.live_objects

    def set_state(self, objects_created: int, live_objects: int) -> None:
        self.objects_created = objects_created
        self.live_objects = live_objects


class SmallObjectPool(Pool):
    """Fixed 16-byte slots; one logical segment per 4 KB physical segment."""

    def __init__(self, file_services, pool_id: int, name: str = "small"):
        super().__init__(file_services, pool_id, name)
        self._segs = file_services.make_table(f"{name}.segs", "<QI")
        self._open: Optional[FixedSlotSegment] = None
        self._open_ordinal = -1

    @property
    def max_object_bytes(self) -> int:
        return SMALL_OBJECT_MAX

    def aux_tables(self) -> list:
        return super().aux_tables() + [self._segs]

    def create(self, data: bytes) -> int:
        if len(data) > SMALL_OBJECT_MAX:
            raise PoolError(
                f"small pool holds at most {SMALL_OBJECT_MAX} bytes, got {len(data)}"
            )
        oid = self._allocate_oid()
        slot = slot_in_segment(oid)
        if slot == 0:
            self._flush_open()
            self._open = FixedSlotSegment(self.pool_id, logical_segment(oid))
            self._open_ordinal = self._segs.append(0, SMALL_SEGMENT_BYTES)
        elif self._open is None:
            # Resume a partially filled final segment (after flush/reopen).
            self._load_open()
        self._open.put(slot, data)
        return oid

    def fetch(self, oid: int) -> bytes:
        self.fetches += 1
        ordinal = self._ordinal_of(oid)
        seg_ordinal = ordinal // LOGICAL_SEGMENT_OBJECTS
        segment = self._segment(seg_ordinal)
        try:
            return segment.get(slot_in_segment(oid))
        except PoolError:
            raise ObjectNotFoundError(oid) from None

    def modify(self, oid: int, data: bytes) -> None:
        if len(data) > SMALL_OBJECT_MAX:
            raise PoolError(
                f"small object cannot grow past {SMALL_OBJECT_MAX} bytes"
            )
        ordinal = self._ordinal_of(oid)
        seg_ordinal = ordinal // LOGICAL_SEGMENT_OBJECTS
        segment = self._segment(seg_ordinal)
        slot = slot_in_segment(oid)
        try:
            segment.get(slot)
        except PoolError:
            raise ObjectNotFoundError(oid) from None
        segment.put(slot, data)
        self._after_modify(seg_ordinal, segment)

    def delete(self, oid: int) -> None:
        ordinal = self._ordinal_of(oid)
        seg_ordinal = ordinal // LOGICAL_SEGMENT_OBJECTS
        segment = self._segment(seg_ordinal)
        slot = slot_in_segment(oid)
        try:
            segment.get(slot)
        except PoolError:
            raise ObjectNotFoundError(oid) from None
        segment.clear(slot)
        self.live_objects -= 1
        self._after_modify(seg_ordinal, segment)

    def reserve(self, oid: int) -> bool:
        """Pin the object's segment in the buffer if it is resident."""
        ordinal = self._ordinal_of(oid)
        return self.buffer.reserve((self.pool_id, ordinal // LOGICAL_SEGMENT_OBJECTS))

    def flush(self) -> None:
        self._flush_open()
        self.buffer.flush()
        self._segs.flush()
        self._lsegs.flush()

    # -- internals -----------------------------------------------------------

    def _segment(self, seg_ordinal: int) -> FixedSlotSegment:
        if seg_ordinal == self._open_ordinal and self._open is not None:
            return self._open
        key = (self.pool_id, seg_ordinal)
        segment = self.buffer.lookup(key)
        if segment is None:
            offset, length = self._segs.get(seg_ordinal)
            segment = FixedSlotSegment.from_bytes(self.file.read_segment(offset, length))
            self.buffer.insert(key, segment, length)
        return segment

    def _after_modify(self, seg_ordinal: int, segment: FixedSlotSegment) -> None:
        if seg_ordinal == self._open_ordinal:
            return  # written at flush
        key = (self.pool_id, seg_ordinal)
        if self.buffer.resident(key):
            self.buffer.mark_dirty(key)
        else:
            self.buffer.insert(key, segment, segment.byte_size, dirty=True)

    def _flush_open(self) -> None:
        """Write the open segment out and close it."""
        if self._open is None:
            return
        offset, _length = self._segs.get(self._open_ordinal)
        data = self._open.to_bytes()
        if offset == 0:
            offset = self.file.append_segment(data, align=SMALL_SEGMENT_BYTES)
            self._segs.set(self._open_ordinal, offset, len(data))
        else:
            self.file.write_segment(offset, data)
        self._open = None
        self._open_ordinal = -1

    def _load_open(self) -> None:
        """Re-adopt the last (partially filled) segment for more creates.

        A buffered copy takes precedence over the disk copy — it may
        carry modifications the buffer has not written back yet.
        """
        seg_ordinal = len(self._segs) - 1
        segment = self.buffer.take((self.pool_id, seg_ordinal))
        if segment is None:
            offset, length = self._segs.get(seg_ordinal)
            if offset == 0:
                raise PoolError("last small segment was never written")
            segment = FixedSlotSegment.from_bytes(self.file.read_segment(offset, length))
        self._open = segment
        self._open_ordinal = seg_ordinal

    def _save_segment(self, key, segment) -> None:
        seg_ordinal = key[1]
        offset, _length = self._segs.get(seg_ordinal)
        self.file.write_segment(offset, segment.to_bytes())


class MediumObjectPool(Pool):
    """Objects of 13 bytes to 4 KB packed into 8 KB physical segments.

    "The physical segment size is based on the disk I/O block size and a
    desire to keep the segments relatively small so as to reduce the
    number of unused objects retrieved with each segment."
    """

    def __init__(
        self,
        file_services,
        pool_id: int,
        name: str = "medium",
        segment_bytes: int = MEDIUM_SEGMENT_BYTES,
        max_object_bytes: int = MEDIUM_OBJECT_MAX,
    ):
        super().__init__(file_services, pool_id, name)
        if max_object_bytes + 64 > segment_bytes:
            raise PoolError("segment size too small for the largest medium object")
        self.segment_bytes = segment_bytes
        self.max_object_bytes = max_object_bytes
        self._segs = file_services.make_table(f"{name}.segs", "<QI")
        self._omap = file_services.make_table(f"{name}.omap", "<I")
        self._open: Optional[DirectorySegment] = None
        self._open_ordinal = -1

    def aux_tables(self) -> list:
        return super().aux_tables() + [self._segs, self._omap]

    def create(self, data: bytes) -> int:
        if len(data) > self.max_object_bytes:
            raise PoolError(
                f"medium pool holds at most {self.max_object_bytes} bytes,"
                f" got {len(data)}"
            )
        oid = self._allocate_oid()
        if self._open is None:
            self._try_adopt_last(len(data))
        if self._open is not None and (
            self._open.byte_size + 12 + len(data) > self.segment_bytes
        ):
            self._flush_open()
        if self._open is None:
            self._new_open_segment()
        self._open.put(oid, data)
        self._omap.append(self._open_ordinal)
        return oid

    def fetch(self, oid: int) -> bytes:
        self.fetches += 1
        seg_ordinal = self._seg_ordinal_of(oid)
        segment = self._segment(seg_ordinal)
        try:
            return segment.get(oid)
        except PoolError:
            raise ObjectNotFoundError(oid) from None

    def modify(self, oid: int, data: bytes) -> None:
        if len(data) > self.max_object_bytes:
            raise PoolError(
                f"modified object of {len(data)} bytes exceeds the medium"
                f" pool limit {self.max_object_bytes}"
            )
        seg_ordinal = self._seg_ordinal_of(oid)
        segment = self._segment(seg_ordinal)
        if oid not in segment:
            raise ObjectNotFoundError(oid)
        old = segment.get(oid)
        segment.put(oid, data)
        if segment.byte_size > self.segment_bytes:
            segment.put(oid, old)  # roll back: it no longer fits in place
            raise PoolError(
                f"object {oid} grown to {len(data)} bytes no longer fits its"
                " 8 KB segment; store it via the large pool or a linked object"
            )
        self._after_modify(seg_ordinal, segment)

    def delete(self, oid: int) -> None:
        seg_ordinal = self._seg_ordinal_of(oid)
        segment = self._segment(seg_ordinal)
        try:
            segment.remove(oid)
        except PoolError:
            raise ObjectNotFoundError(oid) from None
        self._omap.set(self._ordinal_of(oid), TOMBSTONE)
        self.live_objects -= 1
        self._after_modify(seg_ordinal, segment)

    def reserve(self, oid: int) -> bool:
        try:
            seg_ordinal = self._seg_ordinal_of(oid)
        except ObjectNotFoundError:
            return False
        if seg_ordinal == self._open_ordinal:
            return True
        return self.buffer.reserve((self.pool_id, seg_ordinal))

    def flush(self) -> None:
        self._flush_open()
        self.buffer.flush()
        self._segs.flush()
        self._omap.flush()
        self._lsegs.flush()

    # -- internals -----------------------------------------------------------

    def _seg_ordinal_of(self, oid: int) -> int:
        (seg_ordinal,) = self._omap.get(self._ordinal_of(oid))
        if seg_ordinal == TOMBSTONE:
            raise ObjectNotFoundError(oid)
        return seg_ordinal

    def _segment(self, seg_ordinal: int) -> DirectorySegment:
        if seg_ordinal == self._open_ordinal and self._open is not None:
            return self._open
        key = (self.pool_id, seg_ordinal)
        segment = self.buffer.lookup(key)
        if segment is None:
            offset, length = self._segs.get(seg_ordinal)
            segment = DirectorySegment.from_bytes(self.file.read_segment(offset, length))
            self.buffer.insert(key, segment, length)
        return segment

    def _new_open_segment(self) -> None:
        self._open = DirectorySegment(self.pool_id)
        self._open_ordinal = self._segs.append(0, self.segment_bytes)

    def _flush_open(self) -> None:
        """Write the open segment out (padded to full size) and close it."""
        if self._open is None:
            return
        data = self._open.to_bytes(pad_to=self.segment_bytes)
        offset, _length = self._segs.get(self._open_ordinal)
        if offset == 0:
            offset = self.file.append_segment(data, align=min(self.segment_bytes, 8192))
            self._segs.set(self._open_ordinal, offset, len(data))
        else:
            self.file.write_segment(offset, data)
        self._open = None
        self._open_ordinal = -1

    def _after_modify(self, seg_ordinal: int, segment: DirectorySegment) -> None:
        if seg_ordinal == self._open_ordinal:
            return
        key = (self.pool_id, seg_ordinal)
        if self.buffer.resident(key):
            self.buffer.mark_dirty(key)
        else:
            self.buffer.insert(key, segment, self.segment_bytes, dirty=True)

    def _save_segment(self, key, segment) -> None:
        seg_ordinal = key[1]
        offset, _length = self._segs.get(seg_ordinal)
        self.file.write_segment(offset, segment.to_bytes(pad_to=self.segment_bytes))

    def _try_adopt_last(self, incoming_bytes: int) -> None:
        """Re-adopt the last written segment if the new object fits it.

        A buffered copy takes precedence over the disk copy — it may
        carry modifications the buffer has not written back yet.  If the
        buffered segment turns out to be too full to adopt, it is
        re-inserted dirty so nothing is lost.
        """
        if not len(self._segs):
            return
        seg_ordinal = len(self._segs) - 1
        key = (self.pool_id, seg_ordinal)
        segment = self.buffer.take(key)
        from_buffer = segment is not None
        if segment is None:
            offset, length = self._segs.get(seg_ordinal)
            if offset == 0:
                return
            segment = DirectorySegment.from_bytes(self.file.read_segment(offset, length))
        if segment.byte_size + 12 + incoming_bytes <= self.segment_bytes:
            self._open = segment
            self._open_ordinal = seg_ordinal
        elif from_buffer:
            self.buffer.insert(key, segment, self.segment_bytes, dirty=True)


class LargeObjectPool(Pool):
    """One object per physical segment of exactly the object's size.

    "A number of inverted lists are so large, it is not reasonable to
    cluster them with other objects in the same physical segment."
    """

    def __init__(self, file_services, pool_id: int, name: str = "large"):
        super().__init__(file_services, pool_id, name)
        self._segs = file_services.make_table(f"{name}.segs", "<QI")
        self._omap = file_services.make_table(f"{name}.omap", "<I")

    def aux_tables(self) -> list:
        return super().aux_tables() + [self._segs, self._omap]

    def create(self, data: bytes) -> int:
        oid = self._allocate_oid()
        segment = DirectorySegment(self.pool_id)
        segment.put(oid, data)
        raw = segment.to_bytes()
        offset = self.file.append_segment(raw, align=8192)
        seg_ordinal = self._segs.append(offset, len(raw))
        self._omap.append(seg_ordinal)
        return oid

    def fetch(self, oid: int) -> bytes:
        self.fetches += 1
        seg_ordinal = self._seg_ordinal_of(oid)
        segment = self._segment(seg_ordinal)
        try:
            return segment.get(oid)
        except PoolError:
            raise ObjectNotFoundError(oid) from None

    def modify(self, oid: int, data: bytes) -> None:
        seg_ordinal = self._seg_ordinal_of(oid)
        offset, length = self._segs.get(seg_ordinal)
        segment = self._segment(seg_ordinal)
        if oid not in segment:
            raise ObjectNotFoundError(oid)
        segment.put(oid, data)
        if segment.byte_size <= length:
            # Fits in place: pad to the original extent.
            self.file.write_segment(offset, segment.to_bytes(pad_to=length))
        else:
            # Grown: relocate the segment; the old extent leaks (the
            # space-management problem the paper describes for updates).
            raw = segment.to_bytes()
            new_offset = self.file.append_segment(raw, align=8192)
            self._segs.set(seg_ordinal, new_offset, len(raw))
        key = (self.pool_id, seg_ordinal)
        self.buffer.insert(key, segment, segment.byte_size)

    def delete(self, oid: int) -> None:
        ordinal = self._ordinal_of(oid)
        seg_ordinal = self._seg_ordinal_of(oid)
        self._omap.set(ordinal, TOMBSTONE)
        self._segs.set(seg_ordinal, 0, 0)  # extent leaks; entry tombstoned
        self.live_objects -= 1

    def reserve(self, oid: int) -> bool:
        try:
            seg_ordinal = self._seg_ordinal_of(oid)
        except ObjectNotFoundError:
            return False
        return self.buffer.reserve((self.pool_id, seg_ordinal))

    def flush(self) -> None:
        self.buffer.flush()
        self._segs.flush()
        self._omap.flush()
        self._lsegs.flush()

    # -- internals -----------------------------------------------------------

    def _seg_ordinal_of(self, oid: int) -> int:
        (seg_ordinal,) = self._omap.get(self._ordinal_of(oid))
        if seg_ordinal == TOMBSTONE:
            raise ObjectNotFoundError(oid)
        return seg_ordinal

    def _segment(self, seg_ordinal: int) -> DirectorySegment:
        key = (self.pool_id, seg_ordinal)
        segment = self.buffer.lookup(key)
        if segment is None:
            offset, length = self._segs.get(seg_ordinal)
            if length == 0:
                raise ObjectNotFoundError(f"segment {seg_ordinal} deleted")
            segment = DirectorySegment.from_bytes(self.file.read_segment(offset, length))
            self.buffer.insert(key, segment, length)
        return segment

    def _save_segment(self, key, segment) -> None:
        seg_ordinal = key[1]
        offset, length = self._segs.get(seg_ordinal)
        self.file.write_segment(offset, segment.to_bytes(pad_to=length))
