"""Garbage collection and file compaction.

Mneme's design requires every pool "to locate for Mneme any identifiers
stored in the objects managed by the pool.  This would be necessary, for
instance, during garbage collection of the persistent store."  This
module supplies that garbage collector — a mark phase driven by the
pools' :meth:`~repro.mneme.pool.Pool.scan_references` and a sweep that
deletes unreachable objects — plus :func:`compact`, which rewrites a
Mneme file without the dead space that deletes, relocated large objects,
and tombstones leave behind (the "holes in the inverted lists" space
problem of the paper's Section 2, solved at the storage layer).
"""

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import ReproError
from .ids import LOGICAL_SEGMENT_OBJECTS, oid_for
from .pool import LargeObjectPool, MediumObjectPool, Pool, SmallObjectPool
from .store import MnemeFile
from .tables import TOMBSTONE


def live_oids(pool: Pool) -> Iterable[int]:
    """Every object id currently live in a pool, in creation order."""
    lsegs = list(pool._lsegs)
    for ordinal in range(pool.objects_created):
        ls_ordinal, slot = divmod(ordinal, LOGICAL_SEGMENT_OBJECTS)
        oid = oid_for(lsegs[ls_ordinal][0], slot)
        if _exists(pool, oid, ordinal):
            yield oid


def _exists(pool: Pool, oid: int, ordinal: int) -> bool:
    if isinstance(pool, (MediumObjectPool, LargeObjectPool)):
        return pool._omap.get(ordinal)[0] != TOMBSTONE
    # Small pool: presence is recorded only in the segment slot.  A
    # corrupt segment counts as absent here; the integrity checker
    # reports it separately.
    try:
        pool.fetch(oid)
        return True
    except ReproError:
        return False


@dataclass
class GCReport:
    """What one mark-sweep pass found and reclaimed."""

    marked: int = 0
    swept: int = 0
    live_by_pool: Dict[str, int] = field(default_factory=dict)
    swept_by_pool: Dict[str, int] = field(default_factory=dict)


def collect(mfile: MnemeFile, roots: Iterable[int]) -> GCReport:
    """Mark objects reachable from ``roots``, delete the rest.

    References are discovered through each owning pool's
    ``scan_references``; a reference may point into any pool of the same
    file.  Objects with no registered owner (never-created ids) in the
    root set raise :class:`~repro.errors.MnemeError`.
    """
    marked: set = set()
    stack: List[int] = [oid for oid in roots if oid]
    while stack:
        oid = stack.pop()
        if oid in marked:
            continue
        marked.add(oid)
        pool = mfile._pool_of(oid)
        for ref in pool.scan_references(pool.fetch(oid)):
            if ref and ref not in marked:
                stack.append(ref)

    report = GCReport(marked=len(marked))
    for pool in mfile.pools.values():
        live = 0
        swept = 0
        for oid in list(live_oids(pool)):
            if oid in marked:
                live += 1
            else:
                pool.delete(oid)
                swept += 1
        report.live_by_pool[pool.name] = live
        report.swept_by_pool[pool.name] = swept
        report.swept += swept
    mfile.flush()
    return report


@dataclass
class CompactionReport:
    """Space accounting for one compaction pass."""

    bytes_before: int = 0
    bytes_after: int = 0
    segments_copied: int = 0
    segments_dropped: int = 0

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after


def compact(mfile: MnemeFile) -> CompactionReport:
    """Rewrite the main file with only the live physical segments.

    Dead space accumulates from relocated large objects (grown past
    their extent), deleted large objects, and alignment slack at former
    end-of-file positions.  Compaction streams every live segment into a
    fresh file in pool-table order, updates the segment tables in place,
    and installs the new file under the old name.  Object identifiers,
    logical segments, and buffered (clean) segment contents all remain
    valid — only file offsets change.
    """
    # Dirty state must be on disk before we read segments back.
    mfile.flush()
    report = CompactionReport(bytes_before=mfile.main.size)

    old_main = mfile.main
    scratch_name = f"{mfile.name}.mn.compact"
    new_main = mfile.fs.create(scratch_name)
    new_main.write(0, b"MNEMEFILE\x00v1\x00\x00\x00\x00")
    new_crcs = {}

    def migrate(pool: Pool, align: int) -> None:
        for seg_ordinal in range(len(pool._segs)):
            offset, length = pool._segs.get(seg_ordinal)
            if length == 0 or offset == 0:
                report.segments_dropped += 1
                continue
            data = old_main.read(offset, length)
            end = new_main.size
            if align > 1 and end % align:
                new_main.write(end, b"\x00" * (align - end % align))
                end = new_main.size
            new_main.write(end, data)
            new_crcs[end] = (length, zlib.crc32(data))
            pool._segs.set(seg_ordinal, end, length)
            report.segments_copied += 1

    for pool in mfile.pools.values():
        if isinstance(pool, SmallObjectPool):
            migrate(pool, 4096)
        elif isinstance(pool, MediumObjectPool):
            migrate(pool, min(pool.segment_bytes, 8192))
        else:
            migrate(pool, 8192)

    old_name = old_main.name
    mfile.fs.remove(old_name)
    mfile.fs.rename(scratch_name, old_name)
    mfile.main = new_main
    # Segment checksums are keyed by offset; every offset just moved.
    mfile._crcs = new_crcs
    if mfile.wal is not None:
        # Redo records target the old layout; the new file is durable as
        # written, so the log restarts empty.
        mfile.wal.checkpoint()
    mfile.flush()
    report.bytes_after = new_main.size
    return report
