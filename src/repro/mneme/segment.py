"""Physical segment layouts.

A physical segment is Mneme's unit of transfer between disk and main
memory; its size is arbitrary and chosen by the pool that owns it.  Two
on-disk layouts cover the three pools of the integrated system:

* :class:`FixedSlotSegment` — the small object pool's layout.  255 fixed
  16-byte slots (a 4-byte size field plus up to 12 data bytes), one whole
  logical segment per 4 KB physical segment, located purely by slot
  arithmetic.  "This greatly simplifies both the indexing strategy used
  to locate these objects in the file and the buffer management strategy
  for these segments."
* :class:`DirectorySegment` — medium and large pools.  A slot directory
  (object id, offset, length) followed by packed object bytes.

Both layouts carry a CRC so failure-injection tests can exercise torn
write detection.
"""

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BadBlockError, PoolError
from .ids import LOGICAL_SEGMENT_OBJECTS

_FIXED_HDR = struct.Struct("<4sHHII")  # magic, pool id, used slots, crc, logseg
_FIXED_MAGIC = b"MSGF"
_DIR_HDR = struct.Struct("<4sHHI")     # magic, pool id, object count, crc
_DIR_ENTRY = struct.Struct("<III")     # oid, offset-in-segment, length
_DIR_MAGIC = b"MSGD"

#: Bytes per small object slot: a 4-byte size field plus 12 data bytes.
SMALL_SLOT_BYTES = 16

#: Largest payload a small slot can hold.
SMALL_OBJECT_MAX = SMALL_SLOT_BYTES - 4

#: Size of a small pool physical segment: one whole logical segment.
SMALL_SEGMENT_BYTES = 4096

_FIXED_SLOTS_SIZE = LOGICAL_SEGMENT_OBJECTS * SMALL_SLOT_BYTES
assert _FIXED_HDR.size + _FIXED_SLOTS_SIZE <= SMALL_SEGMENT_BYTES


@dataclass
class FixedSlotSegment:
    """One small pool segment: 255 fixed slots, one logical segment."""

    pool_id: int
    logseg: int
    #: Slot payloads; ``None`` marks a never-used or deleted slot.
    slots: List[Optional[bytes]] = field(
        default_factory=lambda: [None] * LOGICAL_SEGMENT_OBJECTS
    )

    def get(self, slot: int) -> bytes:
        data = self.slots[slot]
        if data is None:
            raise PoolError(f"slot {slot} of logical segment {self.logseg} is empty")
        return data

    def put(self, slot: int, data: bytes) -> None:
        if len(data) > SMALL_OBJECT_MAX:
            raise PoolError(
                f"{len(data)} bytes exceed small slot payload {SMALL_OBJECT_MAX}"
            )
        self.slots[slot] = bytes(data)

    def clear(self, slot: int) -> None:
        self.slots[slot] = None

    @property
    def used(self) -> int:
        return sum(1 for s in self.slots if s is not None)

    def to_bytes(self) -> bytes:
        body = bytearray()
        for data in self.slots:
            if data is None:
                body += struct.pack("<I", 0xFFFFFFFF)
                body += b"\x00" * SMALL_OBJECT_MAX
            else:
                body += struct.pack("<I", len(data))
                body += data + b"\x00" * (SMALL_OBJECT_MAX - len(data))
        crc = zlib.crc32(bytes(body))
        header = _FIXED_HDR.pack(_FIXED_MAGIC, self.pool_id, self.used, crc, self.logseg)
        payload = header + bytes(body)
        return payload + b"\x00" * (SMALL_SEGMENT_BYTES - len(payload))

    @classmethod
    def from_bytes(cls, data: bytes) -> "FixedSlotSegment":
        magic, pool_id, _used, crc, logseg = _FIXED_HDR.unpack_from(data, 0)
        if magic != _FIXED_MAGIC:
            raise BadBlockError("not a fixed-slot segment")
        body = data[_FIXED_HDR.size:_FIXED_HDR.size + _FIXED_SLOTS_SIZE]
        if zlib.crc32(bytes(body)) != crc:
            raise BadBlockError(f"fixed segment for logseg {logseg} fails CRC")
        segment = cls(pool_id=pool_id, logseg=logseg)
        for slot in range(LOGICAL_SEGMENT_OBJECTS):
            base = slot * SMALL_SLOT_BYTES
            (size,) = struct.unpack_from("<I", body, base)
            if size != 0xFFFFFFFF:
                segment.slots[slot] = bytes(body[base + 4:base + 4 + size])
        return segment

    @property
    def byte_size(self) -> int:
        return SMALL_SEGMENT_BYTES


@dataclass
class DirectorySegment:
    """A directory-addressed segment for medium and large objects."""

    pool_id: int
    objects: Dict[int, bytes] = field(default_factory=dict)  # oid -> payload
    #: Running total of payload bytes, so ``byte_size`` is O(1) — pools
    #: consult it on every create, which made the dataclass-default
    #: recount quadratic over a bulk load.
    _payload_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        self._payload_bytes = sum(len(v) for v in self.objects.values())

    def get(self, oid: int) -> bytes:
        try:
            return self.objects[oid]
        except KeyError:
            raise PoolError(f"object {oid} not in this segment") from None

    def put(self, oid: int, data: bytes) -> None:
        old = self.objects.get(oid)
        if old is not None:
            self._payload_bytes -= len(old)
        self.objects[oid] = bytes(data)
        self._payload_bytes += len(data)

    def remove(self, oid: int) -> None:
        if oid not in self.objects:
            raise PoolError(f"object {oid} not in this segment")
        self._payload_bytes -= len(self.objects[oid])
        del self.objects[oid]

    def __contains__(self, oid: int) -> bool:
        return oid in self.objects

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def byte_size(self) -> int:
        """Serialized size (header + directory + payloads)."""
        return (
            _DIR_HDR.size
            + _DIR_ENTRY.size * len(self.objects)
            + self._payload_bytes
        )

    def to_bytes(self, pad_to: int = 0) -> bytes:
        entries = []
        payload = bytearray()
        base = _DIR_HDR.size + _DIR_ENTRY.size * len(self.objects)
        for oid in sorted(self.objects):
            data = self.objects[oid]
            entries.append(_DIR_ENTRY.pack(oid, base + len(payload), len(data)))
            payload += data
        body = b"".join(entries) + bytes(payload)
        crc = zlib.crc32(body)
        out = _DIR_HDR.pack(_DIR_MAGIC, self.pool_id, len(self.objects), crc) + body
        if pad_to and len(out) < pad_to:
            out += b"\x00" * (pad_to - len(out))
        if pad_to and len(out) > pad_to:
            raise PoolError(
                f"segment of {len(out)} bytes does not fit padded size {pad_to}"
            )
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "DirectorySegment":
        magic, pool_id, count, crc = _DIR_HDR.unpack_from(data, 0)
        if magic != _DIR_MAGIC:
            raise BadBlockError("not a directory segment")
        segment = cls(pool_id=pool_id)
        pos = _DIR_HDR.size
        entries = []
        for _ in range(count):
            entries.append(_DIR_ENTRY.unpack_from(data, pos))
            pos += _DIR_ENTRY.size
        end = max((off + length for _, off, length in entries), default=pos)
        if zlib.crc32(bytes(data[_DIR_HDR.size:end])) != crc:
            raise BadBlockError("directory segment fails CRC")
        for oid, off, length in entries:
            segment.put(oid, data[off:off + length])
        return segment
