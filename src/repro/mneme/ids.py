"""Object identifiers and logical segment arithmetic.

Mneme assigns every object an identifier that is unique within its file.
Identifiers are grouped into **logical segments** of
:data:`LOGICAL_SEGMENT_OBJECTS` (255) objects "to assist in
identification, indexing, and location" — all of the store's auxiliary
tables are keyed by logical segment, which is what keeps them compact
enough to stay permanently cached.

When several files are open at once, a file-local id is mapped to a
**global identifier** by packing a file number above the 28 id bits; the
paper notes the number of simultaneously accessible objects is bounded by
the 2^28 global id space.

Identifier 0 is reserved as the null reference.
"""

from ..errors import InvalidIdentifierError

#: Objects per logical segment.
LOGICAL_SEGMENT_OBJECTS = 255

#: Bits of a file-local object identifier.
ID_BITS = 28

#: Exclusive upper bound of file-local identifiers.
MAX_LOCAL_ID = 1 << ID_BITS

#: The null object reference.
NULL_ID = 0


def check_local_id(oid: int) -> int:
    """Validate a file-local object id, returning it unchanged."""
    if not isinstance(oid, int) or oid <= NULL_ID or oid >= MAX_LOCAL_ID:
        raise InvalidIdentifierError(f"bad object id {oid!r}")
    return oid


def logical_segment(oid: int) -> int:
    """Logical segment number holding ``oid``."""
    return (check_local_id(oid) - 1) // LOGICAL_SEGMENT_OBJECTS


def slot_in_segment(oid: int) -> int:
    """Slot of ``oid`` within its logical segment (0..254)."""
    return (check_local_id(oid) - 1) % LOGICAL_SEGMENT_OBJECTS


def oid_for(logseg: int, slot: int) -> int:
    """Inverse of (:func:`logical_segment`, :func:`slot_in_segment`)."""
    if logseg < 0:
        raise InvalidIdentifierError(f"bad logical segment {logseg}")
    if not 0 <= slot < LOGICAL_SEGMENT_OBJECTS:
        raise InvalidIdentifierError(f"bad slot {slot}")
    return check_local_id(logseg * LOGICAL_SEGMENT_OBJECTS + slot + 1)


def make_global(file_no: int, oid: int) -> int:
    """Pack a file number and file-local id into a global identifier."""
    if file_no < 0:
        raise InvalidIdentifierError(f"bad file number {file_no}")
    return (file_no << ID_BITS) | check_local_id(oid)


def split_global(gid: int) -> "tuple[int, int]":
    """Unpack a global identifier into (file number, file-local id)."""
    if gid <= 0:
        raise InvalidIdentifierError(f"bad global id {gid!r}")
    file_no, oid = gid >> ID_BITS, gid & (MAX_LOCAL_ID - 1)
    check_local_id(oid)
    return file_no, oid
