"""Compact auxiliary tables, permanently cached after first access.

Mneme locates objects "based on their logical segments using compact
multi-level hash tables.  This lookup mechanism requires slightly more
computation, but the reduced table size allows the auxiliary tables to
remain permanently cached after their first access."

Our identifiers are dense (pools allocate logical segments and objects
sequentially), so the compact equivalent of those hash tables is a paged
persistent array: a one-level page directory held in memory over
fixed-size entry pages on disk.  A page is read from its file the first
time any of its entries is touched — that read is the "slightly more than
1 file access per lookup" visible in Table 5's ``A`` column — and is then
cached for the life of the store.

Each table persists one kind of fact, per pool:

* ``segs``   — physical segment ordinal → (file offset, byte length)
* ``omap``   — object ordinal → physical segment ordinal
* ``lsegs``  — pool-local logical segment ordinal → global logical segment
"""

import struct
from typing import Dict, List, Tuple

from ..errors import MnemeError
from ..simdisk import SimFile

_HEADER = struct.Struct("<4sHHQ")  # magic, entry size, entries/page, count
_MAGIC = b"MAUX"

#: Target byte size of one table page.
PAGE_BYTES = 4096

#: Sentinel stored in tombstoned entries.
TOMBSTONE = 0xFFFFFFFF


class PagedTable:
    """A persistent array of fixed-format tuples with page-grain caching.

    Parameters
    ----------
    file:
        Backing simulated file; empty means a new table.
    entry_format:
        :mod:`struct` format of one entry, e.g. ``"<QI"`` for the segment
        table's (offset, length) pairs.
    """

    def __init__(self, file: SimFile, entry_format: str):
        self._file = file
        self._entry = struct.Struct(entry_format)
        self._per_page = max(1, PAGE_BYTES // self._entry.size)
        self._page_bytes = self._per_page * self._entry.size
        self._count = 0
        self._pages: Dict[int, List[Tuple]] = {}   # permanently cached pages
        self._dirty: set = set()
        if file.size == 0:
            self._write_header()
        else:
            self._read_header()

    def _write_header(self) -> None:
        self._file.write(
            0, _HEADER.pack(_MAGIC, self._entry.size, self._per_page, self._count)
        )

    def _read_header(self) -> None:
        magic, entry_size, per_page, count = _HEADER.unpack(
            self._file.read(0, _HEADER.size)
        )
        if magic != _MAGIC:
            raise MnemeError(f"{self._file.name!r} is not an auxiliary table")
        if entry_size != self._entry.size or per_page != self._per_page:
            raise MnemeError(
                f"table {self._file.name!r} has entry size {entry_size}, "
                f"expected {self._entry.size}"
            )
        self._count = count

    def __len__(self) -> int:
        return self._count

    @property
    def cached_pages(self) -> int:
        """Pages resident in the permanent cache (for footprint stats)."""
        return len(self._pages)

    @property
    def file_size(self) -> int:
        return self._file.size

    def append(self, *values) -> int:
        """Add one entry, returning its index."""
        index = self._count
        page_no, offset = divmod(index, self._per_page)
        page = self._load_page(page_no, allow_new=True)
        if offset == len(page):
            page.append(tuple(values))
        else:
            page[offset] = tuple(values)
        self._count += 1
        self._dirty.add(page_no)
        return index

    def get(self, index: int) -> Tuple:
        """Fetch one entry; first touch of its page costs a file access."""
        self._check(index)
        page_no, offset = divmod(index, self._per_page)
        return self._load_page(page_no)[offset]

    def set(self, index: int, *values) -> None:
        """Overwrite one entry in place."""
        self._check(index)
        page_no, offset = divmod(index, self._per_page)
        self._load_page(page_no)[offset] = tuple(values)
        self._dirty.add(page_no)

    def __iter__(self):
        for index in range(self._count):
            yield self.get(index)

    def drop_cache(self) -> None:
        """Forget cached pages — simulates a fresh process opening the store.

        Raises
        ------
        MnemeError
            If unflushed changes would be lost.
        """
        if self._dirty:
            raise MnemeError(
                f"flush {self._file.name!r} before dropping its page cache"
            )
        self._pages.clear()

    def flush(self) -> None:
        """Write dirty pages and the header back to the file."""
        for page_no in sorted(self._dirty):
            page = self._pages[page_no]
            data = bytearray()
            for entry in page:
                data += self._entry.pack(*entry)
            self._file.write(_HEADER.size + page_no * self._page_bytes, bytes(data))
        self._dirty.clear()
        self._write_header()

    def _check(self, index: int) -> None:
        if not 0 <= index < self._count:
            raise IndexError(
                f"table index {index} out of range [0, {self._count}) "
                f"in {self._file.name!r}"
            )

    def _load_page(self, page_no: int, allow_new: bool = False) -> List[Tuple]:
        page = self._pages.get(page_no)
        if page is not None:
            return page
        start = _HEADER.size + page_no * self._page_bytes
        first_index = page_no * self._per_page
        stored = max(0, min(self._count - first_index, self._per_page))
        if stored > 0 and start < self._file.size:
            raw = self._file.read(start, stored * self._entry.size)
            page = [
                self._entry.unpack_from(raw, i * self._entry.size)
                for i in range(stored)
            ]
        elif allow_new or stored == 0:
            page = []
        else:
            raise MnemeError(
                f"table page {page_no} of {self._file.name!r} missing on disk"
            )
        self._pages[page_no] = page
        return page
