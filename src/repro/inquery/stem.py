"""A small deterministic suffix-stripping stemmer.

INQUERY used a conventional English stemmer.  Retrieval-quality nuance
is irrelevant to the storage comparison (recall/precision are "fixed
across the two systems we are comparing"), so this is a compact two-step
Porter-style stripper: a plural step, then one derivational suffix, each
guarded by a minimum stem length.  The two-step design keeps it
*consistent* (``managements`` and ``management`` conflate) and
*idempotent* (stemming a stem is a no-op).
"""

#: Derivational (suffix, replacement) pairs, tried longest first.
_SUFFIXES = (
    ("ational", "ate"),
    ("ization", "ize"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("iveness", "ive"),
    ("tional", "tion"),
    ("ation", "ate"),
    ("ness", ""),
    ("ment", ""),
    ("ible", ""),
    ("able", ""),
    ("ance", ""),
    ("ence", ""),
    ("ing", ""),
    ("ity", ""),
    ("ful", ""),
    ("est", ""),
    ("ed", ""),
    ("ly", ""),
)

#: Stems shorter than this are never produced.
MIN_STEM = 3


def _deplural(token: str) -> str:
    """Step 1: strip plural endings."""
    if len(token) <= MIN_STEM or not token.endswith("s") or token.endswith("ss"):
        return token
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    return token[:-1]


def _desuffix(token: str) -> str:
    """Step 2: strip one derivational suffix."""
    for suffix, replacement in _SUFFIXES:
        if token.endswith(suffix):
            candidate = token[: len(token) - len(suffix)] + replacement
            if len(candidate) >= MIN_STEM:
                return candidate
            return token
    return token


def stem(token: str) -> str:
    """Normalize a token: plural step, then one derivational suffix.

    Tokens containing digits are returned unchanged (identifiers, years),
    as are tokens at or under the minimum stem length.
    """
    if len(token) <= MIN_STEM or any(c.isdigit() for c in token):
        return token
    return _desuffix(_deplural(token))
