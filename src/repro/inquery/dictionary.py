"""The open-chaining hash dictionary.

"INQUERY uses an open-chaining hash dictionary to map text strings
(words) to unique integers called term ids.  The hash dictionary also
stores summary statistics for each string and resides entirely in main
memory during query processing."  After the Mneme integration, "the
Mneme identifier assigned to the object was stored in the INQUERY hash
dictionary entry for the associated term."

The chains are explicit (an array of buckets of linked entries) rather
than a Python dict, because the dictionary's growth and collision
behaviour is part of the system being reproduced; the table doubles when
the load factor passes 4 chained entries per bucket.
"""

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import IndexError_
from ..simdisk import SimFile


@dataclass
class TermEntry:
    """One dictionary entry: id, collection statistics, storage key."""

    term: str
    term_id: int
    df: int = 0         #: document frequency
    ctf: int = 0        #: collection term frequency
    storage_key: int = 0  #: B-tree key or Mneme global object id
    #: Largest within-document term frequency across the record.  Feeds
    #: the dynamic-pruning score upper bound; 0 means "unknown" (an
    #: index saved before bound metadata existed) and disables pruning
    #: for this term.
    max_tf: int = 0
    #: Storage key of the per-chunk bound sidecar for linked records
    #: (0 = none; whole records need only ``max_tf``).
    bounds_key: int = 0
    next: Optional["TermEntry"] = None  #: chain link


def _hash(term: str) -> int:
    """FNV-1a over the term bytes; stable across runs (unlike hash())."""
    h = 0x811C9DC5
    for byte in term.encode("utf-8"):
        h = ((h ^ byte) * 0x01000193) & 0xFFFFFFFF
    return h


class HashDictionary:
    """In-memory open-chaining hash from term string to :class:`TermEntry`."""

    def __init__(self, initial_buckets: int = 1024):
        if initial_buckets < 1:
            raise IndexError_("dictionary needs at least one bucket")
        self._buckets: List[Optional[TermEntry]] = [None] * initial_buckets
        self._count = 0
        self._next_id = 1  # term id 0 is reserved

    def __len__(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def lookup(self, term: str) -> Optional[TermEntry]:
        """Return the entry for ``term`` or ``None``."""
        entry = self._buckets[_hash(term) % len(self._buckets)]
        while entry is not None:
            if entry.term == term:
                return entry
            entry = entry.next
        return None

    def add(self, term: str) -> TermEntry:
        """Return the entry for ``term``, creating it with a fresh id."""
        entry = self.lookup(term)
        if entry is not None:
            return entry
        if self._count >= 4 * len(self._buckets):
            self._grow()
        entry = TermEntry(term=term, term_id=self._next_id)
        self._next_id += 1
        index = _hash(term) % len(self._buckets)
        entry.next = self._buckets[index]
        self._buckets[index] = entry
        self._count += 1
        return entry

    def entries(self) -> Iterator[TermEntry]:
        """Every entry, in no particular order."""
        for head in self._buckets:
            entry = head
            while entry is not None:
                yield entry
                entry = entry.next

    def by_id(self) -> dict:
        """term id -> entry map (built on demand; ids are query-time keys)."""
        return {entry.term_id: entry for entry in self.entries()}

    def _grow(self) -> None:
        old = self._buckets
        self._buckets = [None] * (len(old) * 2)
        self._count = 0
        next_id = self._next_id
        for head in old:
            entry = head
            while entry is not None:
                following = entry.next
                index = _hash(entry.term) % len(self._buckets)
                entry.next = self._buckets[index]
                self._buckets[index] = entry
                self._count += 1
                entry = following
        self._next_id = next_id

    # -- persistence -----------------------------------------------------------

    _REC = struct.Struct("<IIIQH")  # term id, df, ctf, storage key, term length
    #: v2 record appends max_tf and the bound-sidecar storage key.
    _REC_V2 = struct.Struct("<IIIQHIQ")
    #: v2 files open with this magic instead of the entry count.  A v1
    #: file starts with its entry count, which can never reach 3.5
    #: billion (the file itself would need 60+ GB), so the first word
    #: sniffs the version unambiguously.
    _V2_MAGIC = 0xD1C70002

    def save(self, file: SimFile) -> None:
        """Serialize to a simulated file (loaded fully at system open).

        Writes the v2 layout (with per-term bound metadata); v1 files
        written before bound metadata existed still :meth:`load`.
        """
        parts = [struct.pack("<III", self._V2_MAGIC, self._count, self._next_id)]
        for entry in self.entries():
            raw = entry.term.encode("utf-8")
            parts.append(
                self._REC_V2.pack(
                    entry.term_id, entry.df, entry.ctf, entry.storage_key,
                    len(raw), entry.max_tf, entry.bounds_key,
                )
            )
            parts.append(raw)
        file.truncate(0)
        file.write(0, b"".join(parts))

    @classmethod
    def load(cls, file: SimFile) -> "HashDictionary":
        """Rebuild a dictionary from :meth:`save` output (v1 or v2).

        Entries restored from a v1 file carry ``max_tf == 0`` /
        ``bounds_key == 0`` — no bound metadata — which the engines
        treat as "pruning unavailable, evaluate exhaustively".
        """
        raw = file.read(0, file.size)
        if len(raw) < 8:
            raise IndexError_("dictionary file truncated")
        (first_word,) = struct.unpack_from("<I", raw, 0)
        v2 = first_word == cls._V2_MAGIC
        if v2:
            if len(raw) < 12:
                raise IndexError_("dictionary file truncated")
            count, next_id = struct.unpack_from("<II", raw, 4)
            pos = 12
            rec = cls._REC_V2
        else:
            count, next_id = struct.unpack_from("<II", raw, 0)
            pos = 8
            rec = cls._REC
        dictionary = cls(initial_buckets=max(1024, count // 2))
        for _ in range(count):
            if v2:
                term_id, df, ctf, key, term_len, max_tf, bounds_key = (
                    rec.unpack_from(raw, pos)
                )
            else:
                term_id, df, ctf, key, term_len = rec.unpack_from(raw, pos)
                max_tf, bounds_key = 0, 0
            pos += rec.size
            term = raw[pos:pos + term_len].decode("utf-8")
            pos += term_len
            entry = dictionary.add(term)
            entry.term_id, entry.df, entry.ctf, entry.storage_key = term_id, df, ctf, key
            entry.max_tf, entry.bounds_key = max_tf, bounds_key
        dictionary._next_id = next_id
        return dictionary
