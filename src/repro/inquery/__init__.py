"""An INQUERY-style probabilistic full-text retrieval engine.

Tokenizer, stop list, stemmer, open-chaining hash dictionary, compressed
inverted list records, sort-based indexer, structured query language,
Bayesian inference network evaluation, and recall/precision metrics.
The inverted file index is stored through either the custom B-tree
package or the Mneme persistent object store (:mod:`.invfile`).
"""

from .bounds import (
    PrunableSource,
    belief_bound,
    decode_chunk_bounds,
    encode_chunk_bounds,
    tf_weight_bound,
)
from .daat import DAATResult, DocumentAtATimeEngine
from .dictionary import HashDictionary, TermEntry
from .documents import Document, DocTable
from .engine import DEFAULT_TOP_K, QueryResult, RetrievalEngine
from .evalir import (
    QueryEvaluation,
    RECALL_POINTS,
    SetEvaluation,
    evaluate_ranking,
    evaluate_run,
)
from .matches import best_window, term_match_positions
from .indexer import (
    CollectionIndex,
    IndexBuilder,
    IndexStats,
    add_document_incremental,
    fold_tombstones,
    remove_document_incremental,
    tombstone_document_incremental,
)
from .invfile import (
    BTreeInvertedFile,
    BufferSizes,
    InvertedFileStore,
    LARGE_POOL,
    LinkedMnemeInvertedFile,
    MEDIUM_MAX_BYTES,
    MEDIUM_POOL,
    MnemeInvertedFile,
    SMALL_MAX_BYTES,
    SMALL_POOL,
)
from .network import BeliefTable, DEFAULT_BELIEF, InferenceNetwork, TermProvider
from .normalize import (
    STOPPED_TERM,
    canonical_query_key,
    normalize_term,
    normalize_tree,
    render_canonical,
)
from .postings import (
    Posting,
    RecordHeader,
    decode_header,
    decode_record,
    encode_record,
    join_chunk_records,
    merge_records,
    remove_document,
    split_postings,
    uncompressed_size,
    vbyte_decode,
    vbyte_encode,
    vbyte_length,
)
from .query import (
    OpNode,
    QueryNode,
    TermNode,
    count_nodes,
    format_query,
    parse_query,
    query_terms,
)
from .stem import stem
from .streams import (
    ChunkedRecordStream,
    FaultTolerantStream,
    PostingStream,
    TombstoneFilterStream,
    WholeRecordStream,
    merge_streams,
)
from .stopwords import DEFAULT_STOPWORDS, is_stopword
from .text import tokenize

__all__ = [
    "BTreeInvertedFile",
    "ChunkedRecordStream",
    "FaultTolerantStream",
    "DAATResult",
    "DocumentAtATimeEngine",
    "LinkedMnemeInvertedFile",
    "PostingStream",
    "TombstoneFilterStream",
    "WholeRecordStream",
    "join_chunk_records",
    "merge_streams",
    "split_postings",
    "BeliefTable",
    "BufferSizes",
    "CollectionIndex",
    "DEFAULT_BELIEF",
    "DEFAULT_STOPWORDS",
    "DEFAULT_TOP_K",
    "PrunableSource",
    "belief_bound",
    "decode_chunk_bounds",
    "encode_chunk_bounds",
    "tf_weight_bound",
    "DocTable",
    "Document",
    "HashDictionary",
    "IndexBuilder",
    "IndexStats",
    "InferenceNetwork",
    "InvertedFileStore",
    "LARGE_POOL",
    "MEDIUM_MAX_BYTES",
    "MEDIUM_POOL",
    "MnemeInvertedFile",
    "OpNode",
    "Posting",
    "QueryEvaluation",
    "QueryNode",
    "QueryResult",
    "RECALL_POINTS",
    "RecordHeader",
    "RetrievalEngine",
    "SMALL_MAX_BYTES",
    "SMALL_POOL",
    "STOPPED_TERM",
    "SetEvaluation",
    "TermEntry",
    "TermNode",
    "TermProvider",
    "add_document_incremental",
    "best_window",
    "canonical_query_key",
    "count_nodes",
    "decode_header",
    "decode_record",
    "encode_record",
    "evaluate_ranking",
    "evaluate_run",
    "fold_tombstones",
    "format_query",
    "is_stopword",
    "merge_records",
    "normalize_term",
    "normalize_tree",
    "parse_query",
    "query_terms",
    "remove_document",
    "remove_document_incremental",
    "render_canonical",
    "stem",
    "term_match_positions",
    "tokenize",
    "tombstone_document_incremental",
    "uncompressed_size",
    "vbyte_decode",
    "vbyte_encode",
    "vbyte_length",
]
