"""Max-belief bound metadata for dynamic pruning.

The INQUERY belief of a term in a document is

    b = 0.4 + 0.6 * tf_w * idf,    tf_w = tf / (tf + 0.5 + 1.5 * dl / avg)

Every factor of ``tf_w``'s denominator beyond ``tf + 0.5`` is
non-negative, so for any document length

    tf_w  <=  tf / (tf + 0.5)  <=  max_tf / (max_tf + 0.5)

where ``max_tf`` is the largest within-document frequency the record (or
record chunk) stores.  :func:`belief_bound` evaluates the belief
expression with that frequency ceiling — an *admissible* upper bound on
the belief any document in the record can achieve.  The inequality chain
holds in IEEE-754 double arithmetic, not just over the reals: each step
replaces one operand of a correctly-rounded operation with something no
smaller (``tf + 0.5`` is exact for realistic ``tf``; rounding is
monotone; the remaining ops multiply/add non-negative values), so the
computed bound can never fall below the computed belief.  That is what
lets the pruning engine skip documents while staying bit-identical to
exhaustive evaluation.

Deliberately *not* in the bound: document length.  A length-aware bound
would be tighter but would go stale when documents are added or removed;
``max_tf`` only ever needs a max-merge on insert and a recount on
delete.

Storage layout
--------------
* Per record: ``max_tf`` lives in the term's dictionary entry
  (v2 format, :mod:`repro.inquery.dictionary`).
* Per block: linked (chunked) records get a compact *sidecar* object —
  :func:`encode_chunk_bounds` — recording each chunk's object id, last
  document id, and chunk-local ``max_tf``.  The sidecar is what lets the
  engine fetch only the chunks that can still matter: a chunk whose
  document range holds no candidate, or whose chunk-level bound cannot
  beat the current threshold, is never read from the store.
"""

import bisect
from typing import Callable, List, Optional, Sequence, Tuple

from .network import DEFAULT_BELIEF
from .postings import vbyte_decode, vbyte_encode


def tf_weight_bound(max_tf: int) -> float:
    """Upper bound on ``tf / (tf + 0.5 + 1.5 * dl / avg)`` for tf <= max_tf."""
    return max_tf / (max_tf + 0.5)


def belief_bound(max_tf: int, idf: float) -> float:
    """Admissible ceiling on the term belief of any document in a record.

    Mirrors the engines' belief expression with ``tf_w`` replaced by its
    ceiling; every operation is monotone under IEEE-754 rounding, so the
    result dominates every belief the record can produce.
    """
    tf_w = max_tf / (max_tf + 0.5)
    return DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_w * idf


# -- sidecar codec -------------------------------------------------------------


def encode_chunk_bounds(
    oids: Sequence[int], last_docs: Sequence[int], max_tfs: Sequence[int]
) -> bytes:
    """Serialize per-chunk bound metadata for one linked record.

    Layout (all v-byte): chunk count, then per chunk its object id
    (absolute — append/update cycles do not keep oids monotone), the
    last document id as a gap off the previous chunk's (documents are
    globally sorted across the chain, first absolute), and the
    chunk-local ``max_tf``.
    """
    if not (len(oids) == len(last_docs) == len(max_tfs)):
        raise ValueError("chunk bound columns must have equal length")
    out = bytearray()
    vbyte_encode(len(oids), out)
    previous = 0
    for oid, last_doc, max_tf in zip(oids, last_docs, max_tfs):
        vbyte_encode(oid, out)
        vbyte_encode(last_doc - previous, out)
        vbyte_encode(max_tf, out)
        previous = last_doc
    return bytes(out)


def decode_chunk_bounds(data: bytes) -> Tuple[List[int], List[int], List[int]]:
    """Inverse of :func:`encode_chunk_bounds`: (oids, last_docs, max_tfs)."""
    count, pos = vbyte_decode(data, 0)
    oids: List[int] = []
    last_docs: List[int] = []
    max_tfs: List[int] = []
    previous = 0
    for _ in range(count):
        oid, pos = vbyte_decode(data, pos)
        gap, pos = vbyte_decode(data, pos)
        max_tf, pos = vbyte_decode(data, pos)
        previous += gap
        oids.append(oid)
        last_docs.append(previous)
        max_tfs.append(max_tf)
    return oids, last_docs, max_tfs


def chunk_stats(slices) -> Tuple[List[int], List[int]]:
    """(last document id, max tf) per chunk from split posting slices."""
    last_docs = [postings[-1][0] for postings in slices]
    max_tfs = [max(len(p) for _d, p in postings) for postings in slices]
    return last_docs, max_tfs


# -- block-structured record access --------------------------------------------


class PrunableSource:
    """One term's record as independently fetchable, bounded blocks.

    The pruning engine's storage interface: block ``i`` covers documents
    in ``(last_docs[i-1], last_docs[i]]`` and none of its beliefs can
    exceed ``belief_bound(max_tfs[i], idf)``.  ``fetch_block`` returns
    the raw record piece (engines decode on their own path and cache);
    a block that is never fetched is never read from the store — that is
    the honest-I/O contract, and ``blocks_fetched`` is how the engine
    counts what it skipped.

    A whole (unchunked) record is a single block whose ``last_doc`` is
    unknown (``None``): it cannot be range-skipped, only bound-skipped,
    and fetching it transfers the entire record — exactly what the
    storage can actually do.
    """

    def __init__(
        self,
        fetchers: Sequence[Callable[[], bytes]],
        last_docs: Sequence[Optional[int]],
        max_tfs: Sequence[int],
    ):
        if not (len(fetchers) == len(last_docs) == len(max_tfs)):
            raise ValueError("block columns must have equal length")
        self._fetchers = list(fetchers)
        self.last_docs = list(last_docs)
        self.max_tfs = list(max_tfs)
        self.blocks_fetched = 0
        self._fetched = [False] * len(self._fetchers)

    @property
    def n_blocks(self) -> int:
        return len(self._fetchers)

    def fetch_block(self, index: int) -> bytes:
        """Raw bytes of block ``index`` (reads the store on first use)."""
        self.mark_fetched(index)
        return self._fetchers[index]()

    def mark_fetched(self, index: int) -> None:
        """Account block ``index`` as fetched without reading the store.

        The serving layer's decoded-term cache replays blocks it already
        holds decoded; those blocks were *not* skipped by pruning, so
        ``blocks_fetched`` must count them exactly as a real fetch would
        — only the store read and the decode are elided.
        """
        if not self._fetched[index]:
            self._fetched[index] = True
            self.blocks_fetched += 1

    def block_of_doc(self, doc_id: int) -> int:
        """Index of the block whose document range covers ``doc_id``.

        With a single unknown-range block that block is the answer by
        construction; otherwise binary search over the last-doc fence.
        """
        if len(self.last_docs) == 1:
            return 0
        return bisect.bisect_left(self.last_docs, doc_id)
