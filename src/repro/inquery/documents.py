"""Documents and the per-document statistics table."""

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from ..errors import IndexError_
from ..simdisk import SimFile


@dataclass(frozen=True)
class Document:
    """One document handed to the indexer.

    ``tokens`` may be supplied pre-tokenized (synthetic workloads build
    token streams directly); otherwise the indexer tokenizes ``text``.
    """

    doc_id: int
    name: str = ""
    text: str = ""
    tokens: Sequence[str] = ()

    def term_stream(self, tokenizer) -> List[str]:
        """The token sequence to index."""
        if self.tokens:
            return list(self.tokens)
        return tokenizer(self.text)


@dataclass
class DocTable:
    """Document lengths and names; needed for belief normalization."""

    lengths: Dict[int, int] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)

    def add(self, doc_id: int, length: int, name: str = "") -> None:
        if doc_id in self.lengths:
            raise IndexError_(f"duplicate document id {doc_id}")
        self.lengths[doc_id] = length
        if name:
            self.names[doc_id] = name

    def __len__(self) -> int:
        return len(self.lengths)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self.lengths

    def doc_ids(self) -> Iterator[int]:
        return iter(self.lengths)

    @property
    def total_length(self) -> int:
        return sum(self.lengths.values())

    @property
    def average_length(self) -> float:
        return self.total_length / len(self.lengths) if self.lengths else 0.0

    def length_of(self, doc_id: int) -> int:
        try:
            return self.lengths[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document id {doc_id}") from None

    def remove(self, doc_id: int) -> None:
        self.lengths.pop(doc_id, None)
        self.names.pop(doc_id, None)

    # -- persistence -----------------------------------------------------------

    _REC = struct.Struct("<IIH")  # doc id, length, name length

    def save(self, file: SimFile) -> None:
        parts = [struct.pack("<I", len(self.lengths))]
        for doc_id in sorted(self.lengths):
            raw = self.names.get(doc_id, "").encode("utf-8")
            parts.append(self._REC.pack(doc_id, self.lengths[doc_id], len(raw)))
            parts.append(raw)
        file.truncate(0)
        file.write(0, b"".join(parts))

    @classmethod
    def load(cls, file: SimFile) -> "DocTable":
        raw = file.read(0, file.size)
        (count,) = struct.unpack_from("<I", raw, 0)
        table = cls()
        pos = 4
        for _ in range(count):
            doc_id, length, name_len = cls._REC.unpack_from(raw, pos)
            pos += cls._REC.size
            name = raw[pos:pos + name_len].decode("utf-8")
            pos += name_len
            table.add(doc_id, length, name)
        return table
