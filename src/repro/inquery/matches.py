"""Match positions: where in a document a query matched.

The positional information INQUERY keeps for proximity operators also
supports result presentation — highlighting and passage selection need
the within-document positions of each query term.  These helpers decode
exactly the records a query's terms name and return the matches for one
document, without touching any other storage.
"""

from typing import Dict, List, Tuple

from ..fastpath import state as _fastpath
from .indexer import CollectionIndex
from .postings import decode_record
from .query import parse_query, query_terms


def term_match_positions(
    index: CollectionIndex, query_text: str, doc_id: int
) -> Dict[str, Tuple[int, ...]]:
    """Positions of each query term within ``doc_id``.

    Returns a mapping from the (stemmed) term to its positions; terms
    not present in the document (or collection) are omitted.  Repeated
    query terms are looked up once.

    With the fast path enabled the record is decoded columnar and one
    document sliced out instead of materializing every posting tuple;
    the storage accesses and the returned mapping are identical.
    """
    tree = parse_query(query_text)
    positions: Dict[str, Tuple[int, ...]] = {}
    seen = set()
    fast = _fastpath.enabled()
    for raw_term in query_terms(tree):
        entry = index.term_entry(raw_term)
        if entry is None or entry.storage_key == 0 or entry.term in seen:
            continue
        seen.add(entry.term)
        record = index.store.fetch(entry.storage_key)
        if fast:
            from ..fastpath.windows import record_positions_for_doc

            doc_positions = record_positions_for_doc(record, doc_id)
            if doc_positions is not None:
                positions[entry.term] = doc_positions
            continue
        postings = dict(decode_record(record))
        if doc_id in postings:
            positions[entry.term] = postings[doc_id]
    return positions


def best_window(
    index: CollectionIndex, query_text: str, doc_id: int, window: int = 25
) -> Tuple[int, int, int]:
    """The ``window``-token span of ``doc_id`` covering the most matches.

    Returns ``(start, end, distinct_terms)`` for the best window — the
    passage a snippet generator would show.  With no matches, returns
    ``(0, window, 0)``.
    """
    by_term = term_match_positions(index, query_text, doc_id)
    if _fastpath.enabled():
        from ..fastpath.windows import best_window as best_window_fast

        return best_window_fast(by_term, window)
    events: List[Tuple[int, str]] = sorted(
        (position, term)
        for term, positions in by_term.items()
        for position in positions
    )
    if not events:
        return 0, window, 0
    best = (events[0][0], events[0][0] + window, 1)
    left = 0
    inside: Dict[str, int] = {}
    for right, (position, term) in enumerate(events):
        inside[term] = inside.get(term, 0) + 1
        while events[left][0] < position - window + 1:
            left_term = events[left][1]
            inside[left_term] -= 1
            if not inside[left_term]:
                del inside[left_term]
            left += 1
        distinct = len(inside)
        if distinct > best[2]:
            start = events[left][0]
            best = (start, start + window, distinct)
    return best
