"""Posting streams: incremental access to inverted list records.

Term-at-a-time INQUERY "reads the complete record for one term ...
However, it requires large amounts of memory for large collections,
because several inverted list records must be kept in memory
simultaneously.  A 'document-at-a-time' approach, which gathered all of
the evidence for one document before proceeding to the next, might scale
better to large collections.  However, it would be cumbersome with the
current custom B-tree package."  (Section 3.1.)

With Mneme's linked objects it is not cumbersome: a large record stored
as a chain of self-contained chunks can be consumed one chunk at a time.
A :class:`PostingStream` yields postings in document order while
reporting how many record bytes it holds resident, which is what the
document-at-a-time memory benchmark measures.
"""

import heapq
from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import BadBlockError
from .postings import Posting, decode_record


class PostingStream:
    """Sequential reader over one term's postings.

    Subclasses implement :meth:`_refill` to supply the next batch of
    postings; ``resident_bytes`` must reflect the record bytes currently
    held in memory for this stream.
    """

    def __init__(self):
        self._batch: List[Posting] = []
        self._index = 0
        self.resident_bytes = 0
        self.exhausted = False

    def _refill(self) -> Optional[List[Posting]]:
        """Return the next batch of postings, or ``None`` at the end.

        The default decodes whatever :meth:`_refill_raw` supplies;
        subclasses may override either method.
        """
        raw = self._refill_raw()
        if raw is None:
            return None
        return decode_record(raw)

    def _refill_raw(self) -> Optional[bytes]:
        """Return the next undecoded record piece, or ``None`` at the end.

        Implementations must update ``resident_bytes`` to reflect the
        bytes held once the piece is loaded.  Exposing the raw bytes
        (rather than only decoded postings) lets the fast-path
        document-at-a-time scorer decode straight into columnar arrays
        while reusing the exact refill (and therefore I/O) sequence.
        """
        raise NotImplementedError

    def peek(self) -> Optional[Posting]:
        """The next posting without consuming it, or ``None``."""
        while self._index >= len(self._batch):
            if self.exhausted:
                return None
            batch = self._refill()
            if batch is None:
                self.exhausted = True
                self.resident_bytes = 0
                return None
            self._batch = batch
            self._index = 0
        return self._batch[self._index]

    def advance(self) -> Optional[Posting]:
        """Consume and return the next posting, or ``None``."""
        posting = self.peek()
        if posting is not None:
            self._index += 1
        return posting

    def __iter__(self) -> Iterator[Posting]:
        while True:
            posting = self.advance()
            if posting is None:
                return
            yield posting


class WholeRecordStream(PostingStream):
    """A stream over a contiguous record: the whole record is resident.

    This is what term-at-a-time storage gives a document-at-a-time
    reader — correctness without the memory benefit.
    """

    def __init__(self, record: bytes):
        super().__init__()
        self._record: Optional[bytes] = record
        self.resident_bytes = len(record)

    def _refill_raw(self) -> Optional[bytes]:
        if self._record is None:
            return None
        record, self._record = self._record, None
        # The decoded postings stay resident until the stream ends.
        return record


class ChunkedRecordStream(PostingStream):
    """A stream over a linked record: one chunk resident at a time."""

    def __init__(self, chunks: Iterator[bytes]):
        super().__init__()
        self._chunks = iter(chunks)

    def _refill_raw(self) -> Optional[bytes]:
        chunk = next(self._chunks, None)
        if chunk is None:
            return None
        self.resident_bytes = len(chunk)
        return chunk


class FaultTolerantStream(PostingStream):
    """Wraps a stream so storage faults end it early instead of raising.

    The document-at-a-time engine reads linked records chunk by chunk;
    a chunk that stays unreadable after the store's bounded retries
    surfaces as :class:`~repro.errors.BadBlockError` *mid-query*.  This
    wrapper converts that into a clean early end-of-stream, reports the
    failure through ``on_failure``, and leaves every other stream (and
    the documents already scored) intact — the degraded-serving
    contract.

    Both refill entry points are proxied: the reference merge consumes
    decoded batches via ``_refill``, while the fast-path scorer drives
    ``_refill_raw`` directly; with no fault either path is
    observationally identical to the unwrapped stream (same refill
    sequence, same ``resident_bytes`` transitions).
    """

    def __init__(
        self,
        inner: PostingStream,
        on_failure: Optional[Callable[[BaseException], None]] = None,
    ):
        super().__init__()
        self._inner = inner
        self._on_failure = on_failure
        self.failed = False
        self.resident_bytes = inner.resident_bytes

    def _fail(self, error: BaseException) -> None:
        self.failed = True
        self._inner.resident_bytes = 0
        self.resident_bytes = 0
        if self._on_failure is not None:
            self._on_failure(error)

    def _refill_raw(self) -> Optional[bytes]:
        if self.failed:
            return None
        try:
            raw = self._inner._refill_raw()
        except BadBlockError as error:
            self._fail(error)
            return None
        self.resident_bytes = self._inner.resident_bytes
        return raw

    def _refill(self) -> Optional[List[Posting]]:
        if self.failed:
            return None
        try:
            batch = self._inner._refill()
        except BadBlockError as error:
            self._fail(error)
            return None
        self.resident_bytes = self._inner.resident_bytes
        return batch


class TombstoneFilterStream(PostingStream):
    """Drops tombstoned documents from an inner stream's batches.

    Implements only ``_refill`` — deliberately *not* ``_refill_raw`` —
    so the fast-path scorer's raw-first probe hits the base class's
    :class:`NotImplementedError` and falls back to consuming decoded
    batches.  That keeps a single filtering point for both drivers: the
    postings any consumer sees are exactly what a record rebuilt
    without the dead documents would decode to.  Refill cadence and
    ``resident_bytes`` transitions mirror the inner stream's (a batch
    emptied by filtering is surfaced as an empty batch, which ``peek``
    skips, exactly as it skips an inner empty batch).
    """

    def __init__(self, inner: PostingStream, dead: set):
        super().__init__()
        self._inner = inner
        self._dead = dead
        self.resident_bytes = inner.resident_bytes

    def _refill(self) -> Optional[List[Posting]]:
        batch = self._inner._refill()
        self.resident_bytes = self._inner.resident_bytes
        if batch is None:
            return None
        return [(d, p) for d, p in batch if d not in self._dead]


class RecordingStream(PostingStream):
    """Tape-records an inner stream's decoded refill sequence.

    The serving layer's decoded-term cache replays a full drain of a
    record's stream without touching the store again.  The recorder
    sits *inside* any tombstone filter (so the tape is epoch-raw) and
    proxies the inner stream transparently: refill cadence and
    ``resident_bytes`` transitions are untouched.  Like
    :class:`TombstoneFilterStream` it implements only ``_refill``, so
    the fast-path raw-first probe falls back to decoded batches — the
    doc-id/tf integers the scorer consumes are identical either way.

    ``on_complete(recording)`` fires once, at clean exhaustion; a
    recording cut short by a mid-stream fault never fires it (partial
    tapes must not be cached).
    """

    def __init__(
        self,
        inner: PostingStream,
        on_complete: Callable[["RecordingStream"], None],
    ):
        super().__init__()
        self._inner = inner
        self._on_complete = on_complete
        self.resident_bytes = inner.resident_bytes
        self.initial_resident = inner.resident_bytes
        self.tape: List[Tuple[List[Posting], int]] = []
        self._done = False

    def _refill(self) -> Optional[List[Posting]]:
        batch = self._inner._refill()
        self.resident_bytes = self._inner.resident_bytes
        if batch is None:
            if not self._done:
                self._done = True
                if not getattr(self._inner, "failed", False):
                    self._on_complete(self)
            return None
        self.tape.append((list(batch), self.resident_bytes))
        return batch


class ReplayStream(PostingStream):
    """Replays a :class:`RecordingStream` tape: no I/O, no decode.

    Batch spines are copied per refill so consumers can never mutate
    the cached tape; ``resident_bytes`` replays the recorded
    transitions, keeping the memory high-water mark of a hit equal to
    the run that produced the tape.
    """

    def __init__(
        self, tape: List[Tuple[List[Posting], int]], initial_resident: int
    ):
        super().__init__()
        self._tape = tape
        self._position = 0
        self.resident_bytes = initial_resident

    def _refill(self) -> Optional[List[Posting]]:
        if self._position >= len(self._tape):
            return None
        batch, resident = self._tape[self._position]
        self._position += 1
        self.resident_bytes = resident
        return list(batch)


def merge_streams(
    streams: List[Tuple[int, PostingStream]]
) -> Iterator[Tuple[int, List[Tuple[int, Posting]]]]:
    """Document-at-a-time merge of several term streams.

    ``streams`` pairs an opaque term index with its stream.  Yields
    ``(doc_id, [(term_index, posting), ...])`` in increasing document
    order — all of one document's evidence together, before the next
    document is touched.

    The merge keeps a heap of stream heads — O(log s) per step instead
    of two O(s) scans per document.  Streams are re-peeked (and so
    chunked streams refill) at the start of the round *after* they were
    advanced, exactly when the scan version would have touched them, so
    ``resident_bytes`` snapshots between yields are unchanged.
    """
    heap: List[Tuple[int, int]] = []  # (head doc id, position in streams)
    pending = list(range(len(streams)))
    while True:
        for order in pending:
            head = streams[order][1].peek()
            if head is not None:
                heapq.heappush(heap, (head[0], order))
        pending = []
        if not heap:
            return
        current = heap[0][0]
        evidence = []
        while heap and heap[0][0] == current:
            _doc, order = heapq.heappop(heap)
            term, stream = streams[order]
            evidence.append((term, stream.advance()))
            pending.append(order)
        yield current, evidence
