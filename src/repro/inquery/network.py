"""Bayesian inference network evaluation.

"INQUERY is a probabilistic information retrieval system based upon a
Bayesian inference network model.  ...  In INQUERY, document ranking is a
sorting problem, because the Bayesian method of combining belief assigns
a numeric value to each document."

A node evaluates to a *belief table*: a mapping from document id to
belief for documents where evidence was observed, plus a default belief
for all other documents.  Term beliefs use the INQUERY tf.idf form
(Turtle & Croft): ``0.4 + 0.6 * tf_w * idf_w`` with document-length
normalized ``tf_w`` and log-scaled ``idf_w``.  Operators combine child
tables per the probabilistic semantics of the network.

Evaluation is **term-at-a-time**: each term's complete record is read,
decoded, and merged into the accumulating belief tables before the next
term is touched — the access pattern whose storage cost the paper
measures.
"""

import math
from typing import Dict, List, Optional, Tuple

from ..errors import QueryError
from .postings import Posting
from .query import OpNode, QueryNode, TermNode

#: Belief assigned to a document with no evidence for a term.
DEFAULT_BELIEF = 0.4

#: A node's evaluation: per-document beliefs plus the default belief.
BeliefTable = Tuple[Dict[int, float], float]


def inquery_idf(n_docs: int, df: int) -> float:
    """INQUERY's scaled idf: ``log((N+0.5)/df) / log(N+1)``, floored at 0.

    Shared by the reference network, the document-at-a-time engine, and
    the fast-path kernels so every evaluation path computes term
    weights from one expression.
    """
    idf_w = math.log((n_docs + 0.5) / max(df, 1)) / math.log(n_docs + 1.0)
    return max(idf_w, 0.0)


class TermProvider:
    """What the network needs from the rest of the system.

    The engine implements this over the dictionary and the inverted
    file; tests implement it over in-memory fixtures.
    """

    @property
    def doc_count(self) -> int:
        raise NotImplementedError

    @property
    def average_doc_length(self) -> float:
        raise NotImplementedError

    def doc_length(self, doc_id: int) -> int:
        raise NotImplementedError

    def postings(self, term: str) -> Optional[List[Posting]]:
        """Decoded postings for a (raw, unstemmed) query term.

        Returns ``None`` for stop words and unindexed terms.
        """
        raise NotImplementedError

    def charge_combine(self, updates: int) -> None:
        """Charge engine CPU for ``updates`` belief-table operations."""
        return None


class InferenceNetwork:
    """Evaluates a query tree into a belief table."""

    def __init__(self, provider: TermProvider):
        self._provider = provider

    def evaluate(self, node: QueryNode) -> BeliefTable:
        """Evaluate the tree bottom-up, term-at-a-time."""
        if isinstance(node, TermNode):
            return self._eval_term(node.term)
        handler = getattr(self, f"_eval_{node.op}", None)
        if handler is None:
            raise QueryError(f"unsupported operator #{node.op}")
        return handler(node)

    # -- leaves ---------------------------------------------------------------

    def _belief_from_postings(self, postings: List[Posting], df: int) -> BeliefTable:
        """INQUERY term belief over a posting list."""
        provider = self._provider
        n_docs = max(provider.doc_count, 1)
        avg_len = max(provider.average_doc_length, 1.0)
        idf_w = inquery_idf(n_docs, df)
        scores: Dict[int, float] = {}
        for doc_id, positions in postings:
            tf = len(positions)
            tf_w = tf / (tf + 0.5 + 1.5 * provider.doc_length(doc_id) / avg_len)
            scores[doc_id] = DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_w * idf_w
        provider.charge_combine(len(scores))
        return scores, DEFAULT_BELIEF

    def _eval_term(self, term: str) -> BeliefTable:
        postings = self._provider.postings(term)
        if postings is None or not postings:
            return {}, DEFAULT_BELIEF
        return self._belief_from_postings(postings, df=len(postings))

    # -- proximity operators ----------------------------------------------------

    def _eval_phrase(self, node: OpNode) -> BeliefTable:
        return self._proximity(node, ordered=True, window=1)

    def _eval_uw(self, node: OpNode) -> BeliefTable:
        return self._proximity(node, ordered=False, window=max(node.window, len(node.children)))

    def _eval_od(self, node: OpNode) -> BeliefTable:
        """Ordered window: terms in order, successive gaps <= window."""
        return self._proximity(node, ordered=True, window=max(node.window, 1))

    def _eval_syn(self, node: OpNode) -> BeliefTable:
        """Synonym group: several surface terms scored as one term.

        The postings of the members are unioned (positions merged per
        document) and the result is scored like a single term whose
        document frequency is the union's size.
        """
        merged = self._synonym_postings(node)
        if merged is None:
            return {}, DEFAULT_BELIEF
        return self._belief_from_postings(merged, df=len(merged))

    def _synonym_postings(self, node: OpNode) -> Optional[List[Posting]]:
        """The synonym group's unioned postings, or ``None`` if empty.

        Factored out of :meth:`_eval_syn` (storage accesses and clock
        charges included) so the shard statistics collector computes the
        identical virtual record without scoring it.
        """
        by_doc: Dict[int, set] = {}
        for child in node.children:
            postings = self._provider.postings(child.term)
            if not postings:
                continue
            for doc_id, positions in postings:
                by_doc.setdefault(doc_id, set()).update(positions)
        if not by_doc:
            return None
        merged: List[Posting] = [
            (doc_id, tuple(sorted(positions)))
            for doc_id, positions in sorted(by_doc.items())
        ]
        self._provider.charge_combine(len(merged))
        return merged

    def _proximity(self, node: OpNode, ordered: bool, window: int) -> BeliefTable:
        """Build a virtual term from co-occurrence within a window."""
        virtual = self._proximity_postings(node, ordered, window)
        if not virtual:
            return {}, DEFAULT_BELIEF
        return self._belief_from_postings(virtual, df=len(virtual))

    def _proximity_postings(
        self, node: OpNode, ordered: bool, window: int
    ) -> Optional[List[Posting]]:
        """The proximity node's virtual postings (``None``: missing word).

        Performs the storage accesses and clock charges of the reference
        evaluation; shared with the shard statistics collector.
        """
        term_postings = []
        for child in node.children:
            postings = self._provider.postings(child.term)
            if postings is None or not postings:
                return None  # a missing word kills the phrase
            term_postings.append(dict(postings))
        common = set(term_postings[0])
        for positions_by_doc in term_postings[1:]:
            common &= set(positions_by_doc)
        virtual: List[Posting] = []
        for doc_id in sorted(common):
            position_lists = [tp[doc_id] for tp in term_postings]
            count = _match_count(position_lists, ordered=ordered, window=window)
            if count > 0:
                virtual.append((doc_id, tuple(range(count))))
        self._provider.charge_combine(sum(len(tp) for tp in term_postings))
        return virtual

    # -- combination operators ----------------------------------------------------

    def _children(self, node: OpNode) -> List[BeliefTable]:
        return [self.evaluate(child) for child in node.children]

    def _union_docs(self, tables: List[BeliefTable]) -> set:
        docs: set = set()
        for scores, _default in tables:
            docs.update(scores)
        return docs

    def _combine(self, tables: List[BeliefTable], combine_fn) -> BeliefTable:
        docs = self._union_docs(tables)
        self._provider.charge_combine(len(docs) * len(tables))
        scores = {
            doc: combine_fn([s.get(doc, d) for s, d in tables]) for doc in docs
        }
        default = combine_fn([d for _s, d in tables])
        return scores, default

    def _eval_sum(self, node: OpNode) -> BeliefTable:
        tables = self._children(node)
        return self._combine(tables, lambda beliefs: sum(beliefs) / len(beliefs))

    def _eval_wsum(self, node: OpNode) -> BeliefTable:
        tables = self._children(node)
        weights = node.weights
        total = sum(weights)
        if total <= 0:
            raise QueryError("#wsum weights must sum to a positive value")

        def weighted(beliefs: List[float]) -> float:
            return sum(w * b for w, b in zip(weights, beliefs)) / total

        return self._combine(tables, weighted)

    def _eval_and(self, node: OpNode) -> BeliefTable:
        def product(beliefs: List[float]) -> float:
            out = 1.0
            for b in beliefs:
                out *= b
            return out

        return self._combine(self._children(node), product)

    def _eval_or(self, node: OpNode) -> BeliefTable:
        def noisy_or(beliefs: List[float]) -> float:
            out = 1.0
            for b in beliefs:
                out *= 1.0 - b
            return 1.0 - out

        return self._combine(self._children(node), noisy_or)

    def _eval_not(self, node: OpNode) -> BeliefTable:
        return self._combine(self._children(node), lambda beliefs: 1.0 - beliefs[0])

    def _eval_max(self, node: OpNode) -> BeliefTable:
        return self._combine(self._children(node), max)


def _match_count(position_lists: List[Tuple[int, ...]], ordered: bool, window: int) -> int:
    """Co-occurrence matches of several terms within one document.

    Ordered (phrase): positions must be consecutive, in child order.
    Unordered (#uwN): an occurrence of the first term counts if every
    other term occurs within ``window`` positions of it.
    """
    if ordered and window <= 1:
        # Exact phrase: strictly adjacent positions, in order.
        first, rest = set(position_lists[0]), position_lists[1:]
        count = 0
        for position in sorted(first):
            if all((position + offset + 1) in set(positions)
                   for offset, positions in enumerate(rest)):
                count += 1
        return count
    if ordered:
        # Ordered window (#odN): increasing positions, each gap <= window.
        rest = [sorted(positions) for positions in position_lists[1:]]
        count = 0
        for position in sorted(position_lists[0]):
            current = position
            ok = True
            for positions in rest:
                following = next(
                    (p for p in positions if current < p <= current + window), None
                )
                if following is None:
                    ok = False
                    break
                current = following
            if ok:
                count += 1
        return count
    count = 0
    others = [set(positions) for positions in position_lists[1:]]
    for position in position_lists[0]:
        if all(
            any(abs(position - p) <= window for p in positions)
            for positions in others
        ):
            count += 1
    return count
