"""Inverted list records and their compressed encoding.

"There is one record per term.  A record has a header containing summary
statistics about the term, followed by a listing of the documents, and
the locations within each document, where the term occurs.  The record is
stored as a vector of integers in a compressed format.  The average
compression rate for the four collections ... is about 60%."

A record is encoded as variable-byte integers::

    df  ctf  (gap(doc) tf  gap(pos)*tf)*df

where document ids and within-document positions are delta-coded.  A term
occurring once in one document encodes in 5-8 bytes, which is what puts
roughly half of a Zipf vocabulary's records at or under the paper's
12-byte small object threshold.

The *format* of records is fixed by INQUERY — the paper's approach is to
replace the subsystem that manages the records "without changing the
format of the records themselves" — which is why both storage backends
share this module.
"""

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import IndexError_
from ..fastpath import state as _fastpath

#: One posting: (document id, sorted within-document positions).
Posting = Tuple[int, Tuple[int, ...]]

# Record sizes below these cutovers stay on the scalar codec: numpy
# call overhead beats the loop for the tiny records that make up about
# half of a Zipf vocabulary.  Both codecs are byte-identical, so the
# cutover is purely a real-time tuning knob.
_FAST_DECODE_MIN_BYTES = 64
_FAST_ENCODE_MIN_POSTINGS = 16

_codec = None


def _fast_codec():
    global _codec
    if _codec is None:
        from ..fastpath import codec

        _codec = codec
    return _codec


def vbyte_encode(value: int, out: bytearray) -> None:
    """Append one unsigned integer in 7-bit variable-byte form."""
    if value < 0:
        raise IndexError_(f"cannot v-byte encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def vbyte_decode(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one integer at ``pos``; returns (value, next position)."""
    value = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise IndexError_("truncated v-byte integer") from None
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


def vbyte_length(value: int) -> int:
    """Encoded size of one integer, in bytes."""
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


@dataclass(frozen=True)
class RecordHeader:
    """Summary statistics stored at the front of every record."""

    df: int   #: document frequency (number of postings)
    ctf: int  #: collection term frequency (total occurrences)


def encode_record(postings: Sequence[Posting]) -> bytes:
    """Serialize postings (sorted by document id) into a record.

    Dispatches to the vectorized codec for large records when the fast
    path is enabled; both codecs emit identical bytes and raise
    identical errors.

    Raises
    ------
    IndexError_
        If document ids are not strictly increasing, a posting has no
        positions, or positions are not strictly increasing.
    """
    if _fastpath.ENABLED and len(postings) >= _FAST_ENCODE_MIN_POSTINGS:
        return _fast_codec().encode_record_fast(postings)
    return _encode_record_py(postings)


def _encode_record_py(postings: Sequence[Posting]) -> bytes:
    """The scalar reference encoder."""
    out = bytearray()
    ctf = sum(len(positions) for _, positions in postings)
    vbyte_encode(len(postings), out)
    vbyte_encode(ctf, out)
    _encode_postings_body(postings, -1, out)
    return bytes(out)


def _encode_postings_body(
    postings: Sequence[Posting], last_doc: int, out: bytearray
) -> None:
    """Delta-encode postings after ``last_doc`` onto ``out`` (no header)."""
    for doc_id, positions in postings:
        if doc_id <= last_doc:
            raise IndexError_(
                f"postings out of order: doc {doc_id} after {last_doc}"
            )
        if not positions:
            raise IndexError_(f"posting for doc {doc_id} has no positions")
        vbyte_encode(doc_id - last_doc if last_doc >= 0 else doc_id, out)
        vbyte_encode(len(positions), out)
        last_pos = -1
        for position in positions:
            if position <= last_pos:
                raise IndexError_(
                    f"positions out of order in doc {doc_id}: "
                    f"{position} after {last_pos}"
                )
            vbyte_encode(position - last_pos if last_pos >= 0 else position, out)
            last_pos = position
        last_doc = doc_id


def decode_header(record: bytes) -> RecordHeader:
    """Read only the summary statistics of a record."""
    df, pos = vbyte_decode(record, 0)
    ctf, _pos = vbyte_decode(record, pos)
    return RecordHeader(df=df, ctf=ctf)


def decode_record(record: bytes) -> List[Posting]:
    """Deserialize a full record back into postings.

    Dispatches to the vectorized codec for large records when the fast
    path is enabled; both decoders return identical posting lists.
    """
    if _fastpath.ENABLED and len(record) >= _FAST_DECODE_MIN_BYTES:
        return _fast_codec().decode_record_fast(record)
    return _decode_record_py(record)


def _decode_record_py(record: bytes) -> List[Posting]:
    """The scalar reference decoder."""
    df, pos = vbyte_decode(record, 0)
    _ctf, pos = vbyte_decode(record, pos)
    postings: List[Posting] = []
    doc_id = 0
    first = True
    for _ in range(df):
        gap, pos = vbyte_decode(record, pos)
        doc_id = gap if first else doc_id + gap
        first = False
        tf, pos = vbyte_decode(record, pos)
        positions = []
        position = 0
        for j in range(tf):
            pgap, pos = vbyte_decode(record, pos)
            position = pgap if j == 0 else position + pgap
            positions.append(position)
        postings.append((doc_id, tuple(positions)))
    return postings


def merge_records(base: bytes, extra: Sequence[Posting]) -> bytes:
    """Merge new postings into an existing record.

    New postings for documents already present replace the old posting
    (re-indexed document); others are inserted in document-id order.
    This is the record-level half of incremental update — the operation
    the paper says is awkward for large lists stored contiguously, and
    cheap for linked objects.

    When every new document id follows the record's last (the common
    append-as-documents-arrive case), only the new postings' deltas are
    encoded onto the existing bytes instead of re-encoding the record.
    """
    extra = [(doc, tuple(positions)) for doc, positions in extra]
    appended = _try_append_records(base, extra)
    if appended is not None:
        return appended
    merged = {doc: positions for doc, positions in decode_record(base)}
    for doc, positions in extra:
        merged[doc] = positions
    return encode_record(sorted(merged.items()))


def _try_append_records(base: bytes, extra: Sequence[Posting]) -> Optional[bytes]:
    """Append-only fast path for :func:`merge_records`.

    Returns ``None`` whenever the slow path is required — new ids not
    strictly beyond the base record, or input that should raise the
    canonical validation errors from :func:`encode_record`.
    """
    if not extra:
        return None
    last_new = None
    for doc_id, positions in extra:
        if last_new is not None and doc_id <= last_new:
            return None  # unsorted or replacing: full merge handles it
        if not positions or any(
            b <= a for a, b in zip(positions, positions[1:])
        ) or positions[0] < 0:
            return None  # malformed: let encode_record raise
        last_new = doc_id
    header = decode_header(base)
    if header.df == 0:
        return None
    last_doc = _last_doc_id(base, header.df)
    if extra[0][0] <= last_doc:
        return None
    df = header.df + len(extra)
    ctf = header.ctf + sum(len(positions) for _d, positions in extra)
    out = bytearray()
    vbyte_encode(df, out)
    vbyte_encode(ctf, out)
    _df, pos = vbyte_decode(base, 0)
    _ctf, pos = vbyte_decode(base, pos)
    out += base[pos:]
    _encode_postings_body(extra, last_doc, out)
    return bytes(out)


def _last_doc_id(record: bytes, df: int) -> int:
    """Final document id of a record (sum of the document-id gaps)."""
    if _fastpath.ENABLED and len(record) >= _FAST_DECODE_MIN_BYTES:
        arrays = _fast_codec().decode_record_arrays(record)
        return int(arrays.doc_ids[-1])
    _df, pos = vbyte_decode(record, 0)
    _ctf, pos = vbyte_decode(record, pos)
    doc_id = 0
    for _ in range(df):
        gap, pos = vbyte_decode(record, pos)
        doc_id += gap
        tf, pos = vbyte_decode(record, pos)
        for _ in range(tf):
            _gap, pos = vbyte_decode(record, pos)
    return doc_id


def remove_document(base: bytes, doc_ids: Iterable[int]) -> bytes:
    """Drop every posting for ``doc_ids`` — document deletion support."""
    doomed = set(doc_ids)
    kept = [(d, p) for d, p in decode_record(base) if d not in doomed]
    return encode_record(kept)


def split_postings(
    postings: Sequence[Posting], target_bytes: int
) -> List[List[Posting]]:
    """Partition postings into slices of roughly ``target_bytes`` each.

    Every slice is encoded as a self-contained mini-record (absolute
    first document id), so a reader can decode any slice without its
    neighbours — the property that makes linked-object storage of large
    inverted lists streamable for document-at-a-time evaluation.
    """
    if target_bytes < 16:
        raise IndexError_("chunk target too small to hold a posting")
    slices: List[List[Posting]] = []
    current: List[Posting] = []
    used = 4  # mini-record header estimate (df + ctf)
    for doc_id, positions in postings:
        entry = vbyte_length(doc_id) + vbyte_length(len(positions)) + len(positions) * 2
        if current and used + entry > target_bytes:
            slices.append(current)
            current = []
            used = 4
        current.append((doc_id, positions))
        used += entry
    if current or not slices:
        slices.append(current)
    return slices


def join_chunk_records(chunks: Sequence[bytes]) -> bytes:
    """Reassemble mini-record chunks into one contiguous record."""
    postings: List[Posting] = []
    for chunk in chunks:
        postings.extend(decode_record(chunk))
    return encode_record(postings)


def uncompressed_size(postings: Sequence[Posting]) -> int:
    """Bytes the record would occupy as plain 32-bit integers.

    Used to report the compression rate (the paper's ~60%).
    """
    ints = 2  # df, ctf
    for _doc, positions in postings:
        ints += 2 + len(positions)  # doc id, tf, positions
    return 4 * ints
