"""INQUERY's structured query language.

Queries are terms combined by inference-network operators::

    #sum( information retrieval )
    #and( persistent #or( object store ) )
    #wsum( 2.0 legal 1.0 #phrase( supreme court ) )
    #not( relational )

Grammar::

    query   := node+                       (an implicit #sum at top level)
    node    := TERM | '#' NAME '(' body ')'
    body    := node+                       (for most operators)
             | (WEIGHT node)+              (for #wsum)

"As queries are parsed by INQUERY, a tree is constructed that represents
the query in an internal form."  The tree built here is what the engine's
reservation pass scans before evaluation.
"""

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from ..errors import QueryError

#: Operators taking plain child lists.
OPERATORS = frozenset(
    {"sum", "and", "or", "not", "max", "phrase", "uw", "od", "syn", "wsum"}
)

_TOKEN = re.compile(r"#\w+|\(|\)|[^\s()#]+")


@dataclass(frozen=True)
class TermNode:
    """A leaf: one query term (stemmed at evaluation time)."""

    term: str


@dataclass(frozen=True)
class OpNode:
    """An operator over child nodes.

    ``weights`` is populated only for ``#wsum``; ``window`` only for
    ``#uwN`` (unordered window) and ``#phrase`` (window 1 + order).
    """

    op: str
    children: Tuple["QueryNode", ...]
    weights: Tuple[float, ...] = ()
    window: int = 0


QueryNode = Union[TermNode, OpNode]


def parse_query(text: str) -> QueryNode:
    """Parse query text into a tree; bare term lists become ``#sum``.

    Raises
    ------
    QueryError
        On empty input, unbalanced parentheses, unknown operators, or
        malformed ``#wsum`` weights.
    """
    tokens = _TOKEN.findall(text)
    if not tokens:
        raise QueryError("empty query")
    parser = _Parser(tokens)
    nodes = parser.parse_nodes(top_level=True)
    if parser.peek() is not None:
        raise QueryError(f"unexpected token {parser.peek()!r}")
    if not nodes:
        raise QueryError("query has no terms")
    if len(nodes) == 1:
        return nodes[0]
    return OpNode(op="sum", children=tuple(nodes))


class _Parser:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._pos += 1
        return token

    def parse_nodes(self, top_level: bool = False) -> List[QueryNode]:
        nodes: List[QueryNode] = []
        while True:
            token = self.peek()
            if token is None or token == ")":
                return nodes
            nodes.append(self.parse_node())

    def parse_node(self) -> QueryNode:
        token = self.take()
        if token.startswith("#"):
            return self._parse_operator(token[1:].lower())
        if token in ("(", ")"):
            raise QueryError(f"misplaced {token!r}")
        return TermNode(term=token.lower())

    def _parse_operator(self, name: str) -> OpNode:
        window = 0
        if name.startswith("uw") and name[2:].isdigit():
            window = int(name[2:])
            name = "uw"
        elif name.startswith("od") and name[2:].isdigit():
            window = int(name[2:])
            name = "od"
        if name not in OPERATORS:
            raise QueryError(f"unknown operator #{name}")
        if self.take() != "(":
            raise QueryError(f"expected '(' after #{name}")
        if name == "wsum":
            weights, children = self._parse_weighted_body()
            node = OpNode(op="wsum", children=tuple(children), weights=tuple(weights))
        else:
            children = self.parse_nodes()
            node = OpNode(op=name, children=tuple(children), window=window)
        if self.take() != ")":
            raise QueryError(f"expected ')' closing #{name}")
        if not node.children:
            raise QueryError(f"#{name} has no arguments")
        if name == "not" and len(node.children) != 1:
            raise QueryError("#not takes exactly one argument")
        if name in ("phrase", "uw", "od", "syn") and not all(
            isinstance(c, TermNode) for c in node.children
        ):
            raise QueryError(f"#{name} takes only plain terms")
        if name in ("uw", "od") and window < 1:
            raise QueryError(f"#{name} needs a window, e.g. #{name}3( ... )")
        return node

    def _parse_weighted_body(self) -> Tuple[List[float], List[QueryNode]]:
        weights: List[float] = []
        children: List[QueryNode] = []
        while True:
            token = self.peek()
            if token is None or token == ")":
                if len(weights) != len(children):
                    raise QueryError("#wsum needs a weight before each argument")
                return weights, children
            try:
                weights.append(float(self.take()))
            except ValueError:
                raise QueryError(
                    "#wsum arguments must alternate weight then node"
                ) from None
            if self.peek() in (None, ")"):
                raise QueryError("#wsum weight without a following node")
            children.append(self.parse_node())


def query_terms(node: QueryNode) -> Iterator[str]:
    """Every term mentioned in the tree (with repeats), in query order.

    This is what the engine's reservation pass walks: "Before the query
    tree is processed, we quickly scan the tree and reserve any objects
    required by the query that are already resident."
    """
    if isinstance(node, TermNode):
        yield node.term
        return
    for child in node.children:
        yield from query_terms(child)


def count_nodes(node: QueryNode) -> int:
    """Total nodes in the tree (drives the per-node CPU charge)."""
    if isinstance(node, TermNode):
        return 1
    return 1 + sum(count_nodes(child) for child in node.children)


def format_query(node: QueryNode) -> str:
    """Render a tree back to query-language text (round-trippable)."""
    if isinstance(node, TermNode):
        return node.term
    if node.op == "wsum":
        inner = " ".join(
            f"{w:g} {format_query(c)}" for w, c in zip(node.weights, node.children)
        )
        return f"#wsum( {inner} )"
    if node.op in ("uw", "od"):
        name = f"{node.op}{node.window}"
    else:
        name = node.op
    inner = " ".join(format_query(c) for c in node.children)
    return f"#{name}( {inner} )"
