"""Document-at-a-time query evaluation.

Section 3.1 of the paper: term-at-a-time processing "requires large
amounts of memory for large collections, because several inverted list
records must be kept in memory simultaneously.  A 'document-at-a-time'
approach, which gathered all of the evidence for one document before
proceeding to the next, might scale better to large collections.
However, it would be cumbersome with the current custom B-tree package."

With linked records (:class:`~repro.inquery.invfile.LinkedMnemeInvertedFile`)
it is not cumbersome: each term contributes a
:class:`~repro.inquery.streams.PostingStream` that keeps one chunk
resident, the streams merge in document order, and every document's
belief is finished before the next document is touched.  The ranking is
bit-identical to the term-at-a-time engine's for the supported query
shapes (flat ``#sum`` / ``#wsum`` over terms — the bag-of-words form
document-at-a-time is classically defined for; structured operators stay
on the term-at-a-time engine).
"""

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import BadBlockError, PruningUnsupportedError, QueryError
from ..fastpath import state as _fastpath
from ..simdisk import SimClock
from .engine import DEFAULT_TOP_K, QueryResult
from .indexer import CollectionIndex
from .network import DEFAULT_BELIEF, inquery_idf
from .query import OpNode, QueryNode, TermNode, count_nodes, parse_query
from .streams import (
    FaultTolerantStream,
    PostingStream,
    RecordingStream,
    ReplayStream,
    TombstoneFilterStream,
    merge_streams,
)


@dataclass
class DAATResult(QueryResult):
    """A ranked result plus the stream-memory high-water mark.

    Degraded-mode nuance for streamed evaluation: a chunked record that
    fails *mid-stream* counts in ``terms_failed`` but its already-read
    chunks did contribute evidence — the stream ends early rather than
    un-scoring documents already finished.  A record unreadable at
    stream creation contributes nothing, as in the term-at-a-time
    engine.

    The pruning counters are zero whenever the query was evaluated
    exhaustively (``pruned`` is False): either pruning was off, or
    ``prune="auto"`` fell back because no safe bound was available.
    """

    peak_resident_bytes: int = 0
    documents_scored: int = 0
    pruned: bool = False
    documents_skipped: int = 0
    blocks_skipped: int = 0
    prune_threshold_updates: int = 0


def _flatten(tree: QueryNode) -> Tuple[List[str], List[float]]:
    """Terms and weights of a flat #sum/#wsum tree.

    Raises
    ------
    QueryError
        If the tree uses operators document-at-a-time does not cover.
    """
    if isinstance(tree, TermNode):
        return [tree.term], [1.0]
    if isinstance(tree, OpNode) and tree.op in ("sum", "wsum"):
        terms: List[str] = []
        weights: List[float] = []
        child_weights = tree.weights or (1.0,) * len(tree.children)
        for child, weight in zip(tree.children, child_weights):
            if not isinstance(child, TermNode):
                raise QueryError(
                    "document-at-a-time evaluation covers flat #sum/#wsum "
                    f"queries; found nested #{child.op}"
                )
            terms.append(child.term)
            weights.append(float(weight))
        return terms, weights
    raise QueryError(
        "document-at-a-time evaluation covers flat #sum/#wsum queries; "
        f"found #{tree.op}"
    )


class DocumentAtATimeEngine:
    """Ranks documents by streaming merged postings, one doc at a time."""

    def __init__(
        self,
        index: CollectionIndex,
        clock: Optional[SimClock] = None,
        top_k: int = DEFAULT_TOP_K,
        use_reservation: bool = True,
        use_fastpath: Optional[bool] = None,
        prune: str = "off",
    ):
        self.index = index
        self.clock = clock if clock is not None else index.fs.disk.clock
        self.top_k = top_k
        self.use_reservation = use_reservation
        # Same semantics as the term-at-a-time engine: the global
        # toggle (REPRO_FASTPATH=0 / use_fastpath(False)) is a
        # kill-switch overriding per-engine opt-in.
        self.use_fastpath = (use_fastpath is not False) and _fastpath.enabled()
        # Dynamic pruning mode: "off" (exhaustive, the default),
        # "auto" (prune when safe bounds exist, else evaluate
        # exhaustively), or "require" (raise PruningUnsupportedError
        # instead of falling back — for invariance harnesses that must
        # know pruning actually ran).
        if prune not in ("off", "auto", "require"):
            raise QueryError(f"unknown prune mode {prune!r}")
        self.prune = prune
        #: Optional decoded-term cache attached by the serving layer
        #: (``None`` = the historical path, byte-for-byte).
        self.term_cache = None

    def run_query(self, text: str) -> DAATResult:
        tree = parse_query(text)
        cost = self.clock.cost
        self.clock.charge_user(cost.cpu_ms_per_query_node * count_nodes(tree))
        terms, weights = _flatten(tree)
        total_weight = sum(weights)
        if total_weight <= 0:
            raise QueryError("weights must sum to a positive value")

        entries = [self.index.term_entry(term) for term in terms]
        if self.prune != "off":
            weighted = isinstance(tree, OpNode) and tree.op == "wsum"
            try:
                return self._run_pruned(
                    text, entries, weights, total_weight, weighted
                )
            except PruningUnsupportedError:
                if self.prune == "require":
                    raise
                # auto: no safe bound — evaluate exhaustively below.
        if self.use_reservation:
            # Best-effort, like the term-at-a-time engine: a storage
            # failure while probing residency pins nothing and moves on.
            for entry in entries:
                if entry is not None and entry.storage_key:
                    try:
                        self.index.store.reserve(entry.storage_key)
                    except BadBlockError:
                        break

        n_docs = max(len(self.index.doctable), 1)
        avg_len = max(self.index.doctable.average_length, 1.0)
        streams: List[Tuple[int, PostingStream]] = []
        idf: Dict[int, float] = {}
        lookups = 0
        attempted = 0
        failed = [0]  # list so mid-stream failure callbacks can bump it
        try:
            cache = self.term_cache
            for position, entry in enumerate(entries):
                if entry is None or entry.df == 0 or entry.storage_key == 0:
                    continue
                attempted += 1
                term = terms[position]
                hit = None
                if cache is not None:
                    self.clock.charge_user(cache.probe_ms)
                    # The tape is tied to the physical record it
                    # drained: a storage key reassigned by compaction
                    # re-homing misses instead of replaying stale data.
                    hit = cache.get(
                        "stream", term, fingerprint=(entry.storage_key,)
                    )
                if hit is not None:
                    initial_resident, tape = hit.payload
                    stream: PostingStream = ReplayStream(tape, initial_resident)
                    dead = hit.dead | self.index.tombstones
                    if dead:
                        stream = TombstoneFilterStream(stream, dead)
                    streams.append((position, stream))
                    lookups += 1
                    idf[position] = inquery_idf(n_docs, entry.df)
                    # The upfront decode charge is elided: a replay
                    # decodes nothing (the probe above is the cost).
                    continue
                try:
                    inner = self.index.store.stream_postings(entry.storage_key)
                except BadBlockError:
                    # Whole-record streams read eagerly; an unreadable
                    # record degrades to "term contributes no evidence".
                    failed[0] += 1
                    continue
                stream = FaultTolerantStream(
                    inner, lambda _error: failed.__setitem__(0, failed[0] + 1)
                )
                if cache is not None:
                    stream = RecordingStream(
                        stream,
                        self._tape_committer(cache, term, entry),
                    )
                if self.index.tombstones:
                    stream = TombstoneFilterStream(stream, self.index.tombstones)
                streams.append((position, stream))
                lookups += 1
                idf[position] = inquery_idf(n_docs, entry.df)
                self.clock.charge_user(
                    cost.cpu_ms_per_kb_decode * (_record_bytes(entry) / 1024.0)
                )

            # The belief arithmetic below matches the term-at-a-time
            # network's expressions (order of operations included), so
            # rankings are bit-identical across the two engines.
            weighted = isinstance(tree, OpNode) and tree.op == "wsum"
            if self.use_fastpath and streams:
                from ..fastpath.daat import score_streams

                scores, peak_resident, scored = score_streams(
                    streams, len(weights), weights, total_weight, weighted,
                    idf, self.index.doctable, avg_len, self.clock,
                )
                return self._finish(
                    text, scores, lookups, peak_resident, scored,
                    attempted, failed[0],
                )
            scores: Dict[int, float] = {}
            peak_resident = 0
            scored = 0
            for doc_id, evidence in merge_streams(streams):
                resident = sum(stream.resident_bytes for _t, stream in streams)
                if resident > peak_resident:
                    peak_resident = resident
                doc_len = self.index.doctable.length_of(doc_id)
                beliefs = [DEFAULT_BELIEF] * len(weights)
                for position, (_doc, positions) in evidence:
                    tf = len(positions)
                    tf_w = tf / (tf + 0.5 + 1.5 * doc_len / avg_len)
                    beliefs[position] = (
                        DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_w * idf[position]
                    )
                # Fold in the exact order the term-at-a-time network
                # does — #wsum in particular must be `(Σ w·b) / Σw` even
                # for a single term, or the two engines drift by an ULP
                # (e.g. (3·b)/3 != b in binary floating point).
                if weighted:
                    scores[doc_id] = (
                        sum(w * b for w, b in zip(weights, beliefs)) / total_weight
                    )
                elif len(beliefs) == 1:
                    scores[doc_id] = beliefs[0]
                else:
                    scores[doc_id] = sum(beliefs) / len(beliefs)
                scored += 1
                self.clock.charge_user(cost.cpu_ms_per_posting * (len(evidence) + 1))
        finally:
            self.index.store.release_reservations()
        return self._finish(
            text, scores, lookups, peak_resident, scored, attempted, failed[0]
        )

    def _tape_committer(self, cache, term: str, entry):
        """Closure that caches a cleanly drained stream recording."""
        dead = set(self.index.tombstones)
        fingerprint = (entry.storage_key,)
        nbytes = _record_bytes(entry)

        def commit(recording: RecordingStream) -> None:
            cache.put(
                "stream", term,
                (recording.initial_resident, recording.tape),
                nbytes, dead=dead, fingerprint=fingerprint,
            )

        return commit

    def _finish(
        self,
        text: str,
        scores,
        lookups: int,
        peak_resident: int,
        scored: int,
        attempted: int = 0,
        failed: int = 0,
    ) -> DAATResult:
        """Charge the ranking pass and select the top k.

        ``scores`` is a dict on the reference path and an
        :class:`~repro.fastpath.beliefs.ArrayBeliefs` on the fast path;
        both selections produce the identical ranked list.
        """
        self.clock.charge_user(self.clock.cost.cpu_ms_per_posting * len(scores))
        if isinstance(scores, dict):
            # O(n log k) selection; identical ranking to the full sort.
            ranking = heapq.nsmallest(
                self.top_k, scores.items(), key=lambda item: (-item[1], item[0])
            )
        else:
            from ..fastpath.topk import rank_arrays

            ranking = rank_arrays(scores, self.top_k)
        return DAATResult(
            query=text,
            ranking=ranking,
            terms_looked_up=lookups,
            degraded=failed > 0,
            terms_attempted=attempted,
            terms_failed=failed,
            peak_resident_bytes=peak_resident,
            documents_scored=scored,
        )

    def _run_pruned(
        self,
        text: str,
        entries: List,
        weights: List[float],
        total_weight: float,
        weighted: bool,
    ) -> DAATResult:
        """MaxScore top-k evaluation (see :mod:`repro.fastpath.prune`).

        Raises :class:`~repro.errors.PruningUnsupportedError` before any
        storage access when no safe bound exists, so ``prune="auto"``
        can fall back to the exhaustive path with nothing consumed.
        """
        from ..fastpath.prune import run_pruned

        avg_len = max(self.index.doctable.average_length, 1.0)
        try:
            outcome = run_pruned(
                self.index.store,
                entries,
                weights,
                total_weight,
                weighted,
                self.index.doctable,
                avg_len,
                self.clock,
                self.top_k,
                self.use_fastpath,
                tombstones=self.index.tombstones,
                term_cache=self.term_cache,
            )
        finally:
            self.index.store.release_reservations()
        return DAATResult(
            query=text,
            ranking=outcome.ranking,
            terms_looked_up=outcome.lookups,
            degraded=outcome.failed > 0,
            terms_attempted=outcome.attempted,
            terms_failed=outcome.failed,
            peak_resident_bytes=outcome.peak_resident_bytes,
            documents_scored=outcome.documents_scored,
            pruned=True,
            documents_skipped=outcome.documents_skipped,
            blocks_skipped=outcome.blocks_skipped,
            prune_threshold_updates=outcome.prune_threshold_updates,
        )

    def run_batch(self, queries: List[str]) -> List[DAATResult]:
        return [self.run_query(text) for text in queries]


def _record_bytes(entry) -> int:
    """Rough record size for the decode CPU charge (df-proportional)."""
    return 2 + entry.df * 4 + entry.ctf * 2
