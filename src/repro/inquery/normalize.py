"""Shared query/term normalization: tokenize → stop → stem → canonical tree.

The same lowercase/stopword/stem pipeline runs in four places: document
indexing (:class:`~repro.inquery.indexer.IndexBuilder`), incremental
document addition, dictionary lookup at query time
(:meth:`~repro.inquery.indexer.CollectionIndex.term_entry`), and the
serving layer's result-cache key.  Before this module each of them
spelled the pipeline out by hand; a drift between any pair would be
silent and catastrophic — a cache key that normalizes differently from
the engine would serve one query's ranking for a different query.  Now
they all call :func:`normalize_term`, so the cache key and both engines
agree on the canonical form *by construction*.

:func:`canonical_query_key` renders the normalized tree back to text.
Two query strings with the same key are guaranteed to evaluate
identically on every engine:

* terms that normalize to the same stem hit the same dictionary entry
  (``term_entry`` is exactly ``lookup(normalize_term(raw))``);
* stopped terms are collapsed to one reserved marker — every stopword
  yields ``term_entry(...) is None`` and therefore the identical
  "no evidence" belief, regardless of which stopword it was;
* operator structure, ``#wsum`` weights, and proximity windows are
  preserved verbatim, and child order is **never** reordered — belief
  combination folds floats in child order, so reordering could change
  low-order result bits.

Weights are rendered with :func:`repr`, the shortest round-tripping
float form, not ``%g`` — two different weights must never collide into
one key.
"""

from typing import Callable, FrozenSet, Optional

from .query import OpNode, QueryNode, TermNode, parse_query
from .stem import stem as default_stem

#: Canonical stand-in for a stopped term in a query key.  The NUL byte
#: cannot appear in a parsed term (the tokenizer splits on whitespace
#: and punctuation only, but no query source produces NUL), so the
#: marker cannot collide with a real indexed term.
STOPPED_TERM = "\x00stopped\x00"


def normalize_term(
    raw_term: str,
    stopwords: FrozenSet[str] = frozenset(),
    stem_fn: Callable[[str], str] = default_stem,
) -> Optional[str]:
    """Lowercase, drop stopwords, stem: the index's term pipeline.

    Returns the dictionary-form token, or ``None`` for a stopped term.
    Every consumer of raw terms — builder, incremental add, query-time
    lookup, cache key — routes through here.
    """
    token = raw_term.lower()
    if token in stopwords:
        return None
    return stem_fn(token)


def normalize_tree(
    node: QueryNode,
    stopwords: FrozenSet[str] = frozenset(),
    stem_fn: Callable[[str], str] = default_stem,
) -> QueryNode:
    """The query tree with every term in canonical (dictionary) form.

    Structure, child order, weights, and windows are untouched; only
    leaves change.  Stopped terms become :data:`STOPPED_TERM` so that
    all queries differing only in *which* stopword they used map to the
    same canonical tree (they evaluate identically: a stopped term has
    no dictionary entry and contributes the default belief).
    """
    if isinstance(node, TermNode):
        normalized = normalize_term(node.term, stopwords, stem_fn)
        return TermNode(term=STOPPED_TERM if normalized is None else normalized)
    return OpNode(
        op=node.op,
        children=tuple(
            normalize_tree(child, stopwords, stem_fn) for child in node.children
        ),
        weights=node.weights,
        window=node.window,
    )


def render_canonical(node: QueryNode) -> str:
    """Render a (normalized) tree to its canonical key text.

    Like :func:`~repro.inquery.query.format_query` but with exact
    (``repr``) weight rendering, so distinct ``#wsum`` weights can never
    collide into one cache key.
    """
    if isinstance(node, TermNode):
        return node.term
    if node.op == "wsum":
        inner = " ".join(
            f"{weight!r} {render_canonical(child)}"
            for weight, child in zip(node.weights, node.children)
        )
        return f"#wsum( {inner} )"
    name = f"{node.op}{node.window}" if node.op in ("uw", "od") else node.op
    inner = " ".join(render_canonical(child) for child in node.children)
    return f"#{name}( {inner} )"


def canonical_query_key(
    text: str,
    stopwords: FrozenSet[str] = frozenset(),
    stem_fn: Callable[[str], str] = default_stem,
) -> str:
    """Parse → normalize → render: the result-cache key for a query.

    Raises :class:`~repro.errors.QueryError` exactly when the engines
    would (same parser), so a cache front end never admits a key for a
    query the backend cannot evaluate.
    """
    return render_canonical(normalize_tree(parse_query(text), stopwords, stem_fn))
