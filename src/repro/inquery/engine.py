"""The retrieval engine: term-at-a-time evaluation and ranking.

Ties together the query parser, the inference network, the hash
dictionary, and whichever inverted file backend the system was built
with.  Before a query tree is processed the engine performs the paper's
reservation optimization: "we quickly scan the tree and 'reserve' any
objects required by the query that are already resident, potentially
avoiding a bad replacement choice."

All engine work charges *user* CPU on the shared simulated clock (record
decompression, belief arithmetic, ranking); the storage layers below
charge system CPU and I/O wait.  That split is what separates Table 3
from Table 4.

With ``use_fastpath`` (the default when numpy is present) the belief
evaluation runs on the vectorized kernels in :mod:`repro.fastpath`.
The fast path performs the identical storage accesses and simulated
charges and produces bit-identical rankings — it changes real
wall-clock time only.
"""

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import BadBlockError
from ..fastpath import state as _fastpath
from ..simdisk import SimClock
from .indexer import CollectionIndex
from .network import InferenceNetwork, TermProvider
from .postings import Posting, decode_record
from .query import QueryNode, count_nodes, parse_query, query_terms

#: Documents returned per query across the whole system — the engines,
#: the shard scheduler, the query service, the CLI, and the benchmarks
#: all default to this single value, so a "top k" is the same k
#: everywhere (and the serving cache key stays coherent).
DEFAULT_TOP_K = 50


@dataclass
class QueryResult:
    """Ranked output of one query.

    ``degraded`` means at least one term's inverted list stayed
    unreadable after the store's bounded retries (and repair, where a
    redo log was attached) and was evaluated as contributing no
    evidence.  The ranking is still deterministic and correctly ordered
    *for the evidence that was readable*; ``completeness`` quantifies
    how much evidence that was.
    """

    query: str
    ranking: List[Tuple[int, float]]  #: (doc id, belief), best first
    terms_looked_up: int = 0
    degraded: bool = False
    terms_attempted: int = 0  #: stored terms the evaluation tried to read
    terms_failed: int = 0     #: stored terms skipped as unreadable

    def doc_ids(self) -> List[int]:
        return [doc for doc, _score in self.ranking]

    @property
    def completeness(self) -> float:
        """Fraction of attempted stored terms whose evidence was used."""
        if not self.terms_attempted:
            return 1.0
        return 1.0 - self.terms_failed / self.terms_attempted


class _IndexProvider(TermProvider):
    """Adapts a :class:`CollectionIndex` to the inference network."""

    #: Optional decoded-term cache (:class:`repro.serve.termcache.TermCache`)
    #: attached by the owning engine/runner.  ``None`` (the default) is
    #: the historical path, byte-for-byte.  Duck-typed on purpose: this
    #: layer never imports the serve package.
    term_cache = None

    def __init__(self, index: CollectionIndex, clock: SimClock, reserve: bool):
        self._index = index
        self._clock = clock
        self._reserve = reserve
        self.lookups = 0
        self.attempts = 0   #: stored-term reads attempted
        self.failures = 0   #: stored-term reads that stayed unreadable

    def _cache_probe(self, kind: str, term: str):
        """Probe the attached term cache at one read choke point.

        Returns the cache entry or ``None``; either way the probe cost
        is charged so latency accounting stays honest.  The dictionary
        guards run first (identically to the cache-off path), so a term
        with no stored record never reaches the cache at all.
        """
        cache = self.term_cache
        if cache is None:
            return None
        entry = self._index.term_entry(term)
        if entry is None or entry.df == 0 or entry.storage_key == 0:
            return None
        self._clock.charge_user(cache.probe_ms)
        return cache.get(kind, term)

    @property
    def doc_count(self) -> int:
        return len(self._index.doctable)

    @property
    def average_doc_length(self) -> float:
        return self._index.doctable.average_length

    def doc_length(self, doc_id: int) -> int:
        return self._index.doctable.length_of(doc_id)

    def _fetch(self, term: str) -> Optional[bytes]:
        """Common storage access for both posting representations.

        An unreadable record (after the store's own retries and repair)
        degrades to "no evidence for this term" instead of aborting the
        query; the engine surfaces the failure count on the result.
        Only :class:`~repro.errors.BadBlockError` and subclasses degrade
        — anything else is a bug and propagates.
        """
        entry = self._index.term_entry(term)
        if entry is None or entry.df == 0 or entry.storage_key == 0:
            return None
        self.attempts += 1
        try:
            record = self._index.store.fetch(entry.storage_key)
        except BadBlockError:
            self.failures += 1
            return None
        self.lookups += 1
        cost = self._clock.cost
        self._clock.charge_user(cost.cpu_ms_per_kb_decode * (len(record) / 1024.0))
        return record

    def postings(self, term: str) -> Optional[List[Posting]]:
        hit = self._cache_probe("postings", term)
        if hit is not None:
            # The cached payload is the epoch-raw decode: skip the
            # store fetch, the decode charge, and the per-posting
            # materialization (the structures already exist; only the
            # list spine is copied).  Scoring still pays per posting at
            # combine time.  Rebuilding a tombstone-filtered view is
            # real per-posting work and is charged as such.
            self.attempts += 1
            self.lookups += 1
            postings = hit.payload
            dead = hit.dead | self._index.tombstones
            if dead:
                postings = [(d, p) for d, p in postings if d not in dead]
                self._clock.charge_user(
                    self._clock.cost.cpu_ms_per_posting
                    * sum(len(p) for _d, p in postings)
                )
            else:
                postings = list(postings)  # isolate the cached list
            return postings
        record = self._fetch(term)
        if record is None:
            return None
        postings = decode_record(record)
        if self.term_cache is not None:
            # Cache an isolated copy of the epoch-raw decode (postings
            # tuples are immutable; the list spine is per-consumer).
            self.term_cache.put(
                "postings", term, list(postings), len(record),
                dead=self._index.tombstones,
            )
        # Tombstoned documents are filtered *before* the per-posting
        # charge, so a query sees (and pays for) exactly the postings a
        # fresh build of the live corpus would contain.
        dead = self._index.tombstones
        if dead:
            postings = [(d, p) for d, p in postings if d not in dead]
        self._clock.charge_user(
            self._clock.cost.cpu_ms_per_posting * sum(len(p) for _d, p in postings)
        )
        return postings

    def charge_combine(self, updates: int) -> None:
        self._clock.charge_user(self._clock.cost.cpu_ms_per_posting * updates)


class _FastIndexProvider(_IndexProvider):
    """Array-returning provider: same accesses and charges, no dicts."""

    _doc_length_lut = None
    #: Optional decoded-record memo shared across queries (engine-owned).
    #: Keyed by record *content*, so an updated record never hits stale
    #: arrays.  The store fetch and the decode CPU charge still happen
    #: on every lookup — the memo elides only real decode time.
    decode_cache = None

    def postings_arrays(self, term: str):
        hit = self._cache_probe("arrays", term)
        if hit is not None:
            # Same charge model as the reference provider's hit path:
            # a clean hit shares the decoded arrays for just the probe
            # cost; a tombstone-filtered rebuild pays per surviving
            # position.
            self.attempts += 1
            self.lookups += 1
            arrays = hit.payload
            dead = hit.dead | self._index.tombstones
            if dead:
                from ..fastpath.codec import filter_record_arrays

                arrays = filter_record_arrays(arrays, dead)
                self._clock.charge_user(
                    self._clock.cost.cpu_ms_per_posting * arrays.ctf
                )
            return arrays
        record = self._fetch(term)
        if record is None:
            return None
        cache = self.decode_cache
        arrays = None if cache is None else cache.get(record)
        if arrays is None:
            from ..fastpath.codec import decode_record_arrays

            arrays = decode_record_arrays(record)
            if cache is not None:
                cache.put(record, arrays)
        if self.term_cache is not None:
            self.term_cache.put(
                "arrays", term, arrays, len(record),
                dead=self._index.tombstones,
            )
        # The cache stays keyed by (and holds) the *unfiltered* decode;
        # tombstones are dropped after retrieval, before the charge, so
        # the cost matches the reference path's filtered `sum(len(p))`.
        dead = self._index.tombstones
        if dead:
            from ..fastpath.codec import filter_record_arrays

            arrays = filter_record_arrays(arrays, dead)
        # Identical charge to the reference path: one unit per position
        # (`sum(len(p))` over the decoded postings == ctf).
        self._clock.charge_user(
            self._clock.cost.cpu_ms_per_posting * arrays.ctf
        )
        return arrays

    def doc_length_array(self, doc_ids):
        if self._doc_length_lut is None:
            from ..fastpath.daat import doc_length_lookup

            self._doc_length_lut = doc_length_lookup(self._index.doctable)
        return self._doc_length_lut(doc_ids)


class RetrievalEngine:
    """Processes queries against one :class:`CollectionIndex`.

    Parameters
    ----------
    index:
        The indexed collection (any storage backend).
    clock:
        The machine's simulated clock; defaults to the one owned by the
        index's file system disk.
    top_k:
        Documents returned per query.
    use_reservation:
        The query-tree reserve pass; on by default (the paper's system),
        switchable for the reservation ablation.
    use_fastpath:
        Evaluate beliefs on the vectorized kernels (bit-identical
        results, real time only).  ``None`` follows the global
        :mod:`repro.fastpath` toggle.
    """

    def __init__(
        self,
        index: CollectionIndex,
        clock: Optional[SimClock] = None,
        top_k: int = DEFAULT_TOP_K,
        use_reservation: bool = True,
        use_fastpath: Optional[bool] = None,
    ):
        self.index = index
        self.clock = clock if clock is not None else index.fs.disk.clock
        self.top_k = top_k
        self.use_reservation = use_reservation
        # The global toggle is a kill-switch: REPRO_FASTPATH=0 (or the
        # use_fastpath(False) context) overrides per-engine opt-in.
        self.use_fastpath = (
            (use_fastpath is not False) and _fastpath.enabled()
        )
        self._decode_cache = None
        if self.use_fastpath:
            from ..fastpath.codec import DecodeCache

            self._decode_cache = DecodeCache()
        #: Optional decoded-term cache attached by the serving layer
        #: (``None`` = the historical path, byte-for-byte).
        self.term_cache = None

    def _build_network(self, provider: _IndexProvider) -> InferenceNetwork:
        if self.use_fastpath:
            from ..fastpath.network import FastInferenceNetwork

            return FastInferenceNetwork(provider)
        return InferenceNetwork(provider)

    def run_query(self, text: str) -> QueryResult:
        """Parse, reserve, evaluate, and rank one query."""
        tree = parse_query(text)
        self.clock.charge_user(self.clock.cost.cpu_ms_per_query_node * count_nodes(tree))
        if self.use_reservation:
            self._reserve_resident_objects(tree)
        provider_cls = _FastIndexProvider if self.use_fastpath else _IndexProvider
        provider = provider_cls(self.index, self.clock, self.use_reservation)
        if self.use_fastpath:
            provider.decode_cache = self._decode_cache
        provider.term_cache = self.term_cache
        network = self._build_network(provider)
        try:
            scores, _default = network.evaluate(tree)
            ranking = self._rank(scores)
        finally:
            self.index.store.release_reservations()
        return QueryResult(
            query=text,
            ranking=ranking,
            terms_looked_up=provider.lookups,
            degraded=provider.failures > 0,
            terms_attempted=provider.attempts,
            terms_failed=provider.failures,
        )

    def run_batch(self, queries: List[str]) -> List[QueryResult]:
        """Process a query set in batch mode, as the paper's runs do."""
        return [self.run_query(text) for text in queries]

    def _reserve_resident_objects(self, tree: QueryNode) -> None:
        """The pre-evaluation scan that pins already-resident objects.

        Reservation is an optimization, never a requirement: a storage
        failure while probing residency (e.g. an auxiliary table read on
        a failing disk) degrades to "nothing pinned" — the evaluation
        itself handles the real read failures.
        """
        for term in query_terms(tree):
            entry = self.index.term_entry(term)
            if entry is not None and entry.storage_key:
                try:
                    self.index.store.reserve(entry.storage_key)
                except BadBlockError:
                    return

    def _rank(self, scores) -> List[Tuple[int, float]]:
        """Document ranking is a selection problem (charged as user CPU).

        Top-k selection is O(n log k) against the old full sort's
        O(n log n); the returned ranking (order and ties) is identical.
        """
        self.clock.charge_user(self.clock.cost.cpu_ms_per_posting * len(scores))
        if isinstance(scores, dict):
            return heapq.nsmallest(
                self.top_k, scores.items(), key=lambda item: (-item[1], item[0])
            )
        from ..fastpath.topk import rank_arrays

        return rank_arrays(scores, self.top_k)
