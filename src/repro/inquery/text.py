"""Tokenization for documents and queries."""

import re
from typing import List

_WORD = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Split text into lowercase alphanumeric word tokens.

    Punctuation separates tokens; case is folded.  This matches the
    simple word-based indexing of early-90s INQUERY (no phrase or markup
    handling at the tokenizer level).
    """
    return _WORD.findall(text.lower())
