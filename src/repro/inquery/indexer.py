"""Collection indexing: building the inverted file.

"Indexing a large collection can be very expensive because it is
dominated by a sorting problem, where the inverted list entries for every
term appearance in the collection are sorted by term identifier and
document identifier."  :class:`IndexBuilder` implements exactly that:
term appearances accumulate as (term id, doc id, position) triples,
spill into sorted runs when the in-memory budget is reached, and a k-way
merge over the runs streams records (in term-id order) into whichever
:class:`~repro.inquery.invfile.InvertedFileStore` backs the index.

The result is a :class:`CollectionIndex`: the hash dictionary, document
table, and storage backend bound together, ready for the retrieval
engine.
"""

import heapq
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Tuple

from ..errors import IndexError_
from ..fastpath import state as _fastpath
from ..simdisk import SimFileSystem
from .dictionary import HashDictionary
from .documents import Document, DocTable
from .invfile import InvertedFileStore
from .normalize import normalize_term
from .postings import Posting, encode_record, merge_records, uncompressed_size
from .stem import stem as default_stem
from .text import tokenize


@dataclass
class IndexStats:
    """Facts gathered while building (feeds Table 1 and Figure 1)."""

    documents: int = 0
    postings: int = 0
    records: int = 0
    compressed_bytes: int = 0
    uncompressed_bytes: int = 0
    record_sizes: List[int] = field(default_factory=list)

    @property
    def compression_rate(self) -> float:
        """Fraction of space saved by compression (the paper's ~60%)."""
        if not self.uncompressed_bytes:
            return 0.0
        return 1.0 - self.compressed_bytes / self.uncompressed_bytes


@dataclass
class CollectionIndex:
    """An indexed collection: dictionary + documents + inverted file."""

    fs: SimFileSystem
    dictionary: HashDictionary
    doctable: DocTable
    store: InvertedFileStore
    stats: IndexStats
    stopwords: frozenset = frozenset()
    stem_fn: Callable[[str], str] = default_stem
    #: Doc ids deleted but not yet folded out of the records.  Engines
    #: filter these at postings-decode time; compaction rewrites the
    #: affected records and clears the set (see ``fold_tombstones``).
    tombstones: set = field(default_factory=set)

    def term_entry(self, raw_term: str):
        """Dictionary entry for a raw (unstemmed) term, or ``None``.

        Routed through :func:`~repro.inquery.normalize.normalize_term`,
        the same pipeline the builder and the serving cache key use, so
        a query-time lookup can never drift from what was indexed.
        """
        token = normalize_term(raw_term, self.stopwords, self.stem_fn)
        if token is None:
            return None
        return self.dictionary.lookup(token)

    _STATS = struct.Struct("<QQQQQ")

    def save(self) -> None:
        """Persist the dictionary, document table, and scalar statistics."""
        for name, saver in (
            ("index.dict", self.dictionary.save),
            ("index.docs", self.doctable.save),
        ):
            file = self.fs.open(name) if self.fs.exists(name) else self.fs.create(name)
            saver(file)
        stats_name = "index.stats"
        stats_file = (
            self.fs.open(stats_name)
            if self.fs.exists(stats_name)
            else self.fs.create(stats_name)
        )
        stats_file.write(0, self._STATS.pack(
            self.stats.documents,
            self.stats.postings,
            self.stats.records,
            self.stats.compressed_bytes,
            self.stats.uncompressed_bytes,
        ))
        tomb_name = "index.tomb"
        if self.tombstones or self.fs.exists(tomb_name):
            tomb_file = (
                self.fs.open(tomb_name)
                if self.fs.exists(tomb_name)
                else self.fs.create(tomb_name)
            )
            doc_ids = sorted(self.tombstones)
            tomb_file.truncate(0)
            tomb_file.write(
                0, struct.pack(f"<I{len(doc_ids)}I", len(doc_ids), *doc_ids)
            )
        self.store.flush()

    @classmethod
    def open(
        cls,
        fs: SimFileSystem,
        store: InvertedFileStore,
        stopwords: Iterable[str] = (),
        stem_fn: Callable[[str], str] = default_stem,
    ) -> "CollectionIndex":
        """Bind a previously saved index: the fresh-process open path.

        ``store`` must be constructed over the same file system with the
        same backend configuration the index was built with (backend
        choice is application configuration, as with Mneme pools).
        Per-record sizes are not persisted; the restored ``stats`` holds
        the scalar totals only.
        """
        dictionary = HashDictionary.load(fs.open("index.dict"))
        doctable = DocTable.load(fs.open("index.docs"))
        stats = IndexStats()
        if fs.exists("index.stats"):
            raw = fs.open("index.stats").read(0, cls._STATS.size)
            (stats.documents, stats.postings, stats.records,
             stats.compressed_bytes, stats.uncompressed_bytes) = cls._STATS.unpack(raw)
        tombstones: set = set()
        if fs.exists("index.tomb"):
            tomb_file = fs.open("index.tomb")
            raw = tomb_file.read(0, tomb_file.size)
            (count,) = struct.unpack_from("<I", raw, 0)
            tombstones = set(struct.unpack_from(f"<{count}I", raw, 4))
        return cls(
            fs=fs,
            dictionary=dictionary,
            doctable=doctable,
            store=store,
            stats=stats,
            stopwords=frozenset(stopwords),
            stem_fn=stem_fn,
            tombstones=tombstones,
        )


class IndexBuilder:
    """Builds a :class:`CollectionIndex` with an external-sort pipeline.

    Parameters
    ----------
    fs, store:
        The simulated file system and the storage backend to populate.
    stopwords:
        Terms to drop.  Synthetic workloads usually pass an empty set.
    stem_fn:
        Token normalizer; pass ``str`` (identity) to disable stemming.
    run_limit:
        In-memory posting-triple budget before a sorted run is spilled.
    """

    def __init__(
        self,
        fs: SimFileSystem,
        store: InvertedFileStore,
        stopwords: Iterable[str] = (),
        stem_fn: Callable[[str], str] = default_stem,
        run_limit: int = 500_000,
    ):
        if run_limit < 1:
            raise IndexError_("run_limit must be positive")
        self._fs = fs
        self._store = store
        self._stopwords = frozenset(stopwords)
        self._stem = stem_fn
        self._run_limit = run_limit
        self._dictionary = HashDictionary()
        self._doctable = DocTable()
        self._current: List[Tuple[int, int, int]] = []  # (term id, doc, position)
        self._runs: List[List[Tuple[int, int, int]]] = []
        self._finalized = False

    def add_document(self, document: Document) -> None:
        """Tokenize, normalize, and accumulate one document's postings."""
        if self._finalized:
            raise IndexError_("builder already finalized")
        tokens = document.term_stream(tokenize)
        kept = 0
        for position, token in enumerate(tokens):
            normalized = normalize_term(token, self._stopwords, self._stem)
            if normalized is None:
                continue
            entry = self._dictionary.add(normalized)
            self._current.append((entry.term_id, document.doc_id, position))
            kept += 1
        self._doctable.add(document.doc_id, kept, document.name)
        if len(self._current) >= self._run_limit:
            self._spill()

    def add_documents(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add_document(document)

    def _spill(self) -> None:
        """Close the current run: sort by (term id, doc id, position)."""
        if self._current:
            self._current.sort()
            self._runs.append(self._current)
            self._current = []

    def _merged_records(
        self, stats: IndexStats, max_tf: Dict[int, int]
    ) -> Iterator[Tuple[int, bytes]]:
        """K-way merge of runs, grouped into one encoded record per term.

        ``max_tf`` collects each term's largest within-document frequency
        as documents close — the pruning bound metadata, gathered in the
        same pass that encodes the records.
        """
        merged = heapq.merge(*self._runs)
        term_id = None
        postings: List[Posting] = []
        doc_id = None
        positions: List[int] = []

        def close_doc():
            if doc_id is not None:
                postings.append((doc_id, tuple(positions)))
                if len(positions) > max_tf.get(term_id, 0):
                    max_tf[term_id] = len(positions)

        def close_term():
            close_doc()
            if term_id is not None and postings:
                record = encode_record(postings)
                stats.records += 1
                stats.compressed_bytes += len(record)
                stats.uncompressed_bytes += uncompressed_size(postings)
                stats.record_sizes.append(len(record))
                yield term_id, record

        for tid, doc, position in merged:
            stats.postings += 1
            if tid != term_id:
                yield from close_term()
                term_id, postings = tid, []
                doc_id, positions = doc, [position]
            elif doc != doc_id:
                close_doc()
                doc_id, positions = doc, [position]
            else:
                positions.append(position)
        yield from close_term()

    def finalize(self) -> CollectionIndex:
        """Sort-merge everything into the store and bind the index."""
        if self._finalized:
            raise IndexError_("builder already finalized")
        self._finalized = True
        self._spill()
        stats = IndexStats(documents=len(self._doctable))
        max_tf: Dict[int, int] = {}
        keys = self._store.bulk_build(self._merged_records(stats, max_tf))
        by_id = self._dictionary.by_id()
        # Push per-term statistics back into the dictionary.
        for entry in self._dictionary.entries():
            entry.storage_key = keys.get(entry.term_id, 0)
            entry.max_tf = max_tf.get(entry.term_id, 0)
            entry.bounds_key = self._store.chunk_bounds_key(entry.storage_key)
        self._recount_stats(by_id)
        index = CollectionIndex(
            fs=self._fs,
            dictionary=self._dictionary,
            doctable=self._doctable,
            store=self._store,
            stats=stats,
            stopwords=self._stopwords,
            stem_fn=self._stem,
        )
        index.save()
        return index

    #: Below this many triples the dict scan beats numpy's setup cost.
    _RECOUNT_ARRAY_MIN = 4096

    def _recount_stats(self, by_id: Dict[int, object]) -> None:
        """Recompute df/ctf per term from the runs (single pass)."""
        total = sum(len(run) for run in self._runs)
        if _fastpath.ENABLED and total >= self._RECOUNT_ARRAY_MIN:
            self._recount_stats_arrays(by_id)
            return
        df: Dict[int, int] = {}
        ctf: Dict[int, int] = {}
        last: Dict[int, int] = {}
        for run in self._runs:
            for term_id, doc_id, _position in run:
                ctf[term_id] = ctf.get(term_id, 0) + 1
                if last.get(term_id) != doc_id:
                    df[term_id] = df.get(term_id, 0) + 1
                    last[term_id] = doc_id
        for term_id, entry in by_id.items():
            entry.df = df.get(term_id, 0)
            entry.ctf = ctf.get(term_id, 0)

    def _recount_stats_arrays(self, by_id: Dict[int, object]) -> None:
        """Vectorized recount: same per-term counts as the dict scan.

        A stable sort by term id preserves run order within each term,
        so counting rows whose doc id differs from the previous row of
        the same term reproduces the scan's ``last.get(term_id) !=
        doc_id`` transitions exactly.
        """
        import numpy as np

        chunks = [np.asarray(run, dtype=np.int64) for run in self._runs if run]
        triples = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        terms = triples[:, 0]
        docs = triples[:, 1]
        order = np.argsort(terms, kind="stable")
        t_sorted = terms[order]
        d_sorted = docs[order]
        new_doc = np.empty(t_sorted.size, dtype=np.int64)
        new_doc[0] = 1
        new_doc[1:] = (
            (t_sorted[1:] != t_sorted[:-1]) | (d_sorted[1:] != d_sorted[:-1])
        )
        uniq, ctf_counts = np.unique(t_sorted, return_counts=True)
        starts = np.searchsorted(t_sorted, uniq)
        df_counts = np.add.reduceat(new_doc, starts)
        df = dict(zip(uniq.tolist(), df_counts.tolist()))
        ctf = dict(zip(uniq.tolist(), ctf_counts.tolist()))
        for term_id, entry in by_id.items():
            entry.df = df.get(term_id, 0)
            entry.ctf = ctf.get(term_id, 0)


def add_document_incremental(index: CollectionIndex, document: Document) -> None:
    """Add one document to an existing index, record by record.

    This is the operation the paper says classic INQUERY does *not*
    support ("addition or deletion of a single document ... requires the
    entire document collection to be re-indexed") and that a persistent
    object store makes tractable.  Each touched term's record is fetched,
    merged, and written back through the storage backend, which may
    relocate it (pool change) — the dictionary entry is updated when the
    storage key changes.
    """
    if document.doc_id in index.doctable:
        raise IndexError_(f"document id {document.doc_id} already indexed")
    if document.doc_id in index.tombstones:
        raise IndexError_(
            f"document id {document.doc_id} is tombstoned; "
            "compact before reusing the id"
        )
    tokens = document.term_stream(tokenize)
    by_term: Dict[str, List[int]] = {}
    kept = 0
    for position, token in enumerate(tokens):
        normalized = normalize_term(token, index.stopwords, index.stem_fn)
        if normalized is None:
            continue
        by_term.setdefault(normalized, []).append(position)
        kept += 1
    index.doctable.add(document.doc_id, kept, document.name)
    for term, positions in sorted(by_term.items()):
        entry = index.dictionary.add(term)
        posting = (document.doc_id, tuple(positions))
        fresh_record = entry.df == 0 or entry.storage_key == 0
        if fresh_record:
            record = encode_record([posting])
            entry.storage_key = index.store.add_record(entry.term_id, record)
        else:
            old = index.store.fetch(entry.storage_key)
            record = merge_records(old, [posting])
            entry.storage_key = index.store.update_record(entry.storage_key, record)
        entry.df += 1
        entry.ctf += len(positions)
        # Bound maintenance is a max-merge — but only when the old bound
        # was known.  A record inherited from a pre-bounds index carries
        # max_tf == 0 ("unknown"); max-merging the new document into an
        # unknown would understate the true ceiling, so unknown stays
        # unknown (and the term keeps evaluating exhaustively).
        if fresh_record or entry.max_tf > 0:
            entry.max_tf = max(entry.max_tf, len(positions))
        entry.bounds_key = index.store.refresh_bounds(
            entry.storage_key, entry.bounds_key
        )
    index.stats.documents += 1
    index.stats.postings += kept
    # Per-document updates are durable: open segments and tables are
    # written out (through the write-ahead log, when one is attached).
    index.store.flush()


def tombstone_document_incremental(index: CollectionIndex, document: Document) -> int:
    """Delete one document *logically*: mark it dead, touch no records.

    This is the cheap-delete half of the paper's incremental-update
    story: instead of rewriting every record that mentions the document
    (``remove_document_incremental``), the doc id joins the index's
    tombstone set and the engines filter it out at postings-decode time.
    The caller supplies the :class:`Document` (synthetic corpora can
    regenerate it deterministically) so the per-term ``df``/``ctf``
    dictionary statistics — which DAAT and the pruning engine read
    instead of decoded postings — can be adjusted exactly without a
    single record fetch.  ``max_tf`` and the chunk-bound sidecars are
    left stale-*high*, which is admissible: an overestimated ceiling can
    never over-prune.  Compaction (``fold_tombstones``) later rewrites
    the records and recomputes exact bounds.

    Returns the number of distinct terms whose statistics were adjusted.
    """
    doc_id = document.doc_id
    if doc_id not in index.doctable:
        raise IndexError_(f"unknown document id {doc_id}")
    if doc_id in index.tombstones:
        raise IndexError_(f"document id {doc_id} already tombstoned")
    tokens = document.term_stream(tokenize)
    by_term: Dict[str, int] = {}
    kept = 0
    for token in tokens:
        normalized = normalize_term(token, index.stopwords, index.stem_fn)
        if normalized is None:
            continue
        by_term[normalized] = by_term.get(normalized, 0) + 1
        kept += 1
    if kept != index.doctable.length_of(doc_id):
        raise IndexError_(
            f"document {doc_id} token stream does not match the indexed "
            f"length ({kept} != {index.doctable.length_of(doc_id)})"
        )
    for term, tf in sorted(by_term.items()):
        entry = index.dictionary.lookup(term)
        if entry is None or entry.df == 0:
            raise IndexError_(
                f"document {doc_id} mentions {term!r}, which the "
                "dictionary does not carry — wrong document supplied?"
            )
        entry.df -= 1
        entry.ctf -= tf
    index.doctable.remove(doc_id)
    index.tombstones.add(doc_id)
    index.stats.documents -= 1
    index.stats.postings -= kept
    index.store.flush()
    return len(by_term)


def fold_tombstones(index: CollectionIndex) -> int:
    """Rewrite every record that still carries a tombstoned posting.

    The physical half of the tombstone delete, run at compaction time:
    records are fetched, filtered, and written back (the same record
    path as ``remove_document_incremental``), exact ``max_tf`` and chunk
    bounds are recomputed from the kept postings, and the tombstone set
    empties — after which the deleted doc ids may be reused.  Returns
    the number of records rewritten.
    """
    if not index.tombstones:
        return 0
    from .postings import decode_record

    dead = index.tombstones
    rewritten = 0
    for entry in index.dictionary.entries():
        if entry.storage_key == 0:
            continue
        old = index.store.fetch(entry.storage_key)
        postings = decode_record(old)
        kept = [(d, p) for d, p in postings if d not in dead]
        if len(kept) == len(postings):
            continue
        entry.storage_key = index.store.update_record(
            entry.storage_key, encode_record(kept)
        )
        # The whole record was just decoded, so the exact ceiling over
        # the kept postings is free — including for records whose bound
        # was previously unknown (this *upgrades* them to prunable).
        entry.max_tf = max((len(p) for _d, p in kept), default=0)
        entry.bounds_key = index.store.refresh_bounds(
            entry.storage_key, entry.bounds_key
        )
        rewritten += 1
    index.tombstones = set()
    index.store.flush()
    return rewritten


def remove_document_incremental(index: CollectionIndex, doc_id: int) -> int:
    """Delete one document from every record that mentions it.

    Returns the number of records rewritten.  Record shrinkage "creates
    holes in the inverted lists" (Section 2); here the pools absorb the
    slack.  Terms whose record becomes empty keep a zero-df dictionary
    entry (INQUERY term ids are never reused).
    """
    if doc_id not in index.doctable:
        raise IndexError_(f"unknown document id {doc_id}")
    rewritten = 0
    for entry in index.dictionary.entries():
        if entry.df == 0 or entry.storage_key == 0:
            continue
        old = index.store.fetch(entry.storage_key)
        from .postings import decode_record

        postings = decode_record(old)
        kept = [(d, p) for d, p in postings if d != doc_id]
        if len(kept) == len(postings):
            continue
        removed_positions = sum(len(p) for d, p in postings if d == doc_id)
        if kept:
            entry.storage_key = index.store.update_record(
                entry.storage_key, encode_record(kept)
            )
        else:
            entry.storage_key = index.store.update_record(
                entry.storage_key, encode_record([])
            )
        entry.df -= 1
        entry.ctf -= removed_positions
        # The whole record was just decoded, so the exact ceiling over
        # the kept postings is free — including for records whose bound
        # was previously unknown (this *upgrades* them to prunable).
        entry.max_tf = max((len(p) for _d, p in kept), default=0)
        entry.bounds_key = index.store.refresh_bounds(
            entry.storage_key, entry.bounds_key
        )
        rewritten += 1
    index.doctable.remove(doc_id)
    index.stats.documents -= 1
    index.store.flush()
    return rewritten
