"""Inverted file storage backends.

The record format is fixed (:mod:`repro.inquery.postings`); what varies
is the subsystem that stores the records.  :class:`BTreeInvertedFile` is
the original custom keyed file; :class:`MnemeInvertedFile` is the paper's
integration, partitioning records into the three pools by size:

* at most 12 bytes            -> small object pool (16-byte slots, 4 KB segments)
* more than 12 B, at most 4 KB -> medium object pool (8 KB segments)
* more than 4 KB               -> large object pool (own segment)

and storing the returned Mneme identifier in the term's hash dictionary
entry.  The "Mneme, Cache" configuration attaches an LRU buffer per pool
(sized per Table 2); "Mneme, No Cache" leaves the default NullBuffer so
no inverted list data is retained across record accesses.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..btree import BTreeKeyedFile
from ..errors import PoolError
from ..mneme import (
    ChunkedLargeObjectPool,
    LargeObjectPool,
    LRUBuffer,
    MediumObjectPool,
    MnemeStore,
    SmallObjectPool,
    chunk_ids,
    delete_linked,
    iter_linked,
    read_linked,
    split_global,
    write_linked,
    write_linked_chain,
)
from ..mneme.linked import _unpack_chunk
from .bounds import PrunableSource, chunk_stats, decode_chunk_bounds, encode_chunk_bounds
from .postings import (
    decode_record,
    encode_record,
    join_chunk_records,
    merge_records,
    split_postings,
)
from .streams import ChunkedRecordStream, PostingStream, WholeRecordStream
from ..simdisk import SimFile, SimFileSystem

#: Pool ids used by the integrated system.
SMALL_POOL, MEDIUM_POOL, LARGE_POOL = 1, 2, 3

#: Size partition thresholds (bytes), from Section 3.3 of the paper.
SMALL_MAX_BYTES = 12
MEDIUM_MAX_BYTES = 4096


@dataclass(frozen=True)
class BufferSizes:
    """Per-pool buffer budgets in bytes (Table 2 gives them in Kbytes)."""

    small: int
    medium: int
    large: int


class InvertedFileStore:
    """Interface both backends implement.

    ``storage_key`` is whatever the backend hands back at record-creation
    time: the term id itself for the B-tree, a Mneme global object id for
    the object store.  The dictionary stores it opaquely.
    """

    #: Number of record lookups performed (denominator of Table 5's "A").
    record_lookups: int = 0

    def bulk_build(self, records: Iterable[Tuple[int, bytes]]) -> Dict[int, int]:
        """Store records (term-id order) and return term id -> storage key."""
        raise NotImplementedError

    def fetch(self, key: int) -> bytes:
        """Retrieve one record by storage key."""
        raise NotImplementedError

    def reserve(self, key: int) -> bool:
        """Pin the record's buffered segment if resident (no-op if unsupported)."""
        return False

    def release_reservations(self) -> None:
        return None

    def add_record(self, term_id: int, data: bytes) -> int:
        """Store a new record, returning its storage key."""
        raise NotImplementedError

    def update_record(self, key: int, data: bytes) -> int:
        """Replace a record; returns the (possibly new) storage key."""
        raise NotImplementedError

    def stream_postings(self, key: int) -> PostingStream:
        """A sequential posting reader over one record.

        The default transfers the whole record (one lookup) and streams
        from memory; backends that store records in independently
        decodable pieces override this to keep only one piece resident —
        the document-at-a-time enabler.
        """
        return WholeRecordStream(self.fetch(key))

    # -- dynamic-pruning bound metadata ----------------------------------------

    def chunk_bounds_key(self, key: int) -> int:
        """Storage key of the per-chunk bound sidecar for ``key`` (0 = none).

        Only backends that store records in independently fetchable
        pieces have per-chunk bounds; everyone else prunes at whole-record
        granularity off the dictionary's ``max_tf`` alone.
        """
        return 0

    def refresh_bounds(self, key: int, old_bounds_key: int = 0) -> int:
        """Rebuild the bound sidecar for ``key`` after a record mutation.

        Returns the new sidecar key (0 when the backend keeps no
        sidecars), releasing ``old_bounds_key`` if it is superseded.
        """
        return 0

    def open_prune_source(self, entry) -> PrunableSource:
        """The record behind ``entry`` as bounded, skippable blocks.

        ``entry`` is the term's dictionary entry (``storage_key`` +
        ``max_tf`` + ``bounds_key``).  The default view is a single
        block covering the whole record: it can be bound-skipped (never
        fetched at all) but not range-skipped.  Backends with chunked
        storage override this to expose one block per chunk.
        """
        key = entry.storage_key
        return PrunableSource([lambda: self.fetch(key)], [None], [entry.max_tf])

    def flush(self) -> None:
        raise NotImplementedError

    @property
    def files(self) -> List[SimFile]:
        """Every simulated file the backend reads during query processing."""
        raise NotImplementedError

    @property
    def file_size(self) -> int:
        """Total index size on disk (Table 1)."""
        return sum(f.size for f in self.files)


class BTreeInvertedFile(InvertedFileStore):
    """The custom B-tree keyed file backend (the baseline)."""

    def __init__(self, fs: SimFileSystem, name: str = "invfile"):
        file_name = f"{name}.btree"
        file = fs.open(file_name) if fs.exists(file_name) else fs.create(file_name)
        self.tree = BTreeKeyedFile(file)
        self.record_lookups = 0

    def bulk_build(self, records: Iterable[Tuple[int, bytes]]) -> Dict[int, int]:
        keys: Dict[int, int] = {}

        def counted():
            for term_id, data in records:
                keys[term_id] = term_id
                yield term_id, data

        self.tree.bulk_load(counted())
        return keys

    def fetch(self, key: int) -> bytes:
        self.record_lookups += 1
        return self.tree.lookup(key)

    def add_record(self, term_id: int, data: bytes) -> int:
        self.tree.insert(term_id, data)
        return term_id

    def update_record(self, key: int, data: bytes) -> int:
        self.tree.replace(key, data)
        return key

    def flush(self) -> None:
        self.tree.sync()

    @property
    def files(self) -> List[SimFile]:
        return [self.tree._pages.file]

    @property
    def height(self) -> int:
        return self.tree.height


class MnemeInvertedFile(InvertedFileStore):
    """The persistent object store backend (the paper's contribution)."""

    #: Pool class used for records above the medium threshold.
    LARGE_POOL_FACTORY = LargeObjectPool

    def __init__(
        self,
        fs: SimFileSystem,
        name: str = "invfile",
        buffer_sizes: Optional[BufferSizes] = None,
        medium_segment_bytes: int = 8192,
        medium_max_bytes: int = MEDIUM_MAX_BYTES,
        wal=None,
    ):
        self.store = MnemeStore(fs)
        self.mfile = self.store.open_file(name, wal=wal)
        self.medium_max_bytes = medium_max_bytes
        self.small = self.mfile.create_pool(SMALL_POOL, SmallObjectPool)
        self.medium = self.mfile.create_pool(
            MEDIUM_POOL,
            MediumObjectPool,
            segment_bytes=medium_segment_bytes,
            max_object_bytes=medium_max_bytes,
        )
        self.large = self.mfile.create_pool(LARGE_POOL, self.LARGE_POOL_FACTORY)
        self.mfile.load()
        self.record_lookups = 0
        self.cached = buffer_sizes is not None
        if buffer_sizes is not None:
            self.attach_buffers(buffer_sizes)

    def attach_buffers(self, sizes: BufferSizes) -> None:
        """Attach one LRU buffer per pool, as the integrated system does.

        "Each object pool was attached to a separate buffer, allowing the
        global buffer space to be divided between the object pools based
        on expected access patterns and memory requirements."
        """
        self.small.attach_buffer(LRUBuffer(sizes.small))
        self.medium.attach_buffer(LRUBuffer(sizes.medium))
        self.large.attach_buffer(LRUBuffer(sizes.large))
        self.cached = True

    def _pool_for(self, data: bytes):
        if len(data) <= SMALL_MAX_BYTES:
            return self.small
        if len(data) <= self.medium_max_bytes:
            return self.medium
        return self.large

    def bulk_build(self, records: Iterable[Tuple[int, bytes]]) -> Dict[int, int]:
        keys: Dict[int, int] = {}
        for term_id, data in records:
            oid = self._pool_for(data).create(data)
            keys[term_id] = self.store.global_id(self.mfile, oid)
        self.flush()
        return keys

    def fetch(self, key: int) -> bytes:
        self.record_lookups += 1
        return self.store.fetch(key)

    def reserve(self, key: int) -> bool:
        return self.store.reserve(key)

    def release_reservations(self) -> None:
        self.store.release_reservations()

    def add_record(self, term_id: int, data: bytes) -> int:
        oid = self._pool_for(data).create(data)
        return self.store.global_id(self.mfile, oid)

    def update_record(self, key: int, data: bytes) -> int:
        """Modify in place when the pool allows it, else re-home the record.

        Growing past a pool's limits relocates the record to the right
        pool and returns a new key; the old object is deleted (its space
        management is the pool's concern).
        """
        _file_no, oid = split_global(key)
        old = self.mfile.fetch(oid)
        same_category = self._pool_for(old) is self._pool_for(data)
        if same_category:
            try:
                self.mfile.modify(oid, data)
                return key
            except PoolError:
                pass  # e.g. grown medium object no longer fits its segment
        self.mfile.delete(oid)
        new_oid = self._pool_for(data).create(data)
        return self.store.global_id(self.mfile, new_oid)

    def flush(self) -> None:
        self.store.flush()

    @property
    def files(self) -> List[SimFile]:
        return self.mfile.files

    def buffer_stats(self) -> Dict[str, "object"]:
        """Per-pool buffer statistics (Table 6)."""
        return {
            "small": self.small.buffer.stats,
            "medium": self.medium.buffer.stats,
            "large": self.large.buffer.stats,
        }

    def pool_object_counts(self) -> Dict[str, int]:
        return {
            "small": self.small.objects_created,
            "medium": self.medium.objects_created,
            "large": self.large.objects_created,
        }


class LinkedMnemeInvertedFile(MnemeInvertedFile):
    """Mneme backend storing large records as linked chunk chains.

    The paper's future-work data model, applied to the inverted file:
    records above the medium threshold are split into self-contained
    mini-records (:func:`~repro.inquery.postings.split_postings`) and
    stored as a chain of chunk objects.  Three capabilities follow:

    * :meth:`stream_postings` keeps only one chunk resident at a time,
      enabling document-at-a-time evaluation
      (:class:`~repro.inquery.daat.DocumentAtATimeEngine`);
    * growing a record appends chunks instead of relocating megabytes;
    * a prefix of a huge record can be retrieved without the rest.

    ``fetch`` remains available (it reassembles the chain), so the
    term-at-a-time engine runs unchanged on this backend.
    """

    LARGE_POOL_FACTORY = ChunkedLargeObjectPool

    def __init__(self, *args, chunk_bytes: int = 16384, **kwargs):
        super().__init__(*args, **kwargs)
        if chunk_bytes < 64:
            raise PoolError("chunk_bytes too small for a useful mini-record")
        self.chunk_bytes = chunk_bytes
        #: record storage key -> bound-sidecar storage key, for records
        #: created (or refreshed) by this instance.  The dictionary entry
        #: is the persistent home of the mapping; this map is how a fresh
        #: key reaches the dictionary at build/finalize time.
        self._bounds_keys: Dict[int, int] = {}
        #: keys whose registered sidecar still matches the chain on disk.
        self._fresh_bounds: set = set()

    def _create_large(self, data: bytes) -> int:
        slices = split_postings(decode_record(data), self.chunk_bytes)
        parts = [encode_record(postings) for postings in slices]
        oids = write_linked_chain(self.large, parts)
        last_docs, max_tfs = chunk_stats(slices)
        self._last_chain_stats = (oids, last_docs, max_tfs)
        return oids[0]

    def _is_large_key(self, key: int) -> bool:
        _file_no, oid = split_global(key)
        from ..mneme import logical_segment

        return self.large.owns_logseg(logical_segment(oid))

    def bulk_build(self, records: Iterable[Tuple[int, bytes]]) -> Dict[int, int]:
        """Two-phase build: every record first, every bound sidecar after.

        Deferring the sidecars keeps the records' object ids and segment
        layout byte-for-byte what a pre-bounds build produced, so
        layout-sensitive observables (segment counts, record placement)
        stay comparable across index versions.
        """
        keys: Dict[int, int] = {}
        pending: List[Tuple[int, Tuple[List[int], List[int], List[int]]]] = []
        for term_id, data in records:
            pool = self._pool_for(data)
            if pool is self.large:
                oid = self._create_large(data)
                key = self.store.global_id(self.mfile, oid)
                pending.append((key, self._last_chain_stats))
            else:
                oid = pool.create(data)
                key = self.store.global_id(self.mfile, oid)
            keys[term_id] = key
        for key, (oids, last_docs, max_tfs) in pending:
            self._register_bounds(key, encode_chunk_bounds(oids, last_docs, max_tfs))
        self.flush()
        return keys

    def add_record(self, term_id: int, data: bytes) -> int:
        pool = self._pool_for(data)
        if pool is self.large:
            oid = self._create_large(data)
            key = self.store.global_id(self.mfile, oid)
            self._register_bounds(key, encode_chunk_bounds(*self._last_chain_stats))
            return key
        return self.store.global_id(self.mfile, pool.create(data))

    def fetch(self, key: int) -> bytes:
        if not self._is_large_key(key):
            return super().fetch(key)
        self.record_lookups += 1
        _file_no, oid = split_global(key)
        return join_chunk_records(list(iter_linked(self.large, oid)))

    def stream_postings(self, key: int) -> PostingStream:
        if not self._is_large_key(key):
            return super().stream_postings(key)
        self.record_lookups += 1
        _file_no, oid = split_global(key)
        return ChunkedRecordStream(iter_linked(self.large, oid))

    def update_record(self, key: int, data: bytes) -> int:
        if not self._is_large_key(key):
            old = self.mfile.fetch(split_global(key)[1])
            if self._pool_for(old) is not self.large and self._pool_for(data) is not self.large:
                return super().update_record(key, data)
            # Crossing into the large category: re-home as a chain.
            self.mfile.delete(split_global(key)[1])
            new_key = self.store.global_id(self.mfile, self._create_large(data))
            self._register_bounds(
                new_key, encode_chunk_bounds(*self._last_chain_stats)
            )
            return new_key
        _file_no, oid = split_global(key)
        delete_linked(self.large, oid)
        self._fresh_bounds.discard(key)
        if self._pool_for(data) is self.large:
            new_key = self.store.global_id(self.mfile, self._create_large(data))
            self._register_bounds(
                new_key, encode_chunk_bounds(*self._last_chain_stats)
            )
            return new_key
        new_oid = self._pool_for(data).create(data)
        return self.store.global_id(self.mfile, new_oid)

    def append_postings(self, key: int, new_postings) -> int:
        """Grow a record in place — the cheap-update path.

        For chained records this writes only the new chunks; for small
        and medium records it falls back to a record rewrite (they are
        cheap to rewrite by definition).  Returns the (possibly new)
        storage key.
        """
        if not self._is_large_key(key):
            merged = merge_records(self.fetch(key), new_postings)
            self.record_lookups -= 1  # internal fetch, not a query lookup
            return self.update_record(key, merged)
        from ..mneme import append_linked

        _file_no, oid = split_global(key)
        slices = split_postings(sorted(new_postings), self.chunk_bytes)
        for postings in slices:
            chunk = encode_record(postings)
            append_linked(self.large, oid, chunk, chunk_bytes=len(chunk))
        # The chain changed under any registered sidecar; a later
        # refresh_bounds() rebuilds it from the chunks on disk.
        self._fresh_bounds.discard(key)
        return key

    # -- bound sidecars --------------------------------------------------------

    def _sidecar_create(self, payload: bytes) -> int:
        """Store a sidecar payload, chaining it if it outgrows the pools."""
        pool = self._pool_for(payload)
        if pool is self.large:
            oid = write_linked(self.large, payload, self.chunk_bytes)
        else:
            oid = pool.create(payload)
        return self.store.global_id(self.mfile, oid)

    def _sidecar_delete(self, bounds_key: int) -> None:
        if not bounds_key:
            return
        _file_no, oid = split_global(bounds_key)
        if self._is_large_key(bounds_key):
            delete_linked(self.large, oid)
        else:
            self.mfile.delete(oid)

    def _read_bounds(self, bounds_key: int) -> bytes:
        _file_no, oid = split_global(bounds_key)
        if self._is_large_key(bounds_key):
            return read_linked(self.large, oid)
        return self.mfile.fetch(oid)

    def _register_bounds(self, key: int, payload: bytes) -> int:
        bounds_key = self._sidecar_create(payload)
        self._bounds_keys[key] = bounds_key
        self._fresh_bounds.add(key)
        return bounds_key

    def chunk_bounds_key(self, key: int) -> int:
        return self._bounds_keys.get(key, 0)

    def refresh_bounds(self, key: int, old_bounds_key: int = 0) -> int:
        """Bring the bound sidecar for ``key`` up to date with its chain.

        Incremental updates mutate records after their sidecar was
        written; the indexer calls this afterwards and stores the
        returned key in the dictionary entry.  ``old_bounds_key`` is the
        entry's previous sidecar, released here if superseded.  Records
        that are not chunked chains keep no sidecar (returns 0).
        """
        current = self._bounds_keys.get(key, 0)
        if old_bounds_key and old_bounds_key != current:
            self._sidecar_delete(old_bounds_key)
        if not self._is_large_key(key):
            if current:
                self._sidecar_delete(current)
                del self._bounds_keys[key]
                self._fresh_bounds.discard(key)
            return 0
        if current and key in self._fresh_bounds:
            return current
        if current:
            self._sidecar_delete(current)
        _file_no, head = split_global(key)
        oids = chunk_ids(self.large, head)
        slices = [
            decode_record(_unpack_chunk(self.large.fetch(oid))[1]) for oid in oids
        ]
        last_docs, max_tfs = chunk_stats(slices)
        return self._register_bounds(
            key, encode_chunk_bounds(oids, last_docs, max_tfs)
        )

    def open_prune_source(self, entry) -> PrunableSource:
        """One block per chunk, each independently fetchable and bounded.

        Without a sidecar (an index saved before bound metadata existed)
        the chain degrades to a single whole-record block — still
        correct, just not range-skippable.  ``record_lookups`` counts
        the term once, on the first chunk actually fetched: a term whose
        every block is skipped costs no lookup at all.
        """
        key = entry.storage_key
        if not self._is_large_key(key):
            return super().open_prune_source(entry)
        bounds_key = entry.bounds_key or self._bounds_keys.get(key, 0)
        if not bounds_key:
            return PrunableSource([lambda: self.fetch(key)], [None], [entry.max_tf])
        oids, last_docs, max_tfs = decode_chunk_bounds(self._read_bounds(bounds_key))
        counted = [False]

        def chunk_fetcher(oid: int):
            def fetch() -> bytes:
                if not counted[0]:
                    counted[0] = True
                    self.record_lookups += 1
                return _unpack_chunk(self.large.fetch(oid))[1]

            return fetch

        return PrunableSource([chunk_fetcher(oid) for oid in oids], last_docs, max_tfs)
