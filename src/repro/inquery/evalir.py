"""Recall / precision evaluation.

"Traditionally, IR system performance has been measured in terms of
recall and precision.  The portion of the system that determines those
factors is fixed across the two systems we are comparing."  We still
implement the metrics: they let the integration tests assert that every
storage configuration returns *identical* rankings (and therefore
identical recall/precision), which is the paper's premise.

A relevance file "lists the documents that should have been retrieved
for each query"; here that is a mapping from query index to a set of
relevant document ids.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..errors import ConfigError

#: The standard 11 recall points for interpolated precision.
RECALL_POINTS = tuple(i / 10 for i in range(11))


@dataclass(frozen=True)
class QueryEvaluation:
    """Recall/precision facts for one query's ranking."""

    retrieved: int
    relevant: int
    relevant_retrieved: int
    average_precision: float
    r_precision: float
    interpolated: "tuple[float, ...]"  #: precision at the 11 recall points

    @property
    def recall(self) -> float:
        return self.relevant_retrieved / self.relevant if self.relevant else 0.0

    @property
    def precision(self) -> float:
        return self.relevant_retrieved / self.retrieved if self.retrieved else 0.0


def evaluate_ranking(ranking: Sequence[int], relevant: Set[int]) -> QueryEvaluation:
    """Score one ranked document-id list against its relevance set."""
    if not relevant:
        raise ConfigError("relevance set is empty")
    hits = 0
    precision_sum = 0.0
    precision_at_rank: List[float] = []
    recall_at_rank: List[float] = []
    r_precision = 0.0
    for rank, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant:
            hits += 1
            precision_sum += hits / rank
        precision_at_rank.append(hits / rank)
        recall_at_rank.append(hits / len(relevant))
        if rank == len(relevant):
            r_precision = hits / rank
    if len(ranking) < len(relevant):
        r_precision = hits / len(relevant)
    interpolated = []
    for point in RECALL_POINTS:
        best = 0.0
        for precision, recall in zip(precision_at_rank, recall_at_rank):
            if recall >= point and precision > best:
                best = precision
        interpolated.append(best)
    return QueryEvaluation(
        retrieved=len(ranking),
        relevant=len(relevant),
        relevant_retrieved=hits,
        average_precision=precision_sum / len(relevant),
        r_precision=r_precision,
        interpolated=tuple(interpolated),
    )


@dataclass(frozen=True)
class SetEvaluation:
    """Macro-averaged metrics over a query set."""

    queries: int
    mean_average_precision: float
    mean_r_precision: float
    mean_interpolated: "tuple[float, ...]"


def evaluate_run(
    rankings: Sequence[Sequence[int]], relevance: Dict[int, Set[int]]
) -> SetEvaluation:
    """Evaluate a whole batch run against its relevance file.

    ``relevance`` maps query index (position in ``rankings``) to the
    relevant document ids; queries without judgments are skipped, as
    standard IR evaluation does.
    """
    evaluations = [
        evaluate_ranking(ranking, relevance[i])
        for i, ranking in enumerate(rankings)
        if i in relevance and relevance[i]
    ]
    if not evaluations:
        raise ConfigError("no judged queries in the run")
    count = len(evaluations)
    mean_interp = tuple(
        sum(e.interpolated[j] for e in evaluations) / count
        for j in range(len(RECALL_POINTS))
    )
    return SetEvaluation(
        queries=count,
        mean_average_precision=sum(e.average_precision for e in evaluations) / count,
        mean_r_precision=sum(e.r_precision for e in evaluations) / count,
        mean_interpolated=mean_interp,
    )
