"""The integrated system: the paper's contribution, assembled.

Pool partitioning thresholds, Table 2 buffer-sizing heuristics, system
materialization (disk -> FS -> store -> inverted file -> engine), and
cold-start measurement of the paper's metrics.
"""

from .config import (
    CONFIG_NAMES,
    SystemConfig,
    config_by_name,
    table2_buffer_sizes,
)
from .experiment import (
    ExperimentGrid,
    QUERY_SET_PROFILES,
    Workload,
    build_systems,
    load_workload,
    run_grid,
)
from .metrics import RunMetrics, cold_start, improvement, measure_run
from .prepared import (
    IRSystem,
    PreparedCollection,
    materialize,
    prepare_collection,
)
from .stats import (
    latency_summary,
    max_over_mean,
    median_of,
    percentile,
    relative_spread,
)
from .validate import (
    ValidationIssue,
    ValidationReport,
    check_index,
    check_store,
    check_system,
)

__all__ = [
    "CONFIG_NAMES",
    "ExperimentGrid",
    "IRSystem",
    "PreparedCollection",
    "QUERY_SET_PROFILES",
    "RunMetrics",
    "ValidationIssue",
    "ValidationReport",
    "SystemConfig",
    "Workload",
    "build_systems",
    "check_index",
    "check_store",
    "check_system",
    "cold_start",
    "config_by_name",
    "improvement",
    "latency_summary",
    "load_workload",
    "materialize",
    "max_over_mean",
    "measure_run",
    "median_of",
    "percentile",
    "prepare_collection",
    "relative_spread",
    "run_grid",
    "table2_buffer_sizes",
]
