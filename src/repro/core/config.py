"""System configurations and the paper's buffer-sizing heuristics.

Three named configurations reproduce the paper's comparison:

* ``btree``        — the custom B-tree keyed file;
* ``mneme-nocache`` — Mneme with no inverted-list record caching across
  accesses (NullBuffer on every pool);
* ``mneme-cache``  — Mneme with one LRU buffer per pool, sized by the
  Table 2 heuristics.

Table 2's rules, applied verbatim (scaled only through the data):

* large buffer  = 3 x the size of the largest inverted list;
* medium buffer = 9% of the large buffer ("the number of accesses to
  medium objects equaled roughly 9% of the number of accesses to large
  objects"), with a floor of 3 medium segments (the CACM exception);
* small buffer  = 3 small segments ("small object access was
  insignificant").
"""

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..inquery import BufferSizes
from ..mneme import MEDIUM_SEGMENT_BYTES, SMALL_SEGMENT_BYTES
from ..simdisk import CostModel

#: Configuration names, in the order the paper's tables list them.
CONFIG_NAMES = ("btree", "mneme-nocache", "mneme-cache")


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to materialize one system build."""

    name: str
    backend: str                 #: "btree" or "mneme"
    cached: bool = False         #: attach Table 2 LRU buffers?
    fs_cache_blocks: int = 32    #: OS buffer cache, in 8 KB blocks (256 KB —
    #: scaled from the paper's 64 MB machine as its gigabyte files are
    #: scaled down to megabytes)
    medium_segment_bytes: int = MEDIUM_SEGMENT_BYTES
    medium_max_bytes: int = 4096
    chunk_bytes: int = 16384     #: chunk size of the mneme-linked backend
    readahead_blocks: int = 0    #: FS sequential read-ahead (0 = off)
    use_reservation: bool = True
    #: Evaluate on the vectorized kernels (:mod:`repro.fastpath`).
    #: Bit-identical results and simulated charges; real time only.
    use_fastpath: bool = True
    #: Attach a redo log (write-ahead log) to the Mneme file.  Enables
    #: crash recovery and checksum read-repair; costs extra writes
    #: during the (untimed) build.  Mneme backends only.
    use_wal: bool = False
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        if self.backend not in ("btree", "mneme", "mneme-linked"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if self.backend == "btree" and self.cached:
            raise ConfigError("the B-tree version has no record cache")
        if self.backend == "btree" and self.use_wal:
            raise ConfigError("the B-tree version has no redo log")


def config_by_name(name: str, **overrides) -> SystemConfig:
    """The paper's three configurations, plus the linked-record extension.

    ``mneme-linked`` stores large records as linked chunk chains
    (cached buffers attached), enabling the document-at-a-time engine.
    """
    if name == "btree":
        return SystemConfig(name=name, backend="btree", **overrides)
    if name == "mneme-nocache":
        return SystemConfig(name=name, backend="mneme", cached=False, **overrides)
    if name == "mneme-cache":
        return SystemConfig(name=name, backend="mneme", cached=True, **overrides)
    if name == "mneme-linked":
        return SystemConfig(name=name, backend="mneme-linked", cached=True, **overrides)
    raise ConfigError(f"unknown configuration {name!r}")


def table2_buffer_sizes(
    largest_record: int,
    medium_segment_bytes: int = MEDIUM_SEGMENT_BYTES,
    small_segment_bytes: int = SMALL_SEGMENT_BYTES,
) -> BufferSizes:
    """Apply the paper's buffer-sizing heuristics (Table 2).

    Parameters
    ----------
    largest_record:
        Size in bytes of the collection's largest inverted list.
    """
    if largest_record < 1:
        raise ConfigError("collection has no records to size buffers from")
    large = 3 * largest_record
    medium = max(int(0.09 * large), 3 * medium_segment_bytes)
    small = 3 * small_segment_bytes
    return BufferSizes(small=small, medium=medium, large=large)
