"""Prepared collections: index once, materialize per backend.

The evaluation builds the *same* inverted file into three storage
configurations.  Tokenizing and sorting a multi-million-token collection
three times would triple the (untimed) build cost for no fidelity gain —
the paper, too, indexed each collection once per storage format from the
same parsed data.  :class:`PreparedCollection` runs the indexing sort a
single time (numpy ``lexsort`` over (term, doc, position), the same
"dominated by a sorting problem" computation as
:class:`~repro.inquery.IndexBuilder`) and keeps the encoded records;
:func:`materialize` then bulk-loads them into a fresh simulated machine
per configuration.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..fastpath import state as _fastpath
from ..inquery import (
    BTreeInvertedFile,
    CollectionIndex,
    DocTable,
    HashDictionary,
    IndexStats,
    MnemeInvertedFile,
    decode_record,
    encode_record,
    uncompressed_size,
)
from ..simdisk import SimClock, SimDisk, SimFileSystem
from ..synth import SyntheticCollection, term_string
from .config import SystemConfig, table2_buffer_sizes


@dataclass
class PreparedCollection:
    """One collection's index data, independent of storage backend."""

    name: str
    collection: SyntheticCollection
    records: List[Tuple[int, bytes]]          #: (term id, encoded record)
    term_id_of_rank: Dict[int, int]
    rank_of_term_id: Dict[int, int]
    df: Dict[int, int]                        #: term id -> document frequency
    ctf: Dict[int, int]
    doctable: DocTable
    stats: IndexStats
    #: term id -> largest within-document frequency (pruning bound input).
    max_tf: Dict[int, int] = field(default_factory=dict)

    @property
    def record_count(self) -> int:
        return len(self.records)

    @property
    def largest_record(self) -> int:
        return max(self.stats.record_sizes) if self.stats.record_sizes else 0

    def record_size_of_rank(self, rank: int) -> int:
        """Inverted list size for a term rank (Figure 2's x axis)."""
        term_id = self.term_id_of_rank.get(rank)
        if term_id is None:
            return 0
        return self._sizes_by_term_id[term_id]

    def docs_of_rank(self, rank: int) -> Sequence[int]:
        """Documents containing a term rank (drives relevance synthesis)."""
        term_id = self.term_id_of_rank.get(rank)
        if term_id is None:
            return ()
        index = self._record_index[term_id]
        return [doc for doc, _positions in decode_record(self.records[index][1])]

    def __post_init__(self):
        self._record_index = {tid: i for i, (tid, _r) in enumerate(self.records)}
        self._sizes_by_term_id = {tid: len(r) for tid, r in self.records}


def prepare_collection(collection: SyntheticCollection, name: Optional[str] = None) -> PreparedCollection:
    """Run the indexing sort and record encoding once for a collection."""
    ranks, doc_ids, positions = collection.flat_postings()
    if len(ranks) == 0:
        raise ConfigError("cannot index an empty collection")
    order = np.lexsort((positions, doc_ids, ranks))
    ranks, doc_ids, positions = ranks[order], doc_ids[order], positions[order]

    stats = IndexStats(documents=len(collection), postings=len(ranks))
    records: List[Tuple[int, bytes]] = []
    term_id_of_rank: Dict[int, int] = {}
    df: Dict[int, int] = {}
    ctf: Dict[int, int] = {}
    max_tf: Dict[int, int] = {}

    # Term ids are assigned in rank order, so records stream out sorted by
    # term id — the order the B-tree bulk load requires.
    if _fastpath.ENABLED:
        # One kernel pass over the whole collection; records are
        # byte-identical to the per-term reference encodes below.
        from ..fastpath.build import encode_collection

        encoded = encode_collection(ranks, doc_ids, positions)
        records = encoded.records
        term_id_of_rank = {
            int(rank): i + 1 for i, rank in enumerate(encoded.ranks)
        }
        df = {i + 1: int(n) for i, n in enumerate(encoded.df)}
        ctf = {i + 1: int(n) for i, n in enumerate(encoded.ctf)}
        max_tf = {i + 1: int(n) for i, n in enumerate(encoded.max_tf)}
        stats.records = len(records)
        stats.compressed_bytes = encoded.compressed_bytes
        stats.uncompressed_bytes = encoded.uncompressed_bytes
        stats.record_sizes = encoded.record_sizes.tolist()
    else:
        distinct_ranks, starts = np.unique(ranks, return_index=True)
        boundaries = list(starts) + [len(ranks)]
        for i, rank in enumerate(distinct_ranks):
            term_id = i + 1
            term_id_of_rank[int(rank)] = term_id
            lo, hi = boundaries[i], boundaries[i + 1]
            postings = []
            docs = doc_ids[lo:hi]
            poss = positions[lo:hi]
            doc_breaks = np.nonzero(np.diff(docs))[0] + 1
            for chunk_docs, chunk_pos in zip(
                np.split(docs, doc_breaks), np.split(poss, doc_breaks)
            ):
                postings.append((int(chunk_docs[0]), tuple(int(p) for p in chunk_pos)))
            record = encode_record(postings)
            records.append((term_id, record))
            df[term_id] = len(postings)
            ctf[term_id] = hi - lo
            max_tf[term_id] = max(len(p) for _d, p in postings)
            stats.records += 1
            stats.compressed_bytes += len(record)
            stats.uncompressed_bytes += uncompressed_size(postings)
            stats.record_sizes.append(len(record))

    doctable = DocTable()
    for doc_index, length in enumerate(collection.doc_lengths):
        doctable.add(doc_index + 1, int(length))

    return PreparedCollection(
        name=name or collection.profile.name,
        collection=collection,
        records=records,
        term_id_of_rank=term_id_of_rank,
        rank_of_term_id={tid: r for r, tid in term_id_of_rank.items()},
        df=df,
        ctf=ctf,
        doctable=doctable,
        stats=stats,
        max_tf=max_tf,
    )


@dataclass
class IRSystem:
    """One materialized system: a simulated machine plus an index."""

    config: SystemConfig
    fs: SimFileSystem
    clock: SimClock
    index: CollectionIndex
    prepared: PreparedCollection

    @property
    def name(self) -> str:
        return self.config.name


def materialize(
    prepared: PreparedCollection,
    config: SystemConfig,
    fault_plan=None,
    shards: Optional[int] = None,
    partitioner: str = "hash",
    replicas: int = 0,
):
    """Build one configuration's system on a fresh simulated machine.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) is attached
    to the disk *before* the index build, so chaos harnesses can inject
    torn writes or mid-build space exhaustion into the build itself.

    With ``shards`` set, the collection is document-partitioned across
    that many independent simulated machines (each its own disk, pools,
    and Table 2 buffers) and a
    :class:`~repro.shard.system.ShardedIRSystem` is returned instead;
    ``partitioner`` selects the document partitioning scheme ("hash" or
    "range"), ``replicas`` adds that many byte-identical mirror machines
    per shard, and ``fault_plan`` may then be a per-shard list or a
    mapping keyed by shard id / ``(shard, replica)``.
    """
    if shards is not None:
        from ..shard import materialize_sharded

        return materialize_sharded(
            prepared,
            config,
            n_shards=shards,
            partitioner=partitioner,
            fault_plans=fault_plan,
            replicas=replicas,
        )
    if replicas:
        raise ConfigError("replicas require a sharded build (set shards=)")
    clock = SimClock(cost=config.cost)
    fs = SimFileSystem(
        SimDisk(clock),
        cache_blocks=config.fs_cache_blocks,
        readahead_blocks=config.readahead_blocks,
    )
    if fault_plan is not None:
        fs.disk.attach_fault_plan(fault_plan)
    wal = None
    if config.use_wal and config.backend != "btree":
        from ..mneme import RedoLog

        wal = RedoLog(fs.create("invfile.wal"))
    if config.backend == "btree":
        store = BTreeInvertedFile(fs)
    elif config.backend == "mneme-linked":
        from ..inquery import LinkedMnemeInvertedFile

        store = LinkedMnemeInvertedFile(
            fs,
            medium_segment_bytes=config.medium_segment_bytes,
            medium_max_bytes=config.medium_max_bytes,
            chunk_bytes=config.chunk_bytes,
            wal=wal,
        )
    else:
        store = MnemeInvertedFile(
            fs,
            medium_segment_bytes=config.medium_segment_bytes,
            medium_max_bytes=config.medium_max_bytes,
            wal=wal,
        )
    keys = store.bulk_build(iter(prepared.records))
    # An empty shard of a partitioned build has no records to size
    # buffers from; it serves nothing, so it needs no cache either.
    if config.backend.startswith("mneme") and config.cached and prepared.largest_record > 0:
        store.attach_buffers(
            table2_buffer_sizes(
                prepared.largest_record,
                medium_segment_bytes=config.medium_segment_bytes,
            )
        )

    dictionary = HashDictionary(initial_buckets=max(1024, len(prepared.records)))
    for rank in sorted(prepared.term_id_of_rank):
        term_id = prepared.term_id_of_rank[rank]
        entry = dictionary.add(term_string(rank))
        entry.term_id = term_id
        entry.df = prepared.df[term_id]
        entry.ctf = prepared.ctf[term_id]
        entry.storage_key = keys[term_id]
        entry.max_tf = prepared.max_tf.get(term_id, 0)
        entry.bounds_key = store.chunk_bounds_key(entry.storage_key)

    doctable = DocTable()
    for doc_id, length in prepared.doctable.lengths.items():
        doctable.add(doc_id, length)

    index = CollectionIndex(
        fs=fs,
        dictionary=dictionary,
        doctable=doctable,
        store=store,
        stats=prepared.stats,
        stopwords=frozenset(),
        stem_fn=str,  # synthetic terms must not be stemmed
    )
    return IRSystem(config=config, fs=fs, clock=clock, index=index, prepared=prepared)
