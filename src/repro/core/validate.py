"""Integrity checking — an ``fsck`` for the index and the store.

A downstream user of a storage system needs a way to audit it.  These
checks verify every structural invariant the reproduction relies on:

* **Store level** (Mneme): every physical segment referenced by a
  segment table decodes with a valid CRC; every object-map entry points
  at a real segment that actually contains the object; logical segments
  are owned by exactly one pool; live-object counts agree with the
  tables.
* **Index level** (any backend): every dictionary entry with a record
  fetches one that decodes, whose document frequency and collection
  term frequency match the dictionary statistics, whose postings are
  strictly ordered, and whose document ids exist in the document table.

Checks never modify anything; they return a report listing each
violation found.
"""

from dataclasses import dataclass, field
from typing import List

from ..errors import ReproError
from ..inquery import (
    CollectionIndex,
    LinkedMnemeInvertedFile,
    MnemeInvertedFile,
    decode_record,
)
from ..mneme import (
    DirectorySegment,
    FixedSlotSegment,
    MnemeFile,
    SmallObjectPool,
    live_oids,
)


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    checks: int = 0
    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def problem(self, where: str, message: str) -> None:
        self.issues.append(ValidationIssue(where, message))

    def merged(self, other: "ValidationReport") -> "ValidationReport":
        return ValidationReport(
            checks=self.checks + other.checks, issues=self.issues + other.issues
        )


def check_store(mfile: MnemeFile) -> ValidationReport:
    """Audit one Mneme file's segments, tables, and ownership maps."""
    report = ValidationReport()
    owners = {}
    for pool in mfile.pools.values():
        for logseg in pool.logsegs():
            report.checks += 1
            if logseg in owners:
                report.problem(
                    f"logseg {logseg}",
                    f"owned by both {owners[logseg]!r} and {pool.name!r}",
                )
            owners[logseg] = pool.name

    for pool in mfile.pools.values():
        codec = FixedSlotSegment if isinstance(pool, SmallObjectPool) else DirectorySegment
        live_segments = set()
        for seg_ordinal in range(len(pool._segs)):
            offset, length = pool._segs.get(seg_ordinal)
            report.checks += 1
            if length == 0:
                continue  # deleted large segment
            if offset == 0:
                report.problem(
                    f"{pool.name} segment {seg_ordinal}",
                    "table entry was never assigned a file offset",
                )
                continue
            if offset + length > mfile.main.size:
                report.problem(
                    f"{pool.name} segment {seg_ordinal}",
                    f"extent [{offset}, {offset + length}) past EOF {mfile.main.size}",
                )
                continue
            try:
                codec.from_bytes(mfile.main.read(offset, length))
                live_segments.add(seg_ordinal)
            except ReproError as error:
                report.problem(
                    f"{pool.name} segment {seg_ordinal}", f"undecodable: {error}"
                )

        if hasattr(pool, "_omap"):
            for ordinal in range(len(pool._omap)):
                report.checks += 1
                (seg_ordinal,) = pool._omap.get(ordinal)
                if seg_ordinal == 0xFFFFFFFF:
                    continue  # tombstone
                if seg_ordinal >= len(pool._segs):
                    report.problem(
                        f"{pool.name} object ordinal {ordinal}",
                        f"maps to nonexistent segment {seg_ordinal}",
                    )

        # Every live object must fetch.
        live = 0
        for oid in live_oids(pool):
            report.checks += 1
            try:
                pool.fetch(oid)
                live += 1
            except ReproError as error:
                report.problem(f"{pool.name} object {oid}", f"unfetchable: {error}")
        report.checks += 1
        if live != pool.live_objects:
            report.problem(
                pool.name,
                f"table shows {live} live objects but pool state says "
                f"{pool.live_objects}",
            )
    return report


def check_index(index: CollectionIndex, sample_every: int = 1) -> ValidationReport:
    """Audit an indexed collection against its dictionary and doc table.

    ``sample_every`` checks one in every N dictionary entries (1 = all),
    for quick audits of the larger synthetic collections.
    """
    report = ValidationReport()
    if sample_every < 1:
        sample_every = 1
    for position, entry in enumerate(index.dictionary.entries()):
        if position % sample_every:
            continue
        where = f"term {entry.term!r}"
        report.checks += 1
        if entry.df == 0:
            continue
        if entry.storage_key == 0:
            report.problem(where, "has df > 0 but no storage key")
            continue
        try:
            record = index.store.fetch(entry.storage_key)
        except ReproError as error:
            report.problem(where, f"record unfetchable: {error}")
            continue
        try:
            postings = decode_record(record)
        except ReproError as error:
            report.problem(where, f"record undecodable: {error}")
            continue
        if len(postings) != entry.df:
            report.problem(
                where, f"df {entry.df} but record has {len(postings)} postings"
            )
        ctf = sum(len(p) for _d, p in postings)
        if ctf != entry.ctf:
            report.problem(where, f"ctf {entry.ctf} but record totals {ctf}")
        last_doc = -1
        for doc_id, positions in postings:
            if doc_id <= last_doc:
                report.problem(where, f"doc ids out of order at {doc_id}")
                break
            last_doc = doc_id
            if doc_id not in index.doctable:
                report.problem(where, f"posting for unknown document {doc_id}")
                break
            if len(positions) > index.doctable.length_of(doc_id):
                report.problem(
                    where,
                    f"tf {len(positions)} exceeds document {doc_id}'s length",
                )
                break
    return report


def check_system(index: CollectionIndex, sample_every: int = 1) -> ValidationReport:
    """Store audit (when the backend is Mneme) plus the index audit."""
    report = ValidationReport()
    store = index.store
    if isinstance(store, (MnemeInvertedFile, LinkedMnemeInvertedFile)):
        report = report.merged(check_store(store.mfile))
    return report.merged(check_index(index, sample_every))
