"""Whole-experiment drivers: one collection, three systems, many sets.

This is the top of the reproduction stack: give it a collection profile
and query profiles, and it returns the grid of
:class:`~repro.core.metrics.RunMetrics` the benchmark tables are printed
from.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..synth import (
    PROFILES,
    QueryProfile,
    QuerySet,
    SyntheticCollection,
    generate_query_set,
)
from ..errors import ConfigError
from .config import CONFIG_NAMES, config_by_name
from .metrics import RunMetrics, measure_run
from .prepared import IRSystem, PreparedCollection, materialize, prepare_collection


#: The paper's seven query sets, as (collection, query profile) pairs.
QUERY_SET_PROFILES: Dict[str, List[QueryProfile]] = {
    "cacm-s": [
        QueryProfile(name="cacm-1", style="boolean", n_queries=50,
                     mean_terms=5, reuse_rate=0.3, seed=201),
        QueryProfile(name="cacm-2", style="boolean", n_queries=50,
                     mean_terms=6, reuse_rate=0.45, seed=202),
        QueryProfile(name="cacm-3", style="phrase", n_queries=50,
                     mean_terms=8, reuse_rate=0.5, seed=203),
    ],
    "legal-s": [
        QueryProfile(name="legal-1", style="natural", n_queries=50,
                     mean_terms=6, reuse_rate=0.15, bias_alpha=1.4, seed=204),
        QueryProfile(name="legal-2", style="weighted", n_queries=50,
                     mean_terms=8, reuse_rate=0.25, bias_alpha=1.4, seed=205),
    ],
    "tipster1-s": [
        QueryProfile(name="tipster-1", style="natural", n_queries=50,
                     mean_terms=10, reuse_rate=0.3, bias_alpha=1.5, seed=206),
    ],
    "tipster-s": [
        QueryProfile(name="tipster-1", style="natural", n_queries=50,
                     mean_terms=10, reuse_rate=0.3, bias_alpha=1.5, seed=206),
    ],
}


@dataclass
class Workload:
    """A prepared collection and its generated query sets."""

    prepared: PreparedCollection
    query_sets: List[QuerySet]


_WORKLOAD_CACHE: Dict[str, Workload] = {}


def load_workload(profile_name: str, use_cache: bool = True) -> Workload:
    """Build (or fetch from the in-process cache) one named workload."""
    if use_cache and profile_name in _WORKLOAD_CACHE:
        return _WORKLOAD_CACHE[profile_name]
    profile = PROFILES.get(profile_name)
    if profile is None:
        raise ConfigError(f"unknown collection profile {profile_name!r}")
    collection = SyntheticCollection(profile)
    prepared = prepare_collection(collection)
    query_sets = [
        generate_query_set(collection, query_profile)
        for query_profile in QUERY_SET_PROFILES.get(profile_name, [])
    ]
    workload = Workload(prepared=prepared, query_sets=query_sets)
    if use_cache:
        _WORKLOAD_CACHE[profile_name] = workload
    return workload


def build_systems(
    prepared: PreparedCollection,
    config_names: Sequence[str] = CONFIG_NAMES,
    **overrides,
) -> Dict[str, IRSystem]:
    """Materialize the named configurations for one collection."""
    return {
        name: materialize(prepared, config_by_name(name, **overrides))
        for name in config_names
    }


@dataclass
class ExperimentGrid:
    """RunMetrics for every (query set, configuration) cell."""

    collection: str
    cells: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)
    # cells[query_set_name][config_name]

    def metric(self, query_set: str, config: str) -> RunMetrics:
        return self.cells[query_set][config]


def run_grid(
    profile_name: str,
    config_names: Sequence[str] = CONFIG_NAMES,
    systems: Optional[Dict[str, IRSystem]] = None,
    keep_results: bool = False,
    **overrides,
) -> ExperimentGrid:
    """Run every query set of a collection on every configuration.

    Each (set, config) cell is measured from a cold start, exactly as
    the paper chilled the file system between runs.
    """
    workload = load_workload(profile_name)
    if systems is None:
        systems = build_systems(workload.prepared, config_names, **overrides)
    grid = ExperimentGrid(collection=profile_name)
    for query_set in workload.query_sets:
        grid.cells[query_set.name] = {}
        for config_name in config_names:
            metrics = measure_run(
                systems[config_name],
                query_set.queries,
                query_set_name=query_set.name,
                keep_results=keep_results,
            )
            grid.cells[query_set.name][config_name] = metrics
    return grid
