"""Per-run measurement: the quantities behind Tables 3-6.

A measured run reproduces the paper's methodology:

* a **cold start** — the OS file cache is purged (the 32 MB chill file)
  and every user-space cache is dropped (fresh INQUERY process);
* timing begins *after* open/initialization and covers only query
  processing;
* the reported statistics are
  - wall-clock time (Table 3),
  - system CPU + I/O wait (Table 4),
  - ``I`` = 8 KB blocks actually read from disk,
    ``A`` = file accesses per record lookup,
    ``B`` = Kbytes read from the inverted file (Table 5),
  - per-pool buffer references / hits / rate (Table 6).

The simulation is deterministic, so a single run replaces the paper's
mean over six runs (their runs differed by <1% anyway).
"""

from dataclasses import dataclass, field
from typing import Dict, List

from ..inquery import DEFAULT_TOP_K, MnemeInvertedFile, QueryResult, RetrievalEngine
from ..mneme import BufferStats
from .prepared import IRSystem


@dataclass
class RunMetrics:
    """Everything measured in one batch run of a query set."""

    system: str
    query_set: str
    queries: int
    wall_s: float
    user_s: float
    system_io_s: float
    io_inputs: int            #: "I": 8 KB blocks read from disk
    file_accesses: int
    record_lookups: int
    bytes_from_file: int
    buffer_stats: Dict[str, BufferStats] = field(default_factory=dict)
    results: List[QueryResult] = field(default_factory=list)
    #: Queries that completed with at least one unreadable term skipped.
    degraded_queries: int = 0
    #: Stored-term reads that stayed unreadable, summed over the run.
    terms_failed: int = 0
    #: Dynamic-pruning effect counters, summed over the run.  All three
    #: are zero on exhaustive paths (pruning off, or auto-fallback).
    documents_skipped: int = 0
    blocks_skipped: int = 0
    prune_threshold_updates: int = 0
    #: Decoded-term cache counters (zero when no cache was attached).
    #: Unlike the fields above these are not results-derived: harnesses
    #: that attach a cache fill them from its
    #: :class:`~repro.serve.termcache.TermCacheStats` after the run.
    term_cache_hits: int = 0
    term_cache_misses: int = 0
    term_cache_evictions: int = 0
    term_cache_bytes: int = 0

    @property
    def accesses_per_lookup(self) -> float:
        """"A": average file accesses per inverted list record lookup."""
        if not self.record_lookups:
            return 0.0
        return self.file_accesses / self.record_lookups

    @property
    def kbytes_from_file(self) -> float:
        """"B": total Kbytes read from the inverted file."""
        return self.bytes_from_file / 1024.0


def cold_start(system: IRSystem) -> None:
    """Purge every cache and zero the clock, as each paper run began."""
    store = system.index.store
    if isinstance(store, MnemeInvertedFile):
        store.mfile.drop_user_caches()
    else:
        store.tree.drop_user_caches()
    system.fs.chill()
    system.clock.reset()


class SystemSnapshot:
    """Every counter a run is measured as a delta against.

    Factored out of :func:`measure_run` so harnesses that drive engines
    themselves (the shard scheduler, custom replay loops) measure with
    the identical methodology: snapshot, run, difference.
    """

    def __init__(self, system: IRSystem):
        store = system.index.store
        self._system = system
        self._clock = system.clock.snapshot()
        self._disk = system.fs.disk.stats.copy()
        self._files = [(f, f.stats.copy()) for f in store.files]
        self._lookups = store.record_lookups
        self._buffers: Dict[str, BufferStats] = {}
        if isinstance(store, MnemeInvertedFile):
            self._buffers = {
                k: s.copy() for k, s in store.buffer_stats().items()
            }

    def metrics(
        self,
        results: List[QueryResult],
        query_set_name: str = "",
        queries: int = 0,
        keep_results: bool = True,
    ) -> RunMetrics:
        """The paper's metrics accumulated since this snapshot."""
        system = self._system
        store = system.index.store
        elapsed = system.clock.since(self._clock)
        disk_delta = system.fs.disk.stats - self._disk
        accesses = sum((f.stats - s).read_calls for f, s in self._files)
        bytes_read = sum((f.stats - s).bytes_delivered for f, s in self._files)
        buffer_stats: Dict[str, BufferStats] = {}
        if isinstance(store, MnemeInvertedFile):
            buffer_stats = {
                name: stats - self._buffers[name]
                for name, stats in store.buffer_stats().items()
            }
        return RunMetrics(
            system=system.config.name,
            query_set=query_set_name,
            queries=queries or len(results),
            wall_s=elapsed.wall_ms / 1000.0,
            user_s=elapsed.user_ms / 1000.0,
            system_io_s=elapsed.system_io_ms / 1000.0,
            io_inputs=disk_delta.blocks_read,
            file_accesses=accesses,
            record_lookups=store.record_lookups - self._lookups,
            bytes_from_file=bytes_read,
            buffer_stats=buffer_stats,
            results=results if keep_results else [],
            degraded_queries=sum(1 for r in results if r.degraded),
            terms_failed=sum(r.terms_failed for r in results),
            documents_skipped=sum(
                getattr(r, "documents_skipped", 0) for r in results
            ),
            blocks_skipped=sum(getattr(r, "blocks_skipped", 0) for r in results),
            prune_threshold_updates=sum(
                getattr(r, "prune_threshold_updates", 0) for r in results
            ),
        )


def measure_run(
    system: IRSystem,
    queries: List[str],
    query_set_name: str = "",
    top_k: int = DEFAULT_TOP_K,
    cold: bool = True,
    keep_results: bool = True,
) -> RunMetrics:
    """Run a query set against a system and collect the paper's metrics."""
    if cold:
        cold_start(system)
    snapshot = SystemSnapshot(system)
    engine = RetrievalEngine(
        system.index,
        top_k=top_k,
        use_reservation=system.config.use_reservation,
        use_fastpath=system.config.use_fastpath,
    )
    results = engine.run_batch(queries)
    return snapshot.metrics(
        results,
        query_set_name=query_set_name,
        queries=len(queries),
        keep_results=keep_results,
    )


def improvement(baseline: float, measured: float) -> float:
    """The paper's improvement metric: (B-tree - Mneme) / B-tree."""
    if baseline <= 0:
        return 0.0
    return (baseline - measured) / baseline
