"""Shared latency and aggregation statistics.

One home for the percentile/median/spread arithmetic that the
benchmarks and metrics layers all need: the wall-clock gate's
run-to-run noise bound, the shard scheduler's load-skew ratio, and the
serving benchmark's latency distribution all call into this module
instead of hand-rolling a third median.

Percentiles use the *nearest-rank* definition (the smallest sample at
or above the requested fraction of the distribution).  It is exact on
the sample — no interpolation — so two runs that produced the same
latencies report the same percentiles bit for bit, which is what a
deterministic regression gate needs.
"""

import math
import statistics
from typing import Dict, Iterable, List, Sequence


def median_of(samples: Sequence[float]) -> float:
    """The sample median (mean of the two middles for even counts)."""
    return float(statistics.median(samples))


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile ``q`` in [0, 100] of a sample.

    ``percentile(x, 50)`` is the lower-median (not interpolated);
    ``percentile(x, 100)`` is the maximum; ``percentile(x, 0)`` the
    minimum.
    """
    if not samples:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(samples)
    if q == 0.0:
        return float(ordered[0])
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[rank - 1])


def latency_summary(samples_ms: Sequence[float]) -> Dict[str, float]:
    """The serving-latency digest: count, mean, p50/p95/p99, max.

    All values are in the unit of the input (milliseconds by
    convention); an empty sample yields an all-zero digest rather than
    raising, so report shaping never has to special-case a dry run.
    """
    if not samples_ms:
        return {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }
    return {
        "count": len(samples_ms),
        "mean_ms": sum(samples_ms) / len(samples_ms),
        "p50_ms": percentile(samples_ms, 50),
        "p95_ms": percentile(samples_ms, 95),
        "p99_ms": percentile(samples_ms, 99),
        "max_ms": max(samples_ms),
    }


def relative_spread(samples: Sequence[float]) -> float:
    """Run-to-run noise: (max - min) / median, 0 for degenerate input."""
    med = median_of(samples)
    if med <= 0:
        return 0.0
    return (max(samples) - min(samples)) / med


def max_over_mean(values: Iterable[float]) -> float:
    """Load-skew ratio: max over mean, 1.0 for empty or zero input."""
    collected: List[float] = list(values)
    if not collected:
        return 1.0
    mean = sum(collected) / len(collected)
    return max(collected) / mean if mean > 0 else 1.0
