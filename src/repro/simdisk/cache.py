"""LRU block cache.

Used in two places: as the simulated ULTRIX file-system buffer cache (below
every storage backend, exactly as in the paper's platform), and as the
B-tree package's "limited and unsophisticated" node cache.

The cache maps arbitrary hashable keys to block payloads and maintains
strict LRU order.  Entries may be *pinned*; pinned entries are never chosen
for eviction.  Writes are handled write-through by the callers, so the
cache itself never holds dirty data.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Optional


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def references(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        refs = self.references
        return self.hits / refs if refs else 0.0

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.insertions)

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - other.hits,
            self.misses - other.misses,
            self.evictions - other.evictions,
            self.insertions - other.insertions,
        )


class BlockCache:
    """A fixed-capacity LRU cache of block payloads.

    Parameters
    ----------
    capacity:
        Maximum number of entries.  Zero disables caching entirely
        (every :meth:`get` is a miss and :meth:`put` is a no-op).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self._pins: Dict[Hashable, int] = {}
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        return iter(self._entries.keys())

    def get(self, key: Hashable) -> Optional[bytes]:
        """Return the cached payload or ``None``, updating LRU order."""
        data = self._entries.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return data

    def peek(self, key: Hashable) -> Optional[bytes]:
        """Return the cached payload without touching LRU order or stats."""
        return self._entries.get(key)

    def put(self, key: Hashable, data: bytes) -> None:
        """Insert or refresh an entry, evicting LRU unpinned entries."""
        if self._capacity == 0:
            return
        if key in self._entries:
            self._entries[key] = data
            self._entries.move_to_end(key)
            return
        self._evict_for_space()
        self._entries[key] = data
        self.stats.insertions += 1

    def pin(self, key: Hashable) -> None:
        """Protect an entry from eviction; pins nest."""
        if key not in self._entries:
            raise KeyError(f"cannot pin absent key {key!r}")
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: Hashable) -> None:
        """Release one pin on an entry."""
        count = self._pins.get(key, 0)
        if count <= 1:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count - 1

    def pinned(self, key: Hashable) -> bool:
        return self._pins.get(key, 0) > 0

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry if present (and any pins on it)."""
        self._entries.pop(key, None)
        self._pins.pop(key, None)

    def clear(self) -> None:
        """Drop every entry — the paper's 32 MB "chill file" effect."""
        self._entries.clear()
        self._pins.clear()

    def _evict_for_space(self) -> None:
        """Make room for one insertion, skipping pinned entries."""
        while len(self._entries) >= self._capacity:
            victim = None
            for key in self._entries:
                if self._pins.get(key, 0) == 0:
                    victim = key
                    break
            if victim is None:
                # Everything pinned: allow temporary overflow rather than
                # deadlock; the next unpinned insertion will shrink us back.
                return
            del self._entries[victim]
            self.stats.evictions += 1
