"""Simulated operating-system file layer.

Byte-addressed files are implemented over a :class:`~repro.simdisk.disk.SimDisk`
through a shared LRU :class:`~repro.simdisk.cache.BlockCache` that plays the
role of the ULTRIX file-system buffer cache in the paper's platform.

Every :meth:`SimFile.read` models one file-access system call: it charges
the kernel-crossing cost, pulls each covered 8 KB block through the FS cache
(misses go to the disk, which is where the paper's ``I`` counter ticks), and
charges a copy cost for the bytes delivered to user space.  Per-file
counters record the number of accesses and bytes delivered, which is exactly
what Table 5's ``A`` and ``B`` columns report for the inverted file.

:meth:`SimFileSystem.chill` reproduces the paper's methodology of reading a
32 MB "chill file" between runs to purge the OS cache.
"""

from dataclasses import dataclass
from typing import Dict, List

from ..errors import FileNotFoundInStoreError, FileSystemError
from .cache import BlockCache
from .disk import SimDisk
from .timing import BLOCK_SIZE


@dataclass
class FileStats:
    """Access accounting for one simulated file."""

    read_calls: int = 0
    write_calls: int = 0
    bytes_delivered: int = 0
    bytes_written: int = 0

    def copy(self) -> "FileStats":
        return FileStats(
            self.read_calls, self.write_calls,
            self.bytes_delivered, self.bytes_written,
        )

    def __sub__(self, other: "FileStats") -> "FileStats":
        return FileStats(
            self.read_calls - other.read_calls,
            self.write_calls - other.write_calls,
            self.bytes_delivered - other.bytes_delivered,
            self.bytes_written - other.bytes_written,
        )


class SimFile:
    """One byte-addressed file on the simulated file system.

    Files grow on demand; blocks are allocated from the shared disk, so
    files written in alternation interleave physically.
    """

    def __init__(self, fs: "SimFileSystem", name: str):
        self._fs = fs
        self.name = name
        self._blocks: List[int] = []  # file block index -> disk block number
        self._size = 0
        self.stats = FileStats()
        self._prev_last_block = -2  # read-ahead sequential-pattern detector

    @property
    def size(self) -> int:
        """Current length of the file in bytes."""
        return self._size

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def read(self, offset: int, length: int) -> bytes:
        """One file-access system call delivering ``length`` bytes.

        Reading past end of file is an error: the storage layers above
        always know their record extents, so a short read indicates a bug.
        """
        if offset < 0 or length < 0:
            raise FileSystemError("negative offset or length")
        if length == 0:
            return b""
        if offset + length > self._size:
            raise FileSystemError(
                f"read [{offset}, {offset + length}) past EOF ({self._size})"
                f" of {self.name!r}"
            )
        clock = self._fs.disk.clock
        clock.charge_system(clock.cost.syscall_ms)
        self.stats.read_calls += 1

        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        chunks = []
        for file_block in range(first, last + 1):
            data = self._block_through_cache(file_block)
            lo = offset - file_block * BLOCK_SIZE if file_block == first else 0
            hi = (
                offset + length - file_block * BLOCK_SIZE
                if file_block == last
                else BLOCK_SIZE
            )
            chunks.append(data[lo:hi])
        payload = b"".join(chunks)
        clock.charge_system(clock.cost.copy_ms_per_kb * (len(payload) / 1024.0))
        self.stats.bytes_delivered += len(payload)
        if self._fs.readahead_blocks and first == self._prev_last_block + 1:
            # Sequential pattern across read() calls: prefetch ahead, as
            # the ULTRIX buffer cache did.
            self._prefetch(last + 1, self._fs.readahead_blocks)
        self._prev_last_block = last
        return payload

    def _prefetch(self, start_block: int, count: int) -> None:
        """Pull upcoming file blocks into the FS cache."""
        end = min(start_block + count, len(self._blocks))
        for file_block in range(start_block, end):
            key = (self.name, file_block)
            if self._fs.cache.peek(key) is None:
                self._fs.cache.put(key, self._fs.disk.read_block(self._blocks[file_block]))

    def write(self, offset: int, data: bytes) -> None:
        """One file-write system call; extends the file as needed."""
        if offset < 0:
            raise FileSystemError("negative offset")
        if not data:
            return
        clock = self._fs.disk.clock
        clock.charge_system(clock.cost.syscall_ms)
        clock.charge_system(clock.cost.copy_ms_per_kb * (len(data) / 1024.0))
        self.stats.write_calls += 1
        self.stats.bytes_written += len(data)

        end = offset + data_len if (data_len := len(data)) else offset
        self._ensure_blocks((end + BLOCK_SIZE - 1) // BLOCK_SIZE)
        if end > self._size:
            self._size = end

        first = offset // BLOCK_SIZE
        last = (end - 1) // BLOCK_SIZE
        pos = 0
        for file_block in range(first, last + 1):
            block_start = file_block * BLOCK_SIZE
            lo = max(offset - block_start, 0)
            hi = min(end - block_start, BLOCK_SIZE)
            piece = data[pos:pos + (hi - lo)]
            pos += hi - lo
            if lo == 0 and hi == BLOCK_SIZE:
                block = piece
            else:
                current = bytearray(self._block_through_cache(file_block))
                current[lo:hi] = piece
                block = bytes(current)
            self._write_block(file_block, block)

    def append(self, data: bytes) -> int:
        """Write ``data`` at EOF, returning the offset it was written at."""
        offset = self._size
        self.write(offset, data)
        return offset

    def invalidate_cached(self, offset: int, length: int) -> None:
        """Drop the FS-cached copies of the blocks covering a byte range.

        The read-repair path uses this when delivered bytes fail
        verification: a corrupted block may have been cached on the way
        up, and retrying through the cache would just re-serve the
        poison.  No simulated time is charged — invalidation is a
        user-space bookkeeping operation.
        """
        if length <= 0:
            return
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        for file_block in range(first, min(last + 1, len(self._blocks))):
            self._fs.cache.invalidate((self.name, file_block))

    def truncate(self, size: int = 0) -> None:
        """Shrink the file; freed blocks are not reused (append-era FS)."""
        if size < 0:
            raise FileSystemError("negative size")
        if size > self._size:
            raise FileSystemError("truncate cannot grow a file")
        for file_block in range((size + BLOCK_SIZE - 1) // BLOCK_SIZE, len(self._blocks)):
            self._fs.cache.invalidate((self.name, file_block))
        self._size = size
        del self._blocks[(size + BLOCK_SIZE - 1) // BLOCK_SIZE:]

    def _block_through_cache(self, file_block: int) -> bytes:
        """Fetch a file block via the FS cache; a miss reads the disk."""
        if file_block >= len(self._blocks):
            return bytes(BLOCK_SIZE)
        key = (self.name, file_block)
        cached = self._fs.cache.get(key)
        if cached is not None:
            return cached
        data = self._fs.disk.read_block(self._blocks[file_block])
        self._fs.cache.put(key, data)
        return data

    def _write_block(self, file_block: int, data: bytes) -> None:
        """Write-through: update both the disk and the FS cache."""
        self._fs.disk.write_block(self._blocks[file_block], data)
        self._fs.cache.put((self.name, file_block), data)

    def _ensure_blocks(self, count: int) -> None:
        while len(self._blocks) < count:
            self._blocks.append(self._fs.disk.allocate())


class SimFileSystem:
    """A namespace of :class:`SimFile` objects over one disk and FS cache.

    Parameters
    ----------
    disk:
        The backing block device.
    cache_blocks:
        Capacity of the file-system buffer cache, in 8 KB blocks.  The
        paper's machine had 64 MB of memory; the scaled default in
        :mod:`repro.core.config` models a proportionally scaled cache.
    """

    def __init__(self, disk: SimDisk, cache_blocks: int = 1024, readahead_blocks: int = 0):
        self.disk = disk
        self.cache = BlockCache(cache_blocks)
        #: Blocks prefetched after a sequential access pattern is seen
        #: (0 disables read-ahead; the paper-calibrated configurations
        #: leave it off so measured ``I`` counts stay interpretable).
        self.readahead_blocks = readahead_blocks
        self._files: Dict[str, SimFile] = {}

    def create(self, name: str) -> SimFile:
        """Create a new empty file; replaces any existing file of the name."""
        handle = SimFile(self, name)
        self._files[name] = handle
        return handle

    def open(self, name: str) -> SimFile:
        """Return the named file.

        Raises
        ------
        FileNotFoundInStoreError
            If the file was never created.
        """
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(name) from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def remove(self, name: str) -> None:
        """Delete a file's namespace entry and purge its cached blocks.

        Disk blocks are not reclaimed (the simulated device never
        shrinks), matching how the harness accounts for space: file
        sizes, not raw device usage.
        """
        file = self._files.pop(name, None)
        if file is None:
            raise FileNotFoundInStoreError(name)
        for file_block in range(file.block_count):
            self.cache.invalidate((name, file_block))

    def rename(self, old: str, new: str) -> None:
        """Rename a file (replacing any existing file called ``new``)."""
        file = self._files.pop(old, None)
        if file is None:
            raise FileNotFoundInStoreError(old)
        for file_block in range(file.block_count):
            self.cache.invalidate((old, file_block))
        if new in self._files:
            self.remove(new)
        file.name = new
        self._files[new] = file

    def names(self):
        return sorted(self._files)

    def chill(self) -> None:
        """Purge the FS buffer cache, as the paper's 32 MB chill file does.

        Charges the sequential read of a chill file so the purge is not
        free in simulated time (harnesses normally exclude it by
        snapshotting the clock afterwards, as the paper timed only query
        processing).
        """
        clock = self.disk.clock
        chill_blocks = max(self.cache.capacity, 1)
        clock.charge_io(
            clock.cost.block_read_random_ms
            + clock.cost.block_read_sequential_ms * (chill_blocks - 1)
        )
        self.cache.clear()
