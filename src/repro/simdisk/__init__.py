"""Simulated storage substrate: disk, OS buffer cache, files, and clock.

This subpackage stands in for the paper's DECstation 5000/240 + ULTRIX +
SCSI-disk platform.  See DESIGN.md section 2 for the substitution argument:
the paper's results are counting effects (disk block inputs, file-access
system calls, bytes copied), so a deterministic counter-based simulator
preserves every ordering and crossover the paper reports.
"""

from .cache import BlockCache, CacheStats
from .disk import DiskStats, SimDisk
from .filesystem import FileStats, SimFile, SimFileSystem
from .image import load_image, save_image
from .timing import BLOCK_SIZE, CostModel, SimClock, TimeBreakdown
from .trace import AccessTracer, TraceEvent, TraceSummary

__all__ = [
    "BLOCK_SIZE",
    "BlockCache",
    "CacheStats",
    "CostModel",
    "DiskStats",
    "FileStats",
    "load_image",
    "save_image",
    "SimClock",
    "SimDisk",
    "SimFile",
    "SimFileSystem",
    "TimeBreakdown",
    "AccessTracer",
    "TraceEvent",
    "TraceSummary",
]
