"""Simulated clock and I/O cost model.

The paper measured wall-clock time, user CPU time, and "system CPU plus time
spent waiting for I/O" on a DECstation 5000/240 with SCSI disks.  We do not
have that hardware, so the substrate instead *counts* every interesting event
(disk block transfers, file-access system calls, kernel-to-user copies,
postings processed by the retrieval engine) and converts the counts into
deterministic simulated milliseconds through a fixed :class:`CostModel`.

Times are split into the same three buckets the paper reports:

``user``
    CPU spent in the retrieval and ranking engine (belief computation,
    record decompression).  The paper observed this varies by <1% across
    storage backends; in our simulation it depends only on the postings
    processed, so it is identical across backends by construction.

``system``
    CPU spent crossing the system-call boundary and copying data between
    simulated kernel and user space.

``io``
    Time spent waiting for the simulated disk.

Table 3 corresponds to ``wall = user + system + io``; Table 4 corresponds to
``system + io``.
"""

from dataclasses import dataclass, field

#: Size of one disk transfer block, in bytes.  The paper's ULTRIX file system
#: reads 8 Kbyte blocks ("I" in Table 5 counts these).
BLOCK_SIZE = 8192


@dataclass(frozen=True)
class CostModel:
    """Deterministic cost constants, in simulated milliseconds.

    Defaults approximate early-90s SCSI disk and MIPS R3000 behaviour: a
    random 8 KB read pays an average seek plus rotational delay (~14 ms)
    plus transfer (~2 ms); a sequential read pays transfer only.
    """

    #: Random 8 KB block read (seek + rotation + transfer).
    block_read_random_ms: float = 16.0
    #: Sequential 8 KB block read (head already positioned).
    block_read_sequential_ms: float = 2.0
    #: Random 8 KB block write.
    block_write_random_ms: float = 17.0
    #: Sequential 8 KB block write.
    block_write_sequential_ms: float = 2.5
    #: Fixed kernel-crossing overhead per file-access system call.
    syscall_ms: float = 1.0
    #: Copying data between simulated kernel and user space, per Kbyte.
    copy_ms_per_kb: float = 0.15
    #: User CPU per posting entry processed by the inference engine.
    cpu_ms_per_posting: float = 0.002
    #: User CPU per Kbyte of inverted list decompressed.
    cpu_ms_per_kb_decode: float = 0.03
    #: User CPU per query-node evaluated (parse/plumbing overhead).
    cpu_ms_per_query_node: float = 0.5


@dataclass
class TimeBreakdown:
    """Accumulated simulated time, split into the paper's three buckets."""

    user_ms: float = 0.0
    system_ms: float = 0.0
    io_ms: float = 0.0

    @property
    def wall_ms(self) -> float:
        """Total simulated wall-clock time (Table 3)."""
        return self.user_ms + self.system_ms + self.io_ms

    @property
    def system_io_ms(self) -> float:
        """System CPU plus I/O wait (Table 4)."""
        return self.system_ms + self.io_ms

    def copy(self) -> "TimeBreakdown":
        return TimeBreakdown(self.user_ms, self.system_ms, self.io_ms)

    def __sub__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            self.user_ms - other.user_ms,
            self.system_ms - other.system_ms,
            self.io_ms - other.io_ms,
        )


@dataclass
class SimClock:
    """Simulated clock shared by every component of one simulated machine.

    Components charge time to the clock as they perform work; experiment
    harnesses snapshot the clock before and after a run and report deltas.
    """

    cost: CostModel = field(default_factory=CostModel)
    time: TimeBreakdown = field(default_factory=TimeBreakdown)

    def charge_user(self, ms: float) -> None:
        """Charge engine (user) CPU time."""
        self.time.user_ms += ms

    def charge_system(self, ms: float) -> None:
        """Charge kernel-crossing / copy (system) CPU time."""
        self.time.system_ms += ms

    def charge_io(self, ms: float) -> None:
        """Charge disk wait time."""
        self.time.io_ms += ms

    def snapshot(self) -> TimeBreakdown:
        """Return a copy of the accumulated time for later differencing."""
        return self.time.copy()

    def since(self, start: TimeBreakdown) -> TimeBreakdown:
        """Return the time accumulated since ``start`` was snapshot."""
        return self.time - start

    def reset(self) -> None:
        """Zero the accumulated time (a fresh run)."""
        self.time = TimeBreakdown()
