"""Saving and loading simulated machine images to the host file system.

The simulated machine lives in process memory; an *image* makes its
state durable on the real disk so an index built in one process can be
queried in another (examples and long experiments use this).  The format
is a plain struct-framed byte stream — no pickling, so loading an image
executes no code:

::

    MAGIC  next_block  file_count
    per file:  name_len name  size  block_count  block_numbers...
    block_count_total
    per block: block_number payload(8 KiB)

Block numbers and per-file block tables are preserved exactly, so the
physical layout — and therefore every seek-model measurement — is
identical after a round trip.
"""

import struct
from pathlib import Path
from typing import Union

from ..errors import StorageError
from .disk import SimDisk
from .filesystem import SimFile, SimFileSystem
from .timing import BLOCK_SIZE, SimClock

_MAGIC = b"SIMDISK1"
_HEADER = struct.Struct("<8sQI")     # magic, next block, file count
_FILE_HDR = struct.Struct("<HQQ")    # name length, size, block count
_BLOCK_COUNT = struct.Struct("<Q")
_BLOCK_NO = struct.Struct("<Q")


def save_image(fs: SimFileSystem, path: Union[str, Path]) -> int:
    """Write the machine's disk and file table to ``path``.

    Returns the image size in bytes.  Reading block payloads uses
    :meth:`~repro.simdisk.disk.SimDisk.peek_block`, so saving charges no
    simulated time.
    """
    disk = fs.disk
    parts = [_HEADER.pack(_MAGIC, disk.blocks_allocated, len(fs.names()))]
    referenced = []
    for name in fs.names():
        file = fs.open(name)
        raw_name = name.encode("utf-8")
        parts.append(_FILE_HDR.pack(len(raw_name), file.size, file.block_count))
        parts.append(raw_name)
        for block_no in file._blocks:
            parts.append(_BLOCK_NO.pack(block_no))
            referenced.append(block_no)
    parts.append(_BLOCK_COUNT.pack(len(referenced)))
    for block_no in referenced:
        parts.append(_BLOCK_NO.pack(block_no))
        parts.append(disk.peek_block(block_no))
    data = b"".join(parts)
    Path(path).write_bytes(data)
    return len(data)


def load_image(
    path: Union[str, Path], clock: SimClock = None, cache_blocks: int = 64
) -> SimFileSystem:
    """Reconstruct a simulated file system from :func:`save_image` output.

    The returned machine has a fresh clock (or the one provided) and an
    empty FS cache — the state a newly booted machine would have — but
    byte-identical files at identical physical block addresses.
    """
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size or data[:8] != _MAGIC:
        raise StorageError(f"{path} is not a simulated disk image")
    _magic, next_block, file_count = _HEADER.unpack_from(data, 0)
    pos = _HEADER.size

    clock = clock if clock is not None else SimClock()
    disk = SimDisk(clock)
    disk._next_block = next_block
    fs = SimFileSystem(disk, cache_blocks=cache_blocks)

    file_specs = []
    for _ in range(file_count):
        name_len, size, block_count = _FILE_HDR.unpack_from(data, pos)
        pos += _FILE_HDR.size
        name = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        blocks = []
        for _ in range(block_count):
            (block_no,) = _BLOCK_NO.unpack_from(data, pos)
            pos += _BLOCK_NO.size
            blocks.append(block_no)
        file_specs.append((name, size, blocks))

    (total_blocks,) = _BLOCK_COUNT.unpack_from(data, pos)
    pos += _BLOCK_COUNT.size
    for _ in range(total_blocks):
        (block_no,) = _BLOCK_NO.unpack_from(data, pos)
        pos += _BLOCK_NO.size
        payload = data[pos:pos + BLOCK_SIZE]
        pos += BLOCK_SIZE
        if len(payload) != BLOCK_SIZE:
            raise StorageError(f"{path}: truncated block {block_no}")
        disk._blocks[block_no] = payload

    for name, size, blocks in file_specs:
        file = SimFile(fs, name)
        file._size = size
        file._blocks = blocks
        fs._files[name] = file
    return fs
