"""Block-level I/O tracing and locality analysis.

The paper's argument rests on *where* the bytes live: "careful file
allocation sympathetic to the device transfer block size" turns record
fetches into single, often sequential, block transfers.  A tracer
attached to a :class:`~repro.simdisk.disk.SimDisk` records every block
transfer so an experiment can quantify that claim — seek distances,
sequential fraction, distinct-block footprint, re-read counts — instead
of asserting it.
"""

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One block transfer."""

    op: str          #: "read" or "write"
    block: int
    sequential: bool


@dataclass
class TraceSummary:
    """Aggregate locality facts for one traced window."""

    reads: int
    writes: int
    sequential_reads: int
    distinct_blocks_read: int
    rereads: int
    median_seek: float
    max_seek: int

    @property
    def sequential_fraction(self) -> float:
        return self.sequential_reads / self.reads if self.reads else 0.0

    @property
    def reread_fraction(self) -> float:
        return self.rereads / self.reads if self.reads else 0.0


class AccessTracer:
    """Records block transfers; attach with :meth:`SimDisk.attach_tracer`.

    Parameters
    ----------
    max_events:
        Ring-buffer bound on retained events; counters keep counting
        after the buffer wraps.
    """

    def __init__(self, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError("tracer needs room for at least one event")
        self._max_events = max_events
        self.events: List[TraceEvent] = []
        self._read_counts: Counter = Counter()
        self._last_block: Optional[int] = None
        self._seeks: List[int] = []
        self.reads = 0
        self.writes = 0
        self.sequential_reads = 0

    def record(self, op: str, block: int, sequential: bool) -> None:
        """Called by the disk for every transfer."""
        if len(self.events) < self._max_events:
            self.events.append(TraceEvent(op, block, sequential))
        if op == "read":
            self.reads += 1
            self._read_counts[block] += 1
            if sequential:
                self.sequential_reads += 1
            if self._last_block is not None:
                self._seeks.append(abs(block - self._last_block))
        else:
            self.writes += 1
        self._last_block = block

    def summary(self) -> TraceSummary:
        """Aggregate the trace so far."""
        seeks = sorted(self._seeks)
        median = float(seeks[len(seeks) // 2]) if seeks else 0.0
        return TraceSummary(
            reads=self.reads,
            writes=self.writes,
            sequential_reads=self.sequential_reads,
            distinct_blocks_read=len(self._read_counts),
            rereads=sum(c - 1 for c in self._read_counts.values()),
            median_seek=median,
            max_seek=max(seeks) if seeks else 0,
        )

    def seek_histogram(self, buckets: Tuple[int, ...] = (0, 1, 8, 64, 512)) -> List[Tuple[str, int]]:
        """Seek distances bucketed as (label, count) rows.

        Bucket boundaries are inclusive lower bounds; the final bucket
        is open-ended.
        """
        rows = []
        for index, low in enumerate(buckets):
            high = buckets[index + 1] if index + 1 < len(buckets) else None
            if high is None:
                label = f">= {low}"
                count = sum(1 for s in self._seeks if s >= low)
            else:
                label = f"{low}-{high - 1}" if high - 1 > low else str(low)
                count = sum(1 for s in self._seeks if low <= s < high)
            rows.append((label, count))
        return rows

    def reset(self) -> None:
        """Clear the trace (counters and events)."""
        self.events.clear()
        self._read_counts.clear()
        self._seeks.clear()
        self._last_block = None
        self.reads = self.writes = self.sequential_reads = 0
