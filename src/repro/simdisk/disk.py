"""Simulated block device.

The disk stores fixed-size blocks (:data:`~repro.simdisk.timing.BLOCK_SIZE`
bytes) and charges the shared :class:`~repro.simdisk.timing.SimClock` for
every transfer.  A one-block lookahead head-position model distinguishes
sequential from random transfers, which is what makes the paper's "file
allocation sympathetic to the device transfer block size" visible in
simulated time.

Reads of blocks counted here correspond to the paper's ``I`` statistic
(Table 5): the number of 8 Kbyte blocks actually read from disk, below any
file-system caching.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import BadBlockError, DiskFullError
from .timing import BLOCK_SIZE, SimClock


@dataclass
class DiskStats:
    """Transfer counters for one simulated disk."""

    blocks_read: int = 0
    blocks_written: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    #: Transfers that failed (bad block or injected transient fault).
    #: The head still moved and the rotation was charged, but no data
    #: was delivered, so these do not count toward ``blocks_read``.
    failed_reads: int = 0

    @property
    def bytes_read(self) -> int:
        return self.blocks_read * BLOCK_SIZE

    @property
    def bytes_written(self) -> int:
        return self.blocks_written * BLOCK_SIZE

    def copy(self) -> "DiskStats":
        return DiskStats(
            self.blocks_read,
            self.blocks_written,
            self.sequential_reads,
            self.random_reads,
            self.failed_reads,
        )

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            self.blocks_read - other.blocks_read,
            self.blocks_written - other.blocks_written,
            self.sequential_reads - other.sequential_reads,
            self.random_reads - other.random_reads,
            self.failed_reads - other.failed_reads,
        )


class SimDisk:
    """A block device backed by an in-memory block map.

    Blocks are allocated by :meth:`allocate` in monotonically increasing
    order, so files that grow alternately become physically interleaved —
    the same fragmentation a real allocator would produce.

    Parameters
    ----------
    clock:
        Shared simulated clock charged for every transfer.
    capacity_blocks:
        Optional block budget; :meth:`allocate` raises
        :class:`~repro.errors.DiskFullError` once exhausted.  ``None``
        means unbounded.
    """

    def __init__(self, clock: SimClock, capacity_blocks: Optional[int] = None):
        self._clock = clock
        self._capacity = capacity_blocks
        self._blocks: Dict[int, bytes] = {}
        self._next_block = 0
        self._head = -2  # last block transferred; -2 means "nowhere"
        self.stats = DiskStats()
        #: Set of block numbers deliberately corrupted by failure-injection
        #: tests; reading one raises :class:`~repro.errors.BadBlockError`.
        self.bad_blocks: set = set()
        self._tracer = None
        self._fault_plan = None

    def attach_tracer(self, tracer) -> None:
        """Attach an :class:`~repro.simdisk.trace.AccessTracer` (or None)."""
        self._tracer = tracer

    def attach_fault_plan(self, plan) -> None:
        """Attach a :class:`~repro.faults.plan.FaultPlan` (or None).

        The plan observes every transfer and allocation and decides
        which ones to fault; with no plan attached (the default) this
        class behaves exactly as before the fault subsystem existed.
        """
        self._fault_plan = plan

    @property
    def fault_plan(self):
        return self._fault_plan

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def blocks_allocated(self) -> int:
        """Number of blocks handed out by :meth:`allocate` so far."""
        return self._next_block

    def allocate(self, count: int = 1) -> int:
        """Reserve ``count`` consecutive new blocks, returning the first.

        Raises
        ------
        DiskFullError
            If a capacity was configured and would be exceeded.
        """
        if count < 1:
            raise ValueError("must allocate at least one block")
        if self._fault_plan is not None:
            fault = self._fault_plan.observe_alloc()
            if fault is not None and fault.kind == "disk-full":
                raise DiskFullError(
                    f"disk full (injected): allocation of {count} blocks"
                    f" refused at block {self._next_block}"
                )
        if self._capacity is not None and self._next_block + count > self._capacity:
            raise DiskFullError(
                f"disk full: {self._next_block} of {self._capacity} blocks in use,"
                f" {count} requested"
            )
        first = self._next_block
        self._next_block += count
        return first

    def read_block(self, block_no: int) -> bytes:
        """Transfer one block from disk, charging seek or sequential cost.

        Unwritten blocks read as zeroes, as on a freshly formatted device.
        """
        self._check_block_no(block_no)
        if block_no in self.bad_blocks:
            raise BadBlockError(f"block {block_no} failed read verification")
        fault = (
            self._fault_plan.observe_read(block_no)
            if self._fault_plan is not None
            else None
        )
        sequential = block_no == self._head + 1
        cost = self._clock.cost
        if fault is not None and fault.kind == "transient-read":
            # The head moved and the rotation was wasted, but no data
            # came back: charge the transfer, count a failed read, and
            # let the layers above decide whether to retry.
            self._clock.charge_io(
                cost.block_read_sequential_ms
                if sequential
                else cost.block_read_random_ms
            )
            self.stats.failed_reads += 1
            self._head = block_no
            raise BadBlockError(
                f"block {block_no} transfer failed (injected transient fault)"
            )
        if fault is not None and fault.kind == "bit-flip":
            # Silent at-rest corruption: flip one stored bit, then serve
            # the read normally.  Only checksums above can notice.
            stored = bytearray(self._blocks.get(block_no, bytes(BLOCK_SIZE)))
            stored[(fault.bit // 8) % BLOCK_SIZE] ^= 1 << (fault.bit % 8)
            self._blocks[block_no] = bytes(stored)
        if sequential:
            self.stats.sequential_reads += 1
            self._clock.charge_io(cost.block_read_sequential_ms)
        else:
            self.stats.random_reads += 1
            self._clock.charge_io(cost.block_read_random_ms)
        if fault is not None and fault.kind == "read-latency":
            self._clock.charge_io(fault.extra_ms)
        self.stats.blocks_read += 1
        self._head = block_no
        if self._tracer is not None:
            self._tracer.record("read", block_no, sequential)
        data = self._blocks.get(block_no)
        if data is None:
            return bytes(BLOCK_SIZE)
        return data

    def write_block(self, block_no: int, data: bytes) -> None:
        """Transfer one block to disk; ``data`` must be exactly one block."""
        self._check_block_no(block_no)
        if len(data) != BLOCK_SIZE:
            raise ValueError(
                f"write_block needs exactly {BLOCK_SIZE} bytes, got {len(data)}"
            )
        fault = (
            self._fault_plan.observe_write(block_no)
            if self._fault_plan is not None
            else None
        )
        if fault is not None and fault.kind == "torn-write":
            # The write "succeeds" but only the first half reached the
            # platter — the torn page the redo log exists to repair.
            data = data[: BLOCK_SIZE // 2] + bytes(BLOCK_SIZE - BLOCK_SIZE // 2)
        sequential = block_no == self._head + 1
        cost = self._clock.cost
        if sequential:
            self._clock.charge_io(cost.block_write_sequential_ms)
        else:
            self._clock.charge_io(cost.block_write_random_ms)
        if fault is not None and fault.kind == "write-latency":
            self._clock.charge_io(fault.extra_ms)
        self.stats.blocks_written += 1
        self._head = block_no
        if self._tracer is not None:
            self._tracer.record("write", block_no, sequential)
        self._blocks[block_no] = bytes(data)
        self.bad_blocks.discard(block_no)

    def corrupt_block(self, block_no: int) -> None:
        """Failure injection: mark a block as unreadable (torn write)."""
        self._check_block_no(block_no)
        self.bad_blocks.add(block_no)

    def peek_block(self, block_no: int) -> bytes:
        """Read block contents without charging time or counters (tests)."""
        data = self._blocks.get(block_no)
        return bytes(BLOCK_SIZE) if data is None else data

    def _check_block_no(self, block_no: int) -> None:
        if block_no < 0 or block_no >= self._next_block:
            raise ValueError(
                f"block {block_no} outside allocated range [0, {self._next_block})"
            )
