"""Ablation A: the query-tree reservation pass.

The integrated system scans each query tree before evaluation and pins
already-resident objects ("potentially avoiding a bad replacement
choice").  Expected shape: with reservations on, the large buffer's hit
rate and the file-access count are no worse than with reservations off,
and terms repeated within a query benefit.
"""

from collections import defaultdict

from conftest import once

from repro.bench import emit, render_table, reservation_ablation


def test_reservation_ablation(benchmark, runner, results_dir):
    rows = once(benchmark, lambda: reservation_ablation(runner, "legal-s"))
    emit(
        render_table(
            "Ablation A: reservation pass on vs off (Legal)",
            ("Query Set", "Variant", "Large hit rate", "System+I/O (s)", "File accesses"),
            [(qs, variant, round(rate, 3), round(sysio, 2), accesses)
             for qs, variant, rate, sysio, accesses in rows],
        ),
        artifact="ablation_reservation.txt",
        results_dir=results_dir,
    )
    by_set = defaultdict(dict)
    for qs, variant, rate, sysio, accesses in rows:
        by_set[qs][variant] = (rate, sysio, accesses)
    for qs, variants in by_set.items():
        reserve = variants["reserve"]
        no_reserve = variants["no-reserve"]
        # Reservations never hurt, and never cost extra file accesses.
        assert reserve[0] >= no_reserve[0] - 1e-9, qs
        assert reserve[2] <= no_reserve[2], qs
