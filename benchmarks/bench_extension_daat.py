"""Extension: document-at-a-time evaluation over linked records.

Section 3.1 of the paper: term-at-a-time "requires large amounts of
memory for large collections, because several inverted list records must
be kept in memory simultaneously"; document-at-a-time "might scale
better ... however, it would be cumbersome with the current custom
B-tree package."  Expected shape: on the linked-record backend the
document-at-a-time engine returns the same rankings as term-at-a-time
while keeping an order of magnitude fewer record bytes resident.
"""

from conftest import once

from repro.bench import emit, render_table
from repro.core import config_by_name, materialize
from repro.inquery import DocumentAtATimeEngine, RetrievalEngine


def run_comparison(runner, profile="legal-s"):
    workload = runner.workload(profile)
    system = materialize(
        workload.prepared, config_by_name("mneme-linked", chunk_bytes=4096)
    )
    # Keep only the flat #sum queries (DAAT's domain).
    queries = [q for q in workload.query_sets[0].queries if q.startswith("#sum(")]
    taat = RetrievalEngine(system.index, top_k=20)
    daat = DocumentAtATimeEngine(system.index, top_k=20)
    rows = []
    mismatches = 0
    total_record_bytes = 0
    peak = 0
    for query in queries:
        expected = taat.run_query(query).ranking
        result = daat.run_query(query)
        if result.ranking != expected:
            mismatches += 1
        peak = max(peak, result.peak_resident_bytes)
        # Bytes TAAT holds simultaneously: every record of the query.
        total_record_bytes = max(
            total_record_bytes,
            sum(
                len(system.index.store.fetch(e.storage_key))
                for e in (
                    system.index.term_entry(t)
                    for t in query.replace("#sum(", "").replace(")", "").split()
                )
                if e is not None and e.storage_key
            ),
        )
    rows.append(("queries compared", len(queries)))
    rows.append(("ranking mismatches", mismatches))
    rows.append(("TAAT worst-case resident record bytes", total_record_bytes))
    rows.append(("DAAT peak resident record bytes", peak))
    return rows, mismatches, total_record_bytes, peak


def test_daat_extension(benchmark, runner, results_dir):
    rows, mismatches, taat_bytes, daat_peak = once(
        benchmark, lambda: run_comparison(runner)
    )
    emit(
        render_table(
            "Extension: document-at-a-time over linked records (Legal QS1)",
            ("Measure", "Value"),
            rows,
        ),
        artifact="extension_daat.txt",
        results_dir=results_dir,
    )
    assert mismatches == 0           # identical rankings
    assert daat_peak > 0
    assert daat_peak < taat_bytes / 4  # the memory-scaling claim
