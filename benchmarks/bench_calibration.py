"""Workload calibration: the synthetic collections match the paper's shapes.

Not a table in the paper, but the precondition for all of them: every
substituted collection must exhibit the informetric characteristics the
paper's design decisions depend on.  Expected shape: Zipf-Mandelbrot
fits near the generation parameters, roughly half the records at or
below the 12-byte small object threshold, a heavy top-percentile token
mass, and sublinear (Heaps) vocabulary growth.
"""

from conftest import once

from repro.bench import DISPLAY_NAMES, PROFILE_ORDER, emit, render_table
from repro.synth import partition_report, profile_collection, suggest_small_threshold


def calibration_rows(runner):
    rows = []
    for profile_name in PROFILE_ORDER:
        workload = runner.workload(profile_name)
        collection = workload.prepared.collection
        profile = profile_collection(collection)
        sizes = workload.prepared.stats.record_sizes
        partition = partition_report(sizes, 12, 4096)
        rows.append((
            DISPLAY_NAMES[profile_name],
            round(profile.zipf_s, 2),
            round(profile.doubleton_fraction, 2),
            round(profile.top_percent_mass, 2),
            round(profile.heaps_beta, 2),
            round(partition["small"]["record_share"], 2),
            round(partition["small"]["byte_share"], 3),
            suggest_small_threshold(sizes),
        ))
    return rows


def test_calibration(benchmark, runner, results_dir):
    rows = once(benchmark, lambda: calibration_rows(runner))
    emit(
        render_table(
            "Workload calibration: informetric shape of the synthetic collections",
            ("Collection", "Zipf s", "<=2 occ", "top-1% mass", "Heaps beta",
             "records <=12B", "bytes <=12B", "50th pct size"),
            rows,
            note="Paper anchors: ~50% of records <= 12 bytes holding <= 5% of "
                 "file bytes; Zipfian head; sublinear vocabulary growth.",
        ),
        artifact="calibration.txt",
        results_dir=results_dir,
    )
    for row in rows:
        _name, zipf_s, doubleton, top_mass, heaps_beta, small_share, small_bytes, pct50 = row
        assert 0.85 <= zipf_s <= 1.4
        assert 0.35 <= doubleton <= 0.8     # "nearly half ... one or two occurrences"
        assert top_mass >= 0.3               # heavy head
        assert 0.4 <= heaps_beta <= 0.95     # sublinear growth
        assert 0.35 <= small_share <= 0.75   # ~half the records are small...
        assert small_bytes <= 0.25           # ...in a small slice of the bytes
        assert small_bytes < small_share / 2.5
        assert 4 <= pct50 <= 32              # the 12 B threshold is data-driven
